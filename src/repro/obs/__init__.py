"""Runtime observability: metrics, spans, structured events.

Three channels, all off (and near-zero-cost) by default:

* **metrics** — named counters/gauges/histograms/timers published by
  the SSSP hot paths, the controller, the far queue and the platform
  simulator (:mod:`repro.obs.registry`);
* **spans** — nestable named wall-clock regions with a flat profile
  export (:mod:`repro.obs.spans`);
* **events** — a streamed JSONL log, one event per SSSP iteration
  (:mod:`repro.obs.events`).

On top of the three channels, :mod:`repro.obs.telemetry` threads a
per-query :class:`~repro.obs.telemetry.TraceContext` through the
serving stack (protocol -> engine -> pool -> worker) and ships
worker-side metric deltas, spans and events back for merging, and
:mod:`repro.obs.exposition` renders any snapshot as Prometheus text.

Activate any subset with :func:`repro.obs.use`; inspect a recorded run
with ``python -m repro trace``.  Metric names and the event schema are
documented in ``docs/trace-and-metrics.md``.
"""

from repro.obs.context import (
    NULL_CONTEXT,
    ObsContext,
    current,
    get_events,
    get_registry,
    get_spans,
    use,
)
from repro.obs.exposition import format_prometheus
from repro.obs.telemetry import TraceContext, TraceSampler
from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EventSink,
    JsonlSink,
    ListSink,
    NullEventSink,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
)
from repro.obs.spans import NullSpanRecorder, SpanRecorder, SpanStat

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "Counter",
    "EventSink",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "ListSink",
    "MetricsRegistry",
    "NullEventSink",
    "NullRegistry",
    "NullSpanRecorder",
    "NULL_CONTEXT",
    "ObsContext",
    "SpanRecorder",
    "SpanStat",
    "Timer",
    "TraceContext",
    "TraceSampler",
    "current",
    "format_prometheus",
    "get_events",
    "get_registry",
    "get_spans",
    "use",
]
