"""The active observability context.

One :class:`ObsContext` bundles the three channels — metrics registry,
event sink, span recorder — and defaults to the all-null context, so
instrumented code is free to call :func:`get_registry` /
:func:`get_events` / :func:`get_spans` unconditionally.

Enable observability for a region with :func:`use`::

    from repro import obs

    reg = obs.MetricsRegistry()
    with obs.use(registry=reg, events=obs.JsonlSink("run.events.jsonl")):
        nearfar_sssp(graph, source)
    print(reg.snapshot())

Instrumented call sites grab their handles from the context active
*when the run starts* (algorithm entry / object construction), so a
context swap mid-run does not retarget a running algorithm — by
design: a run observes one context.

Two scopes:

* ``scope="process"`` (the default) installs the context globally —
  one place to look for a process observing itself, exactly as before.
* ``scope="thread"`` installs a thread-local override that shadows the
  process context **for the calling thread only**.  This is what lets
  a pool worker thread run under a private, buffered context (see
  :mod:`repro.obs.telemetry`) without retargeting its siblings: the
  worker's kernel metrics land in the buffer, ship back with the
  result, and merge into the serving registry, instead of racing every
  other worker on the shared one.

:func:`current` resolves thread-local first, then the process global.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.obs.events import NULL_EVENTS, EventSink
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry, NullRegistry
from repro.obs.spans import NULL_SPANS, NullSpanRecorder, SpanRecorder

__all__ = [
    "ObsContext",
    "NULL_CONTEXT",
    "current",
    "get_registry",
    "get_events",
    "get_spans",
    "use",
]


@dataclass(frozen=True)
class ObsContext:
    """The three observability channels, bundled."""

    registry: "MetricsRegistry | NullRegistry" = NULL_REGISTRY
    events: EventSink = NULL_EVENTS
    spans: "SpanRecorder | NullSpanRecorder" = NULL_SPANS

    @property
    def enabled(self) -> bool:
        """True if any of the three channels is live."""
        return (
            self.registry.enabled or self.events.enabled or self.spans.enabled
        )


NULL_CONTEXT = ObsContext()

_active: ObsContext = NULL_CONTEXT
_thread_local = threading.local()


def current() -> ObsContext:
    """The active context for this thread.

    A thread-scoped override (``use(..., scope="thread")``) wins;
    otherwise the process-global context; otherwise the null context.
    """
    override = getattr(_thread_local, "ctx", None)
    return override if override is not None else _active


def get_registry():
    """The active context's metrics registry."""
    return current().registry


def get_events() -> EventSink:
    """The active context's event sink."""
    return current().events


def get_spans():
    """The active context's span recorder."""
    return current().spans


@contextmanager
def use(
    registry: Optional[MetricsRegistry] = None,
    events: Optional[EventSink] = None,
    spans: Optional[SpanRecorder] = None,
    *,
    scope: str = "process",
) -> Iterator[ObsContext]:
    """Install an observability context for the enclosed region.

    Omitted channels stay null.  The previous context is restored on
    exit (contexts nest but do not merge).  ``scope="process"`` (the
    default) swaps the process-global context; ``scope="thread"``
    shadows it for the calling thread only — the isolation pool worker
    threads need to buffer their telemetry per task.
    """
    if scope not in ("process", "thread"):
        raise ValueError(f"scope must be 'process' or 'thread', got {scope!r}")
    ctx = ObsContext(
        registry=registry if registry is not None else NULL_REGISTRY,
        events=events if events is not None else NULL_EVENTS,
        spans=spans if spans is not None else NULL_SPANS,
    )
    if scope == "thread":
        previous = getattr(_thread_local, "ctx", None)
        _thread_local.ctx = ctx
        try:
            yield ctx
        finally:
            _thread_local.ctx = previous
        return
    global _active
    previous_global = _active
    _active = ctx
    try:
        yield ctx
    finally:
        _active = previous_global
