"""The active observability context.

One process-global :class:`ObsContext` bundles the three channels —
metrics registry, event sink, span recorder — and defaults to the
all-null context, so instrumented code is free to call
:func:`get_registry` / :func:`get_events` / :func:`get_spans`
unconditionally.

Enable observability for a region with :func:`use`::

    from repro import obs

    reg = obs.MetricsRegistry()
    with obs.use(registry=reg, events=obs.JsonlSink("run.events.jsonl")):
        nearfar_sssp(graph, source)
    print(reg.snapshot())

Instrumented call sites grab their handles from the context active
*when the run starts* (algorithm entry / object construction), so a
context swap mid-run does not retarget a running algorithm — by
design: a run observes one context.

The global is intentionally simple (no thread-local indirection): the
package's algorithms are single-threaded NumPy code, and a process
observing itself wants one place to look.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.obs.events import NULL_EVENTS, EventSink
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry, NullRegistry
from repro.obs.spans import NULL_SPANS, NullSpanRecorder, SpanRecorder

__all__ = [
    "ObsContext",
    "NULL_CONTEXT",
    "current",
    "get_registry",
    "get_events",
    "get_spans",
    "use",
]


@dataclass(frozen=True)
class ObsContext:
    """The three observability channels, bundled."""

    registry: "MetricsRegistry | NullRegistry" = NULL_REGISTRY
    events: EventSink = NULL_EVENTS
    spans: "SpanRecorder | NullSpanRecorder" = NULL_SPANS

    @property
    def enabled(self) -> bool:
        return (
            self.registry.enabled or self.events.enabled or self.spans.enabled
        )


NULL_CONTEXT = ObsContext()

_active: ObsContext = NULL_CONTEXT


def current() -> ObsContext:
    """The active context (the null context unless inside :func:`use`)."""
    return _active


def get_registry():
    return _active.registry


def get_events() -> EventSink:
    return _active.events


def get_spans():
    return _active.spans


@contextmanager
def use(
    registry: Optional[MetricsRegistry] = None,
    events: Optional[EventSink] = None,
    spans: Optional[SpanRecorder] = None,
) -> Iterator[ObsContext]:
    """Install an observability context for the enclosed region.

    Omitted channels stay null.  The previous context is restored on
    exit (contexts nest but do not merge).
    """
    global _active
    ctx = ObsContext(
        registry=registry if registry is not None else NULL_REGISTRY,
        events=events if events is not None else NULL_EVENTS,
        spans=spans if spans is not None else NULL_SPANS,
    )
    previous = _active
    _active = ctx
    try:
        yield ctx
    finally:
        _active = previous
