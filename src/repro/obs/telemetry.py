"""Per-query trace propagation across the serving pool.

The observability context (:mod:`repro.obs.context`) is process-wide:
everything a *process-mode* pool worker publishes used to vanish with
the worker, and nothing tied a metric or event to the query that
caused it.  This module closes both holes:

* :class:`TraceContext` — the identity of one traced request:
  ``trace_id`` (shared by every span of the request), ``span_id`` /
  ``parent_id`` (the parentage chain), and the ``sampled`` decision
  made once, at mint time, at the protocol layer.  It serializes to a
  plain dict (:meth:`~TraceContext.to_wire`) so it can ride a pickled
  task envelope into a worker process.
* :class:`TraceSampler` — the deterministic head-sampling decision:
  ``rate=1.0`` samples everything, ``rate=0.1`` samples every 10th
  request, with an error-diffusion accumulator rather than a RNG so
  tests and replays see the same decisions.
* :func:`capture_task` — the **worker-side** half.  Runs a task thunk
  under a private, thread-scoped observability context (fresh
  registry + list sink + span recorder), so the kernel's metrics,
  events and spans land in a buffer instead of the void (process
  mode) or a shared registry race (thread mode).  Returns
  ``(result, payload)`` where the payload carries the metric deltas,
  the span profile, the buffered events, and the worker's queue-wait
  and compute timings.
* :func:`merge_payload` — the **engine-side** half.  Folds a shipped
  payload into the serving context: counters add, histograms merge
  bucket-by-bucket, worker spans re-root under the query's span, and
  buffered events replay into the serving sink stamped with the trace
  id and ``"worker": true``.

The net effect: one ``repro query`` against a process-pool server
yields one trace whose spans cover protocol -> engine -> pool ->
worker -> kernel, and the serving registry's ``service.query.*``
histograms include worker-side queue-wait and compute time.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, replace
from typing import Callable, Mapping, Optional

from repro.obs import context as obs_context
from repro.obs.events import EventSink, ListSink
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanRecorder

__all__ = [
    "TraceContext",
    "TraceSampler",
    "emit_span",
    "capture_task",
    "merge_payload",
    "TELEMETRY_WIRE_VERSION",
]

# version stamp on worker payloads, so a future engine can refuse (or
# adapt to) an envelope minted by older worker code after an upgrade
TELEMETRY_WIRE_VERSION = 1


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """The identity of one traced request (or one span within it).

    Immutable: :meth:`child` derives the next hop's context, keeping
    ``trace_id`` and the ``sampled`` decision while re-parenting the
    span chain.  ``sampled=False`` contexts still propagate (metric
    deltas always ship) but suppress span/event emission.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    sampled: bool = True

    @classmethod
    def mint(cls, *, sampled: bool = True) -> "TraceContext":
        """A fresh root context — one per request, at the protocol layer."""
        return cls(trace_id=_new_id(), span_id=_new_id(), sampled=sampled)

    def child(self) -> "TraceContext":
        """The context for the next layer down: new span, same trace."""
        return replace(self, span_id=_new_id(), parent_id=self.span_id)

    def to_wire(self) -> dict:
        """A plain picklable/JSON-able dict (the task-envelope form)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "sampled": self.sampled,
        }

    @classmethod
    def from_wire(cls, wire: Optional[Mapping]) -> Optional["TraceContext"]:
        """Rebuild from :meth:`to_wire` output (``None`` passes through)."""
        if wire is None:
            return None
        return cls(
            trace_id=str(wire["trace_id"]),
            span_id=str(wire["span_id"]),
            parent_id=wire.get("parent_id"),
            sampled=bool(wire.get("sampled", True)),
        )


class TraceSampler:
    """Deterministic head sampling at a configured rate.

    An error-diffusion accumulator (add ``rate``, fire when it crosses
    1) instead of a coin flip: ``rate=0.25`` samples exactly every 4th
    request, so a replayed request stream re-samples identically and a
    test can assert on the pattern.  Thread-safe.
    """

    def __init__(self, rate: float = 1.0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("sample rate must be in [0, 1]")
        self.rate = float(rate)
        self._acc = 0.0
        self._lock = threading.Lock()

    def sample(self) -> bool:
        """The decision for the next request."""
        with self._lock:
            self._acc += self.rate
            if self._acc >= 1.0:
                self._acc -= 1.0
                return True
            return False


def emit_span(
    events: EventSink,
    ctx: Optional[TraceContext],
    name: str,
    seconds: float,
    **fields,
) -> None:
    """Emit one ``span`` event for a closed span, if it should be seen.

    No-op unless the sink is enabled *and* the trace is sampled — the
    guard lives here so call sites stay one line.
    """
    if ctx is None or not ctx.sampled or not events.enabled:
        return
    events.emit(
        {
            "type": "span",
            "trace": ctx.trace_id,
            "span": ctx.span_id,
            "parent": ctx.parent_id,
            "name": name,
            "seconds": round(seconds, 6),
            **fields,
        }
    )


def capture_task(
    envelope: Mapping,
    task: Callable[[], object],
) -> tuple:
    """Run ``task`` under a buffered child context; return ``(result, payload)``.

    The worker-side half of trace propagation.  ``envelope`` is the
    dict the engine attached to the pool task: ``{"ctx": <wire trace
    context>, "enqueue_ts": <time.time() at submission>}``.  The task
    runs inside ``obs.use(..., scope="thread")`` with a fresh registry,
    list sink and span recorder, under a root span named ``"task"`` —
    so whatever the kernel publishes is captured per-task without
    touching any shared state (safe in thread *and* process workers).

    The returned payload is a plain dict (picklable) carrying:

    * ``v`` — :data:`TELEMETRY_WIRE_VERSION`;
    * ``ctx`` — the worker's trace context (already a child of the
      pool span, minted engine-side);
    * ``queue_wait_seconds`` — worker start minus ``enqueue_ts``
      (both ``time.time()``, comparable across processes on one host);
    * ``compute_seconds`` — wall time of the task body;
    * ``metrics`` — the buffered registry snapshot (a pure delta,
      since the registry started empty);
    * ``spans`` — the buffered span profile (``task/...`` paths);
    * ``events`` — the buffered events, or ``[]`` when unsampled.
    """
    ctx = TraceContext.from_wire(envelope.get("ctx"))
    enqueue_ts = envelope.get("enqueue_ts")
    started = time.time()
    registry = MetricsRegistry()
    sink = ListSink()
    spans = SpanRecorder()
    with obs_context.use(
        registry=registry, events=sink, spans=spans, scope="thread"
    ):
        with spans.span("task"):
            result = task()
    sampled = ctx.sampled if ctx is not None else False
    payload = {
        "v": TELEMETRY_WIRE_VERSION,
        "ctx": ctx.to_wire() if ctx is not None else None,
        "queue_wait_seconds": (
            max(0.0, started - enqueue_ts) if enqueue_ts is not None else None
        ),
        "compute_seconds": spans.total("task"),
        "metrics": registry.snapshot(),
        "spans": [stat.as_dict() for stat in spans.profile()],
        "events": list(sink.events) if sampled else [],
    }
    return result, payload


def merge_payload(
    payload: Mapping,
    *,
    registry,
    events: EventSink,
    spans,
) -> Optional[TraceContext]:
    """Fold a worker payload into the serving context (engine-side half).

    Metric deltas merge unconditionally (they are real work that
    happened); spans and buffered events replay only for sampled
    traces.  Replayed events gain ``{"trace": ..., "worker": true}``
    so a reader can tell a worker-side ``batch_run_start`` from an
    engine-side one.  Returns the worker's :class:`TraceContext` (for
    the caller's own span bookkeeping), or ``None`` if the payload
    carried no context.
    """
    ctx = TraceContext.from_wire(payload.get("ctx"))
    metrics = payload.get("metrics")
    if metrics:
        registry.merge_snapshot(metrics)
    span_rows = payload.get("spans") or []
    if span_rows:
        spans.merge(span_rows, prefix="worker")
    if ctx is not None and ctx.sampled and events.enabled:
        for row in span_rows:
            emit_span(
                events,
                ctx if row["path"] == "task" else ctx.child(),
                f"worker/{row['path']}",
                float(row["seconds"]),
                count=int(row["count"]),
            )
        for event in payload.get("events") or []:
            events.emit({**event, "trace": ctx.trace_id, "worker": True})
    return ctx
