"""Structured event log: one JSON object per line, streamed as it happens.

Unlike the :class:`~repro.instrument.trace.RunTrace` (which
materialises at the end of a run), an event sink receives each event
the moment the instrumented code emits it, so a long run can be
watched live (``tail -f run.events.jsonl``).

Event schema (version :data:`EVENT_SCHEMA_VERSION`, documented in the
README's *Observability* section):

* ``run_start`` — ``{"type", "v", "algorithm", "graph", "source", ...}``;
  the only event carrying the schema version.
* ``iteration`` — one per outer SSSP iteration:
  ``{"type", "k", "x1", "x2", "x3", "x4", "delta", "far_size"}`` plus,
  for controller-driven runs, ``"d"`` and ``"alpha"`` (the learned
  estimates; ``null`` before the first update).
* ``run_end`` — ``{"type", "iterations", "relaxations", "reached"}``.

Schema **v2** adds the telemetry vocabulary: ``span`` events (one per
closed trace span — ``{"type", "trace", "span", "parent", "name",
"seconds", ...}``) and an optional ``"trace"`` field on serving-path
events (``query_start`` / ``query_end`` / ``batch_dispatch``), plus
``"worker": true`` on events replayed from a worker-shipped telemetry
payload.  See ``docs/trace-and-metrics.md`` for the full vocabulary.

Sinks share a tiny interface: ``emit(dict)``, ``close()``, and an
``enabled`` flag instrumented code checks before building the event
dict (so the disabled path allocates nothing).
"""

from __future__ import annotations

import json
import math
import threading
from pathlib import Path
from typing import IO, List, Optional, Union

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EventSink",
    "NullEventSink",
    "ListSink",
    "JsonlSink",
    "NULL_EVENTS",
]

EVENT_SCHEMA_VERSION = 2


def _jsonable(value):
    """NaN/inf are not valid JSON; map them to null."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


class EventSink:
    """Interface; also usable as a base class."""

    enabled = True

    def emit(self, event: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullEventSink(EventSink):
    """The default: drops everything."""

    enabled = False

    def emit(self, event: dict) -> None:
        pass


class ListSink(EventSink):
    """Collects events in memory (tests, programmatic consumers)."""

    def __init__(self):
        self.events: List[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def of_type(self, event_type: str) -> List[dict]:
        return [e for e in self.events if e.get("type") == event_type]


class JsonlSink(EventSink):
    """Writes one JSON line per event, flushing so the stream is live.

    Emission is lock-guarded: a serving engine's worker threads may
    emit concurrently, and interleaved *lines* are fine but interleaved
    *bytes* are not.
    """

    def __init__(self, target: Union[str, Path, IO[str]]):
        if hasattr(target, "write"):
            self._file: IO[str] = target  # type: ignore[assignment]
            self._owns = False
            self.path: Optional[Path] = None
        else:
            self.path = Path(target)
            self._file = self.path.open("w")
            self._owns = True
        self.count = 0
        self._lock = threading.Lock()

    def emit(self, event: dict) -> None:
        clean = {k: _jsonable(v) for k, v in event.items()}
        line = json.dumps(clean) + "\n"
        with self._lock:
            self._file.write(line)
            self._file.flush()
            self.count += 1

    def close(self) -> None:
        if self._owns and not self._file.closed:
            self._file.close()


NULL_EVENTS = NullEventSink()
