"""Span-based wall-clock timing.

A *span* is a named timed region entered with ``with recorder.span("x"):``.
Spans nest: entering ``span("bootstrap")`` inside ``span("plan")``
accumulates under the path ``"plan/bootstrap"``.  The recorder keeps a
flat profile — ``(path, count, seconds)`` per distinct path — which is
what the controller-overhead experiment and the ``repro trace`` CLI
export.

This replaces the ad-hoc ``time.perf_counter()`` bracketing the
controller and the overhead experiment used to carry around: every
timed region in the package now reads the same clock through the same
accounting.

:class:`SpanRecorder` is always cheap enough to keep on (one
``perf_counter`` pair and a dict update per span), so objects that
*need* timing (the controller) own a private recorder
unconditionally; code that only wants timing when observability is on
goes through the active context's recorder, which defaults to
:data:`NULL_SPANS`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping

__all__ = ["SpanStat", "SpanRecorder", "NullSpanRecorder", "NULL_SPANS"]


@dataclass(frozen=True)
class SpanStat:
    """One row of the flat profile."""

    path: str
    count: int
    seconds: float

    @property
    def depth(self) -> int:
        return self.path.count("/")

    def as_dict(self) -> dict:
        return {"path": self.path, "count": self.count, "seconds": self.seconds}


class _Span:
    """A single active span; class-based so the timed window is tight."""

    __slots__ = ("_recorder", "_name", "_t0", "elapsed")

    def __init__(self, recorder: "SpanRecorder", name: str):
        self._recorder = recorder
        self._name = name
        self._t0 = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "_Span":
        self._recorder._push(self._name)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._t0
        self._recorder._pop(self.elapsed)


class SpanRecorder:
    """Accumulates nested span timings into a flat path-keyed profile.

    The span *stack* is intentionally single-threaded (one recorder
    belongs to one run), but the accumulated *profile* is lock-guarded
    so a serving engine can :meth:`merge` worker-shipped profiles from
    its settle path while another thread reads :meth:`profile`.
    """

    enabled = True

    def __init__(self):
        self._stack: List[str] = []
        self._stats: Dict[str, List[float]] = {}  # path -> [count, seconds]
        self._lock = threading.Lock()

    def span(self, name: str) -> _Span:
        if "/" in name:
            raise ValueError("span names must not contain '/'")
        return _Span(self, name)

    # -- internals used by _Span ---------------------------------------
    def _push(self, name: str) -> None:
        path = f"{self._stack[-1]}/{name}" if self._stack else name
        self._stack.append(path)

    def _pop(self, elapsed: float) -> None:
        path = self._stack.pop()
        self._add(path, 1, elapsed)

    def _add(self, path: str, count: int, seconds: float) -> None:
        with self._lock:
            stat = self._stats.get(path)
            if stat is None:
                self._stats[path] = [count, seconds]
            else:
                stat[0] += count
                stat[1] += seconds

    def merge(
        self,
        profile: Iterable[Mapping],
        *,
        prefix: str = "",
    ) -> None:
        """Fold a shipped profile (``[{path, count, seconds}, ...]``) in.

        ``prefix`` re-roots the shipped paths (``prefix="worker"``
        turns ``"run/kernel"`` into ``"worker/run/kernel"``), which is
        how worker-side span profiles nest under the serving engine's
        own accounting (see :mod:`repro.obs.telemetry`).
        """
        for row in profile:
            path = row["path"]
            if prefix:
                path = f"{prefix}/{path}"
            self._add(path, int(row["count"]), float(row["seconds"]))

    # -- reporting ------------------------------------------------------
    def total(self, path: str) -> float:
        """Accumulated seconds under ``path`` (0 if never entered)."""
        stat = self._stats.get(path)
        return stat[1] if stat else 0.0

    def count(self, path: str) -> int:
        stat = self._stats.get(path)
        return stat[0] if stat else 0

    @property
    def total_seconds(self) -> float:
        """Sum of *top-level* spans only (nested time is already inside)."""
        return sum(s[1] for path, s in self._stats.items() if "/" not in path)

    def profile(self) -> List[SpanStat]:
        """The flat profile, sorted by path (parents before children)."""
        with self._lock:
            items = sorted(self._stats.items())
        return [
            SpanStat(path=path, count=stat[0], seconds=stat[1])
            for path, stat in items
        ]


class _NullSpan:
    __slots__ = ()
    elapsed = 0.0

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None


_NULL_SPAN = _NullSpan()


class NullSpanRecorder:
    """Disabled recorder: spans are shared no-op context managers."""

    enabled = False
    total_seconds = 0.0

    def span(self, name: str) -> _NullSpan:
        """The shared no-op span."""
        return _NULL_SPAN

    def total(self, path: str) -> float:
        """Always 0.0."""
        return 0.0

    def count(self, path: str) -> int:
        """Always 0."""
        return 0

    def merge(self, profile, *, prefix: str = "") -> None:
        """Dropped: a disabled recorder absorbs nothing."""

    def profile(self) -> List[SpanStat]:
        """Always empty."""
        return []


NULL_SPANS = NullSpanRecorder()
