"""Metrics registry: counters, gauges, histograms and timers.

Every hot path in the package publishes named metrics through the
active registry (see :mod:`repro.obs.context`).  Two implementations
share the interface:

* :class:`MetricsRegistry` — the live registry.  Metric handles are
  created on first use and accumulate values; :meth:`~MetricsRegistry.snapshot`
  exports everything as a plain JSON-ready dict.
* :class:`NullRegistry` — the **default**.  Every ``counter()`` /
  ``gauge()`` / ``histogram()`` / ``timer()`` call returns a shared
  no-op singleton whose mutators are empty methods, so instrumented
  code pays only an attribute lookup and a no-op call when
  observability is off.  This is what keeps the fixed-delta hot path
  within noise of the uninstrumented algorithm (see
  ``repro.experiments.overhead.run_instrumentation_overhead``).

Metric names are dotted paths (``"sssp.relaxations"``,
``"gpusim.energy_j.advance"``); the conventions in use are documented
in the README's *Observability* section.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
]

Number = Union[int, float]


class Counter:
    """A monotonically increasing value (float increments allowed)."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount

    def as_dict(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: Number) -> None:
        self.value = float(value)

    def as_dict(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Histogram:
    """A sample distribution (keeps the raw values; runs are short)."""

    __slots__ = ("name", "values")

    kind = "histogram"

    def __init__(self, name: str):
        self.name = name
        self.values: List[float] = []

    def observe(self, value: Number) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return math.fsum(self.values)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.values else 0.0

    @property
    def minimum(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def maximum(self) -> float:
        return max(self.values) if self.values else 0.0

    def as_dict(self) -> dict:
        return {
            "type": self.kind,
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
        }


class _TimerHandle:
    """Context manager measuring one timed block into a :class:`Timer`."""

    __slots__ = ("_timer", "elapsed", "_t0")

    def __init__(self, timer: "Timer"):
        self._timer = timer
        self.elapsed = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "_TimerHandle":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._t0
        self._timer.observe(self.elapsed)


class Timer(Histogram):
    """A histogram of durations (seconds) with a ``with timer.time():`` API."""

    __slots__ = ()

    kind = "timer"

    def time(self) -> _TimerHandle:
        return _TimerHandle(self)


# ----------------------------------------------------------------------
# no-op singletons: the disabled fast path
# ----------------------------------------------------------------------
class _NullContext:
    __slots__ = ("elapsed",)

    def __init__(self):
        self.elapsed = 0.0

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None


_NULL_CM = _NullContext()


class _NullCounter:
    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, amount: Number = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"
    value = 0.0

    def set(self, value: Number) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "null"
    count = 0
    total = 0.0
    mean = 0.0
    minimum = 0.0
    maximum = 0.0

    def observe(self, value: Number) -> None:
        pass


class _NullTimer(_NullHistogram):
    __slots__ = ()

    def time(self) -> _NullContext:
        return _NULL_CM


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_TIMER = _NullTimer()


class MetricsRegistry:
    """Live named-metric store.

    Handles are created on first use and cached; asking for an existing
    name with a different metric type is an error (names are global).
    """

    enabled = True

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> Dict[str, dict]:
        """All metrics as ``{name: {type, ...values}}`` (JSON-ready)."""
        return {
            name: metric.as_dict()
            for name, metric in sorted(self._metrics.items())
        }


class NullRegistry:
    """The disabled registry: shared no-op handles, empty snapshot."""

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def timer(self, name: str) -> _NullTimer:
        return _NULL_TIMER

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False

    def snapshot(self) -> Dict[str, dict]:
        return {}


NULL_REGISTRY = NullRegistry()
