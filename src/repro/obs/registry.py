"""Metrics registry: counters, gauges, histograms and timers.

Every hot path in the package publishes named metrics through the
active registry (see :mod:`repro.obs.context`).  Two implementations
share the interface:

* :class:`MetricsRegistry` — the live registry.  Metric handles are
  created on first use and accumulate values; :meth:`~MetricsRegistry.snapshot`
  exports everything as a plain JSON-ready dict.
* :class:`NullRegistry` — the **default**.  Every ``counter()`` /
  ``gauge()`` / ``histogram()`` / ``timer()`` call returns a shared
  no-op singleton whose mutators are empty methods, so instrumented
  code pays only an attribute lookup and a no-op call when
  observability is off.  This is what keeps the fixed-delta hot path
  within noise of the uninstrumented algorithm (see
  ``repro.experiments.overhead.run_instrumentation_overhead``).

Metric names are dotted paths (``"sssp.relaxations"``,
``"gpusim.energy_j.advance"``); the conventions in use are documented
in ``docs/trace-and-metrics.md``.  Metrics may carry **labels**
(``registry.timer("service.query.latency", labels={"graph": "cal"})``);
each distinct label set is its own time series, keyed in the snapshot
as ``name{k="v",...}`` — the same key shape the Prometheus exposition
in :mod:`repro.obs.exposition` renders.

The live registry is **thread-safe**: handle creation takes a registry
lock and every mutator (``inc``/``set``/``observe``) takes a per-metric
lock, so a query engine serving from a thread pool (or merging shipped
worker deltas, see :mod:`repro.obs.telemetry`) never loses increments.

:class:`Histogram` keeps fixed log-spaced buckets rather than raw
samples, so a long-running server's latency series stays O(1) memory
while still answering :meth:`~Histogram.quantile` (p50/p95/p99 with
log-linear interpolation, clamped to the observed min/max).
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "qualify_name",
    "parse_name",
]

Number = Union[int, float]

_LABELLED_RE = re.compile(r'^(?P<base>[^{]+)\{(?P<labels>.*)\}$')
_LABEL_PAIR_RE = re.compile(r'(?P<key>[^=,]+)="(?P<value>[^"]*)"')


def qualify_name(name: str, labels: Optional[Mapping[str, str]] = None) -> str:
    """The snapshot key for ``name`` + ``labels``: ``name{k="v",...}``.

    Label order is canonical (sorted by key) so the same label set
    always maps to the same series.
    """
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_name(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`qualify_name`: ``name{k="v"}`` -> ``(name, {k: v})``."""
    match = _LABELLED_RE.match(key)
    if match is None:
        return key, {}
    labels = {
        m.group("key"): m.group("value")
        for m in _LABEL_PAIR_RE.finditer(match.group("labels"))
    }
    return match.group("base"), labels


class Counter:
    """A monotonically increasing value (float increments allowed)."""

    __slots__ = ("name", "labels", "value", "_lock")

    kind = "counter"

    def __init__(self, name: str, labels: Optional[Mapping[str, str]] = None):
        self.name = name
        self.labels: Dict[str, str] = dict(labels or {})
        self.value: Number = 0
        self._lock = threading.Lock()

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only increase")
        with self._lock:
            self.value += amount

    def merge(self, data: Mapping) -> None:
        """Fold a shipped counter delta (an :meth:`as_dict` dict) in."""
        self.inc(data.get("value", 0))

    def as_dict(self) -> dict:
        """JSON-ready export: ``{"type": "counter", "value": ...}``."""
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "labels", "value", "_lock")

    kind = "gauge"

    def __init__(self, name: str, labels: Optional[Mapping[str, str]] = None):
        self.name = name
        self.labels: Dict[str, str] = dict(labels or {})
        self.value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        """Overwrite the gauge with ``value``."""
        with self._lock:
            self.value = float(value)

    def merge(self, data: Mapping) -> None:
        """Fold a shipped gauge (an :meth:`as_dict` dict) in: last write wins."""
        self.set(data.get("value", 0.0))

    def as_dict(self) -> dict:
        """JSON-ready export: ``{"type": "gauge", "value": ...}``."""
        return {"type": self.kind, "value": self.value}


# Log-spaced bucket upper bounds shared by every histogram: four per
# decade from 1e-6 to 1e8 (microseconds of latency up to ~1e8-edge
# relaxation counts), plus an implicit +inf overflow bucket.  Fixed
# and class-level so worker-shipped bucket deltas align by index.
BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    10.0 ** (e / 4.0) for e in range(-24, 33)
)
_OVERFLOW = len(BUCKET_BOUNDS)  # index of the +inf bucket


class Histogram:
    """A sample distribution over fixed log-spaced buckets.

    Keeps exact ``count``/``sum``/``min``/``max`` scalars plus one
    counter per bucket of :data:`BUCKET_BOUNDS` (values above the last
    bound land in a +inf overflow bucket; values at or below the first
    bound land in the first).  Memory is O(buckets), not O(samples),
    so a serving-path latency histogram can run forever.
    """

    __slots__ = (
        "name", "labels", "_count", "_sum", "_min", "_max", "_buckets",
        "_lock",
    )

    kind = "histogram"

    def __init__(self, name: str, labels: Optional[Mapping[str, str]] = None):
        self.name = name
        self.labels: Dict[str, str] = dict(labels or {})
        self._count = 0
        self._sum = 0.0
        self._min = 0.0
        self._max = 0.0
        self._buckets: List[int] = [0] * (_OVERFLOW + 1)
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        """Record one sample."""
        value = float(value)
        index = bisect_left(BUCKET_BOUNDS, value) if value > 0 else 0
        with self._lock:
            if self._count == 0:
                self._min = self._max = value
            else:
                if value < self._min:
                    self._min = value
                if value > self._max:
                    self._max = value
            self._count += 1
            self._sum += value
            self._buckets[index] += 1

    def merge(self, data: Mapping) -> None:
        """Fold a shipped histogram delta (an :meth:`as_dict` dict) in.

        This is how worker-side distributions reach the serving
        registry: the worker snapshots its private registry, the
        payload rides back with the result, and the engine merges the
        sparse bucket counts here (see :mod:`repro.obs.telemetry`).
        """
        count = int(data.get("count", 0))
        if count == 0:
            return
        with self._lock:
            if self._count == 0:
                self._min = float(data.get("min", 0.0))
                self._max = float(data.get("max", 0.0))
            else:
                self._min = min(self._min, float(data.get("min", self._min)))
                self._max = max(self._max, float(data.get("max", self._max)))
            self._count += count
            self._sum += float(data.get("sum", 0.0))
            for index, bucket_count in data.get("buckets", []):
                self._buckets[int(index)] += int(bucket_count)

    @property
    def count(self) -> int:
        """Number of samples observed."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of all samples."""
        return self._sum

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    @property
    def minimum(self) -> float:
        """Smallest sample (exact, 0.0 when empty)."""
        return self._min

    @property
    def maximum(self) -> float:
        """Largest sample (exact, 0.0 when empty)."""
        return self._max

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Linear interpolation inside the covering bucket, clamped to
        the exact observed ``[min, max]`` — so a single-sample
        histogram answers every quantile with that sample, and the
        +inf overflow bucket tops out at the observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = max(1, int(round(q * self._count + 0.5)))
            rank = min(rank, self._count)
            cumulative = 0
            for index, bucket_count in enumerate(self._buckets):
                if bucket_count == 0:
                    continue
                if cumulative + bucket_count >= rank:
                    lower = BUCKET_BOUNDS[index - 1] if index > 0 else 0.0
                    upper = (
                        BUCKET_BOUNDS[index]
                        if index < _OVERFLOW
                        else self._max
                    )
                    frac = (rank - cumulative) / bucket_count
                    estimate = lower + frac * (upper - lower)
                    return min(max(estimate, self._min), self._max)
                cumulative += bucket_count
            return self._max  # unreachable unless counters drift

    def percentiles(self) -> Dict[str, float]:
        """The conventional trio: ``{"p50": ..., "p95": ..., "p99": ...}``."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def bucket_counts(self) -> List[Tuple[int, int]]:
        """Sparse non-empty buckets as ``(index, count)`` pairs.

        Index ``len(BUCKET_BOUNDS)`` is the +inf overflow bucket; the
        pairs are what :meth:`merge` consumes on the far side.
        """
        return [(i, c) for i, c in enumerate(self._buckets) if c]

    def as_dict(self) -> dict:
        """JSON-ready export with summary stats, quantiles and buckets."""
        return {
            "type": self.kind,
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            **self.percentiles(),
            "buckets": self.bucket_counts(),
        }


class _TimerHandle:
    """Context manager measuring one timed block into a :class:`Timer`."""

    __slots__ = ("_timer", "elapsed", "_t0")

    def __init__(self, timer: "Timer"):
        self._timer = timer
        self.elapsed = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "_TimerHandle":
        import time

        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        import time

        self.elapsed = time.perf_counter() - self._t0
        self._timer.observe(self.elapsed)


class Timer(Histogram):
    """A histogram of durations (seconds) with a ``with timer.time():`` API."""

    __slots__ = ()

    kind = "timer"

    def time(self) -> _TimerHandle:
        """A context manager that observes its elapsed seconds on exit."""
        return _TimerHandle(self)


# ----------------------------------------------------------------------
# no-op singletons: the disabled fast path
# ----------------------------------------------------------------------
class _NullContext:
    __slots__ = ("elapsed",)

    def __init__(self):
        self.elapsed = 0.0

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None


_NULL_CM = _NullContext()


class _NullCounter:
    __slots__ = ()
    name = "null"
    labels: Dict[str, str] = {}
    value = 0

    def inc(self, amount: Number = 1) -> None:
        pass

    def merge(self, data: Mapping) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"
    labels: Dict[str, str] = {}
    value = 0.0

    def set(self, value: Number) -> None:
        pass

    def merge(self, data: Mapping) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "null"
    labels: Dict[str, str] = {}
    count = 0
    total = 0.0
    mean = 0.0
    minimum = 0.0
    maximum = 0.0

    def observe(self, value: Number) -> None:
        pass

    def merge(self, data: Mapping) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def percentiles(self) -> Dict[str, float]:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def bucket_counts(self) -> List[Tuple[int, int]]:
        return []


class _NullTimer(_NullHistogram):
    __slots__ = ()

    def time(self) -> _NullContext:
        return _NULL_CM


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_TIMER = _NullTimer()

_KIND_TO_CLASS = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
    "timer": Timer,
}


class MetricsRegistry:
    """Live named-metric store.

    Handles are created on first use and cached; asking for an existing
    name with a different metric type is an error (names are global).
    Creation and every handle mutator are lock-guarded, so the registry
    can back a multi-threaded serving path without losing updates.
    """

    enabled = True

    def __init__(self):
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls, labels: Optional[Mapping[str, str]] = None):
        key = qualify_name(name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, labels)
                self._metrics[key] = metric
            elif type(metric) is not cls:
                raise ValueError(
                    f"metric {key!r} already registered as {metric.kind}"
                )
            return metric

    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        """The counter registered under ``name`` (+ optional labels)."""
        return self._get(name, Counter, labels)

    def gauge(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        """The gauge registered under ``name`` (+ optional labels)."""
        return self._get(name, Gauge, labels)

    def histogram(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Histogram:
        """The histogram registered under ``name`` (+ optional labels)."""
        return self._get(name, Histogram, labels)

    def timer(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Timer:
        """The timer registered under ``name`` (+ optional labels)."""
        return self._get(name, Timer, labels)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> Dict[str, dict]:
        """All metrics as ``{key: {type, ...values}}`` (JSON-ready).

        Keys are qualified names (``name`` or ``name{k="v"}``); values
        include histogram quantiles and sparse bucket counts, so a
        snapshot is both human-diffable and :meth:`merge_snapshot`-able.
        """
        with self._lock:
            metrics = list(self._metrics.items())
        return {key: metric.as_dict() for key, metric in sorted(metrics)}

    def merge_snapshot(self, snapshot: Mapping[str, dict]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add, gauges take the shipped value, histograms and
        timers merge bucket-by-bucket.  This is the engine-side half of
        worker telemetry shipping: a worker's private registry is a
        pure delta (it started empty), so merging it here preserves
        totals exactly.  Unknown types raise; type conflicts with an
        existing name raise, same as :meth:`counter` and friends.
        """
        for key, data in snapshot.items():
            kind = data.get("type")
            cls = _KIND_TO_CLASS.get(kind)
            if cls is None:
                raise ValueError(f"cannot merge metric {key!r} of type {kind!r}")
            base, labels = parse_name(key)
            self._get(base, cls, labels).merge(data)


class NullRegistry:
    """The disabled registry: shared no-op handles, empty snapshot."""

    enabled = False

    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> _NullCounter:
        """The shared no-op counter."""
        return _NULL_COUNTER

    def gauge(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> _NullGauge:
        """The shared no-op gauge."""
        return _NULL_GAUGE

    def histogram(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> _NullHistogram:
        """The shared no-op histogram."""
        return _NULL_HISTOGRAM

    def timer(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> _NullTimer:
        """The shared no-op timer."""
        return _NULL_TIMER

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False

    def snapshot(self) -> Dict[str, dict]:
        """Always empty."""
        return {}

    def merge_snapshot(self, snapshot: Mapping[str, dict]) -> None:
        """Dropped: a disabled registry absorbs nothing."""


NULL_REGISTRY = NullRegistry()
