"""Prometheus text exposition for metric snapshots.

Turns a :meth:`~repro.obs.registry.MetricsRegistry.snapshot` dict into
the Prometheus text format (version 0.0.4) that ``repro metrics
--prometheus`` prints and the protocol ``metrics`` op can serve::

    # TYPE repro_service_query_latency histogram
    repro_service_query_latency_bucket{graph="cal",algorithm="nearfar",le="0.01"} 41
    ...
    repro_service_query_latency_sum{graph="cal",algorithm="nearfar"} 0.8143
    repro_service_query_latency_count{graph="cal",algorithm="nearfar"} 42

Conventions:

* names are prefixed ``repro_`` and dots become underscores
  (``service.query.latency`` -> ``repro_service_query_latency``);
* counters gain the ``_total`` suffix Prometheus expects;
* timers are exposed as histograms (they are one);
* histogram buckets are cumulative with the standard ``le`` label,
  reconstructed from the registry's shared log-spaced bounds
  (:data:`repro.obs.registry.BUCKET_BOUNDS`), sparse buckets included
  only where counts exist (plus the mandatory ``le="+Inf"``).

Everything works from the plain snapshot dict — no live registry
needed — so a ``serve --metrics`` file or ``benchmarks/results/
metrics.json`` can be exposed after the fact.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping

from repro.obs.registry import BUCKET_BOUNDS, parse_name

__all__ = ["format_prometheus", "prometheus_name"]

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str) -> str:
    """A snapshot metric name as a valid Prometheus metric name."""
    sanitized = _INVALID.sub("_", name)
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] in "_:"):
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _label_str(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value)) if isinstance(value, float) else str(value)


def format_prometheus(snapshot: Mapping[str, dict]) -> str:
    """Render a metrics snapshot as Prometheus text exposition."""
    # group label variants of one base name under a single TYPE header
    groups: Dict[str, List[tuple]] = {}
    order: List[str] = []
    for key in sorted(snapshot):
        base, labels = parse_name(key)
        if base not in groups:
            groups[base] = []
            order.append(base)
        groups[base].append((labels, snapshot[key]))

    lines: List[str] = []
    for base in order:
        variants = groups[base]
        kind = variants[0][1].get("type", "gauge")
        pname = prometheus_name(base)
        if kind == "counter":
            pname += "_total"
            lines.append(f"# TYPE {pname} counter")
            for labels, data in variants:
                lines.append(
                    f"{pname}{_label_str(labels)} "
                    f"{_format_value(data.get('value', 0))}"
                )
        elif kind == "gauge":
            lines.append(f"# TYPE {pname} gauge")
            for labels, data in variants:
                lines.append(
                    f"{pname}{_label_str(labels)} "
                    f"{_format_value(data.get('value', 0))}"
                )
        else:  # histogram / timer
            lines.append(f"# TYPE {pname} histogram")
            for labels, data in variants:
                cumulative = 0
                for index, count in data.get("buckets", []):
                    cumulative += int(count)
                    if int(index) < len(BUCKET_BOUNDS):
                        le_label = 'le="' + repr(BUCKET_BOUNDS[int(index)]) + '"'
                        lines.append(
                            f"{pname}_bucket{_label_str(labels, le_label)} "
                            f"{cumulative}"
                        )
                inf_label = 'le="+Inf"'
                lines.append(
                    f"{pname}_bucket{_label_str(labels, inf_label)} "
                    f"{int(data.get('count', 0))}"
                )
                lines.append(
                    f"{pname}_sum{_label_str(labels)} "
                    f"{_format_value(float(data.get('sum', 0.0)))}"
                )
                lines.append(
                    f"{pname}_count{_label_str(labels)} "
                    f"{int(data.get('count', 0))}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
