"""Algorithm/platform co-simulation.

The paper's conclusion sketches the next step beyond a parallelism
set-point: "a user might specify a power limit instead of P, and the
controller could then adjust itself in response to direct power
observations.  While that is not possible on the Jetson evaluation
platforms…" — on this simulated substrate it *is* possible, so this
package implements it:

* :class:`~repro.cosim.power_target.PowerTargetServo` — an outer
  control loop that watches the (simulated, PowerMon-style) measured
  power while the self-tuning SSSP runs and retargets the inner
  controller's set-point to hold a watt budget;
* :func:`~repro.cosim.power_target.power_target_sssp` — one-call
  entry point returning the SSSP result, the trace, the platform run
  and the set-point trajectory.
"""

from repro.cosim.power_target import (
    PowerTargetParams,
    PowerTargetResult,
    PowerTargetServo,
    power_target_sssp,
)

__all__ = [
    "PowerTargetParams",
    "PowerTargetResult",
    "PowerTargetServo",
    "power_target_sssp",
]
