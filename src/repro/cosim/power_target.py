"""Power-target control: servo the set-point on measured power.

Implements the paper's future-work controller (§6 and Figure 8): the
user specifies a board power budget in watts; an outer loop measures
average power (exponentially weighted, like a PowerMon reading) while
the self-tuning SSSP runs, and multiplicatively retargets the inner
parallelism set-point:

    P ← P · (target_watts_dynamic / measured_dynamic)^gain

The *dynamic* portion (above the board's static floor) is what the
set-point can actually influence — dividing full board power would
stall against the static offset.  Figure 8 established the monotone
P→power link this loop relies on.

The inner loop is untouched: it is exactly the paper's Eq. 6
controller, consuming whatever set-point the servo last wrote.  This
two-level structure mirrors the DVFS+knob composition argued for in
the paper's Section 5.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.adaptive_sssp import AdaptiveParams
from repro.core.stepwise import AdaptiveNearFarStepper
from repro.gpusim.device import DeviceSpec
from repro.gpusim.dvfs import DVFSPolicy, default_governor
from repro.gpusim.executor import PlatformRun, cost_iteration
from repro.gpusim.power import PowerModel
from repro.graph.csr import CSRGraph
from repro.instrument.trace import RunTrace
from repro.sssp.result import SSSPResult

__all__ = [
    "PowerTargetParams",
    "PowerTargetResult",
    "PowerTargetServo",
    "power_target_sssp",
]


@dataclass(frozen=True)
class PowerTargetParams:
    """Configuration of the power-target servo.

    Parameters
    ----------
    target_watts:
        The board power budget.  Must exceed the device's static floor
        (nothing the algorithm does can get below that).
    initial_setpoint:
        Starting P before any power feedback arrives.
    gain:
        Exponent of the multiplicative correction (1.0 = proportional
        in log space; smaller = gentler).
    ema_halflife_iterations:
        Half-life of the measured-power EMA, in iterations.  Short
        half-lives chase per-iteration noise; long ones lag phase
        changes.
    adjust_period:
        Retarget every this many iterations (the servo is slower than
        the inner loop by design, like a governor).
    setpoint_min, setpoint_max:
        Clamp box for P.
    """

    target_watts: float
    initial_setpoint: float = 1000.0
    gain: float = 0.5
    ema_halflife_iterations: float = 8.0
    adjust_period: int = 4
    setpoint_min: float = 8.0
    setpoint_max: float = 1e9

    def __post_init__(self) -> None:
        if self.target_watts <= 0:
            raise ValueError("target_watts must be positive")
        if self.initial_setpoint <= 0:
            raise ValueError("initial_setpoint must be positive")
        if not 0 < self.gain <= 2:
            raise ValueError("gain must be in (0, 2]")
        if self.ema_halflife_iterations <= 0:
            raise ValueError("ema_halflife_iterations must be positive")
        if self.adjust_period < 1:
            raise ValueError("adjust_period must be >= 1")
        if not 0 < self.setpoint_min <= self.setpoint_max:
            raise ValueError("need 0 < setpoint_min <= setpoint_max")


@dataclass
class PowerTargetResult:
    """Everything a power-target run produced."""

    result: SSSPResult
    trace: RunTrace
    platform: PlatformRun
    setpoint_history: np.ndarray  # P after each iteration
    power_history: np.ndarray  # measured (EMA) watts after each iteration

    @property
    def final_setpoint(self) -> float:
        return float(self.setpoint_history[-1]) if self.setpoint_history.size else 0.0

    def steady_state_power(self, skip_fraction: float = 0.3) -> float:
        """Mean measured power after the servo's settling phase."""
        p = self.power_history
        if p.size == 0:
            return 0.0
        return float(p[int(p.size * skip_fraction) :].mean())


class PowerTargetServo:
    """Outer loop: measured watts in, parallelism set-point out."""

    def __init__(self, params: PowerTargetParams, device: DeviceSpec):
        if params.target_watts <= device.static_power_w:
            raise ValueError(
                f"target {params.target_watts} W is at or below the board's "
                f"static floor ({device.static_power_w} W); unreachable"
            )
        self.params = params
        self.device = device
        self.setpoint = params.initial_setpoint
        self._ema: float | None = None
        self._decay = 0.5 ** (1.0 / params.ema_halflife_iterations)
        self._since_adjust = 0

    @property
    def measured_watts(self) -> float:
        return self._ema if self._ema is not None else 0.0

    def observe(self, watts: float) -> float:
        """Feed one iteration's average power; returns the new set-point."""
        if watts < 0:
            raise ValueError("watts must be non-negative")
        if self._ema is None:
            self._ema = watts
        else:
            self._ema = self._decay * self._ema + (1.0 - self._decay) * watts
        self._since_adjust += 1
        if self._since_adjust >= self.params.adjust_period:
            self._since_adjust = 0
            self._retarget()
        return self.setpoint

    def _retarget(self) -> None:
        static = self.device.static_power_w
        measured_dyn = max(self.measured_watts - static, 1e-3)
        target_dyn = max(self.params.target_watts - static, 1e-3)
        ratio = target_dyn / measured_dyn
        p = self.setpoint * (ratio ** self.params.gain)
        self.setpoint = float(
            min(max(p, self.params.setpoint_min), self.params.setpoint_max)
        )


def power_target_sssp(
    graph: CSRGraph,
    source: int,
    device: DeviceSpec,
    params: PowerTargetParams,
    *,
    policy: DVFSPolicy | None = None,
    adaptive: AdaptiveParams | None = None,
    max_iterations: int = 0,
) -> PowerTargetResult:
    """Run SSSP under a watt budget on a simulated device.

    The algorithm and the platform advance in lock-step: each SSSP
    iteration is costed on the device at the governor's current
    operating point, the resulting power reading feeds the servo, and
    the servo's set-point steers the next iteration's delta controller.
    """
    if policy is None:
        policy = default_governor(device)
    policy.reset()
    if adaptive is None:
        adaptive = AdaptiveParams(setpoint=params.initial_setpoint)

    servo = PowerTargetServo(params, device)
    stepper = AdaptiveNearFarStepper(graph, source, adaptive)
    stepper.setpoint = servo.setpoint
    power = PowerModel(device)

    trace = RunTrace(
        algorithm="adaptive-nearfar-powertarget",
        graph_name=graph.name,
        source=source,
    )
    platform = PlatformRun(
        device=device,
        policy_label=policy.label,
        algorithm=trace.algorithm,
        graph_name=graph.name,
    )
    setpoints: List[float] = []
    watts_history: List[float] = []

    while not stepper.done:
        record = stepper.step()
        assert record is not None
        trace.append(record)

        setting = policy.select(device)
        cost = cost_iteration(
            record, device, power, setting, include_controller=True
        )
        platform.iterations.append(cost)
        policy.observe(cost.utilization, cost.seconds)

        stepper.setpoint = servo.observe(cost.power_w)
        setpoints.append(stepper.setpoint)
        watts_history.append(servo.measured_watts)

        if max_iterations and stepper.iterations >= max_iterations:
            break

    return PowerTargetResult(
        result=stepper.result(),
        trace=trace,
        platform=platform,
        setpoint_history=np.asarray(setpoints),
        power_history=np.asarray(watts_history),
    )
