"""Shard supervision: detect dead shards, restart them, degrade routing.

The serving stack's last single point of failure is the shard
dispatcher thread (:class:`~repro.net.shard.Shard`): the pool beneath
it already self-heals (``BrokenProcessPool`` recovery, retries,
breakers), but a dead or wedged dispatcher took its whole catalog
partition with it.  :class:`ShardSupervisor` closes that gap with the
classic supervision loop:

* **detect** — each check pass health-checks every shard on two
  signals: the liveness flag (dispatcher thread running and never
  abnormally exited) and the queue-age watchdog
  (:meth:`~repro.net.shard.Shard.stalled`: work pending *and* the
  heartbeat stale past ``stall_seconds``).  A crash is caught on the
  next pass; a silent hang is caught when its queue ages out.
* **degrade** — a failed shard is retired (its pending futures fail
  with retryable ``unavailable:`` errors, nothing hangs) and marked
  ``down``.  Under ``failover="adopt"`` its graphs are re-adopted by
  surviving shards (catalog memoisation means no reload) and traffic
  flows on degraded capacity; under ``failover="failfast"`` requests
  for its graphs fast-fail in-band until it returns.
* **restart** — restarts follow a
  :class:`~repro.resilience.retry.RestartPolicy`: exponential backoff
  between attempts and a hard budget, after which the shard is marked
  ``failed`` and left to the operator.  A successful rebuild restores
  home routing and re-arms the backoff.

Everything observable: ``shard_down`` / ``shard_up`` events,
``net.shard.restarts`` / ``net.shard.failovers`` counters and the
``net.shard.degraded`` gauge, plus :meth:`report` (surfaced by the
``health`` protocol op and ``repro top``).

The loop runs in a daemon thread (:meth:`start`), but every decision
lives in :meth:`check`, which takes an explicit ``now`` — tests drive
the whole state machine with a fake clock and zero sleeps.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro import obs
from repro.resilience.retry import RestartPolicy

__all__ = ["ShardSupervisor"]

# supervised shard states (ShardManager.shard_state values)
STATE_UP = "up"
STATE_DOWN = "down"
STATE_FAILED = "failed"


class _ShardWatch:
    """Supervision bookkeeping for one shard index."""

    __slots__ = (
        "state", "restarts", "down_at", "next_attempt_at", "last_reason",
        "last_recovery_seconds", "failovers",
    )

    def __init__(self):
        self.state = STATE_UP
        self.restarts = 0
        self.down_at: Optional[float] = None
        self.next_attempt_at: Optional[float] = None
        self.last_reason: Optional[str] = None
        self.last_recovery_seconds: Optional[float] = None
        self.failovers = 0


class ShardSupervisor:
    """Health-check, restart and degrade-route a ShardManager's shards.

    Parameters
    ----------
    manager:
        The :class:`~repro.net.shard.ShardManager` to supervise.  The
        supervisor attaches itself (``manager.attach_supervisor``) so
        the ``health`` op can surface its report.
    restart_policy:
        Backoff + budget for restarts (default
        :class:`~repro.resilience.retry.RestartPolicy`()).
    failover:
        ``"failfast"`` (default): a down shard's graphs answer
        ``unavailable:`` until it restarts.  ``"adopt"``: its graphs
        are re-adopted by surviving shards while it is down.
    check_interval:
        Seconds between health passes of the background thread.
    stall_seconds:
        Queue-age watchdog threshold: a shard with pending work and no
        heartbeat for this long is declared hung and replaced.  Must
        exceed the worst honest dispatch cycle.
    """

    def __init__(
        self,
        manager,
        *,
        restart_policy: Optional[RestartPolicy] = None,
        failover: str = "failfast",
        check_interval: float = 0.05,
        stall_seconds: float = 5.0,
    ):
        if failover not in ("failfast", "adopt"):
            raise ValueError(
                f"failover must be 'failfast' or 'adopt', got {failover!r}"
            )
        if check_interval <= 0:
            raise ValueError("check_interval must be positive")
        if stall_seconds <= 0:
            raise ValueError("stall_seconds must be positive")
        self.manager = manager
        self.policy = restart_policy if restart_policy is not None else RestartPolicy()
        self.failover = failover
        self.check_interval = float(check_interval)
        self.stall_seconds = float(stall_seconds)
        self._watch: Dict[int, _ShardWatch] = {
            shard.index: _ShardWatch() for shard in manager.shards
        }
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        registry = obs.get_registry()
        self._restart_counter = registry.counter("net.shard.restarts")
        self._failover_counter = registry.counter("net.shard.failovers")
        self._degraded_gauge = registry.gauge("net.shard.degraded")
        self._events = obs.get_events()
        manager.attach_supervisor(self)

    # ------------------------------------------------------------------
    # the background loop
    # ------------------------------------------------------------------
    def start(self) -> "ShardSupervisor":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-shard-supervisor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.check_interval):
            try:
                self.check()
            except Exception:  # a supervision bug must not kill supervision
                pass

    # ------------------------------------------------------------------
    # one health pass (fake-clock friendly: all time comes in via `now`)
    # ------------------------------------------------------------------
    def check(self, now: Optional[float] = None) -> None:
        """Run one detect/degrade/restart pass over every shard."""
        now = time.monotonic() if now is None else now
        with self._lock:
            for index in list(self._watch):
                self._check_shard(index, now)
            self._degraded_gauge.set(self.degraded_count())

    def _check_shard(self, index: int, now: float) -> None:
        watch = self._watch[index]
        if watch.state == STATE_FAILED:
            return
        shard = self.manager.shards[index]
        if watch.state == STATE_UP:
            heartbeat_expired = getattr(shard, "heartbeat_expired", None)
            if not shard.alive:
                self._declare_down(
                    index, now,
                    shard.exit_reason or "dispatcher thread not running",
                )
            elif shard.stalled(self.stall_seconds, now):
                self._declare_down(
                    index, now,
                    f"dispatcher stalled: no heartbeat for "
                    f"{shard.beat_age(now):.2f}s with "
                    f"{shard.pending_count()} pending group(s)",
                )
            elif heartbeat_expired is not None and heartbeat_expired(now):
                # process-mode shards heartbeat over their worker
                # socket even when idle; silence means the worker is
                # wedged or unreachable without any queue to age out
                self._declare_down(
                    index, now,
                    f"worker heartbeat timed out "
                    f"({shard.beat_age(now):.2f}s since last frame)",
                )
            return
        # state == down: restart when the backoff window opens
        if watch.next_attempt_at is not None and now < watch.next_attempt_at:
            return
        self._attempt_restart(index, now)

    def _declare_down(self, index: int, now: float, reason: str) -> None:
        watch = self._watch[index]
        watch.state = STATE_DOWN
        watch.down_at = now
        watch.last_reason = reason
        shard = self.manager.shards[index]
        shard.retire(reason)
        self.manager.set_shard_state(index, STATE_DOWN)
        if self.policy.exhausted(watch.restarts):
            self._declare_failed(index, reason)
            return
        watch.restarts += 1
        watch.next_attempt_at = now + self.policy.delay(
            watch.restarts, key=f"shard:{index}"
        )
        moved: Dict[str, int] = {}
        if self.failover == "adopt":
            moved = self.manager.adopt_shard_graphs(index)
            if moved:
                watch.failovers += 1
                self._failover_counter.inc()
        if self._events.enabled:
            self._events.emit(
                {
                    "type": "shard_down",
                    "shard": index,
                    "reason": reason,
                    "restart": watch.restarts,
                    "budget": self.policy.budget,
                    "failover": dict(moved) if moved else None,
                }
            )

    def _declare_failed(self, index: int, reason: str) -> None:
        watch = self._watch[index]
        watch.state = STATE_FAILED
        watch.next_attempt_at = None
        self.manager.set_shard_state(index, STATE_FAILED)
        if self.failover == "adopt":
            moved = self.manager.adopt_shard_graphs(index)
            if moved:
                watch.failovers += 1
                self._failover_counter.inc()
        if self._events.enabled:
            self._events.emit(
                {
                    "type": "shard_failed",
                    "shard": index,
                    "reason": reason,
                    "restarts": watch.restarts,
                }
            )

    def _attempt_restart(self, index: int, now: float) -> None:
        watch = self._watch[index]
        try:
            self.manager.rebuild_shard(index)
        except Exception as exc:  # rebuild itself failed: burn a restart
            watch.last_reason = f"rebuild failed: {type(exc).__name__}: {exc}"
            if self.policy.exhausted(watch.restarts):
                self._declare_failed(index, watch.last_reason)
                return
            watch.restarts += 1
            watch.next_attempt_at = now + self.policy.delay(
                watch.restarts, key=f"shard:{index}"
            )
            return
        restored = self.manager.restore_assignment(index)
        self.manager.set_shard_state(index, STATE_UP)
        downtime = (now - watch.down_at) if watch.down_at is not None else 0.0
        watch.state = STATE_UP
        watch.down_at = None
        watch.next_attempt_at = None
        watch.last_recovery_seconds = downtime
        self._restart_counter.inc()
        if self._events.enabled:
            self._events.emit(
                {
                    "type": "shard_up",
                    "shard": index,
                    "restart": watch.restarts,
                    "downtime_ms": round(downtime * 1000.0, 3),
                    "restored_graphs": restored or None,
                }
            )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def degraded_count(self) -> int:
        """Shards currently not serving their home partition."""
        return sum(1 for w in self._watch.values() if w.state != STATE_UP)

    def state(self, index: int) -> str:
        with self._lock:
            return self._watch[index].state

    def report(self) -> dict:
        """JSON-ready supervision state (the ``health`` op surfaces it)."""
        with self._lock:
            shards = {
                str(index): {
                    "state": watch.state,
                    "restarts": watch.restarts,
                    "failovers": watch.failovers,
                    "last_reason": watch.last_reason,
                    "last_recovery_ms": (
                        round(watch.last_recovery_seconds * 1000.0, 3)
                        if watch.last_recovery_seconds is not None
                        else None
                    ),
                }
                for index, watch in sorted(self._watch.items())
            }
            degraded = self.degraded_count()
        return {
            "failover": self.failover,
            "restart_budget": self.policy.budget,
            "stall_seconds": self.stall_seconds,
            "degraded": degraded,
            "shards": shards,
        }

    def __enter__(self) -> "ShardSupervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
