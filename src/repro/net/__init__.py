"""repro.net: the network serving layer.

Where :mod:`repro.service` turns the algorithms into an engine that
answers queries, this package puts that engine on the wire:

* :mod:`~repro.net.server` — asyncio TCP front-end speaking the JSONL
  protocol (one connection = one protocol stream) plus HTTP
  ``GET /metrics`` (Prometheus) and ``GET /healthz`` on the same port;
* :mod:`~repro.net.shard` — :class:`ShardManager` partitions the graph
  catalog across N independent engines (own pool, cache, breakers) and
  routes by graph name while presenting the single-engine surface to
  the protocol layer;
* :mod:`~repro.net.admission` — per-shard token/deadline/breaker
  admission control; overload sheds early with in-band ``overloaded``
  errors instead of queuing past the latency budget;
* :mod:`~repro.net.loadgen` — closed-loop Zipf load generator
  (``repro loadgen``) for capacity and shedding checks.

``docs/serving.md`` walks the full deployment story.
"""

from repro.net.admission import OVERLOADED_PREFIX, AdmissionController
from repro.net.loadgen import run_loadgen
from repro.net.server import NetServer, parse_listen
from repro.net.shard import Shard, ShardManager

__all__ = [
    "AdmissionController",
    "NetServer",
    "OVERLOADED_PREFIX",
    "Shard",
    "ShardManager",
    "parse_listen",
    "run_loadgen",
]
