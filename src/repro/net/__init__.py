"""repro.net: the network serving layer.

Where :mod:`repro.service` turns the algorithms into an engine that
answers queries, this package puts that engine on the wire:

* :mod:`~repro.net.server` — asyncio TCP front-end speaking the JSONL
  protocol (one connection = one protocol stream) plus HTTP
  ``GET /metrics`` (Prometheus) and ``GET /healthz`` on the same port;
* :mod:`~repro.net.shard` — :class:`ShardManager` partitions the graph
  catalog across N independent engines (own pool, cache, breakers) and
  routes by graph name while presenting the single-engine surface to
  the protocol layer;
* :mod:`~repro.net.supervisor` — :class:`ShardSupervisor` health-checks
  shard dispatchers (liveness + queue-age watchdog), restarts dead
  ones under a budgeted exponential backoff, and routes a down shard's
  graphs through degraded mode (failover adoption or fast-fail
  ``unavailable`` responses) in the meantime;
* :mod:`~repro.net.admission` — per-shard token/deadline/breaker
  admission control; overload sheds early with in-band ``overloaded``
  errors instead of queuing past the latency budget;
* :mod:`~repro.net.loadgen` — closed-loop Zipf load generator
  (``repro loadgen``) for capacity and shedding checks; reconnects
  through drops and bounds every read, so chaos drills measure
  client-visible hangs instead of suffering them;
* :mod:`~repro.net.chaos` — the ``repro chaos-net`` drill: a faulted
  multi-shard server under live load, audited for zero hangs, correct
  distances (Dijkstra cross-check) and in-budget recovery;
* :mod:`~repro.net.worker` / :mod:`~repro.net.frames` — out-of-process
  shard workers (``serve --shard-mode process``): each shard engine in
  its own supervised worker process behind a length-prefixed,
  checksummed frame protocol, for OS-level crash isolation (SIGKILL,
  OOM, segfault) with handshaked respawn and graph re-adoption.

``docs/serving.md`` walks the full deployment story, including the
failure modes and recovery section.
"""

from repro.net.admission import (
    OVERLOADED_PREFIX,
    UNAVAILABLE_PREFIX,
    AdmissionController,
)
from repro.net.chaos import run_chaos_drill
from repro.net.loadgen import run_loadgen
from repro.net.server import NetServer, parse_listen
from repro.net.shard import Shard, ShardDiedError, ShardManager
from repro.net.supervisor import ShardSupervisor
from repro.net.worker import (
    HandshakeError,
    ProcessShard,
    WorkerClient,
    WorkerRequestError,
    run_worker,
)

__all__ = [
    "AdmissionController",
    "HandshakeError",
    "NetServer",
    "OVERLOADED_PREFIX",
    "ProcessShard",
    "Shard",
    "ShardDiedError",
    "ShardManager",
    "ShardSupervisor",
    "UNAVAILABLE_PREFIX",
    "WorkerClient",
    "WorkerRequestError",
    "parse_listen",
    "run_chaos_drill",
    "run_loadgen",
    "run_worker",
]
