"""The asyncio network front-end: JSONL protocol v4 over TCP, plus HTTP.

One TCP connection is one protocol stream — the same
newline-delimited request/response format ``repro serve`` speaks on
stdin/stdout (see :mod:`repro.service.protocol`), so ``repro query``
transcripts replay over a socket byte-for-byte.  Each connection gets
its own :class:`~repro.service.protocol.ProtocolSession`; the server
calls its non-blocking ``begin`` and awaits the resulting future, so a
slow query never stalls the event loop and hundreds of connections can
be in flight over a handful of shard dispatcher threads.

The same port also answers plain HTTP/1.1 (sniffed from the first
request line): ``GET /metrics`` serves the Prometheus text exposition
of the serving registry and ``GET /healthz`` serves the ``health`` op
JSON, so the standard scrape and probe tooling needs no JSONL client.
``/healthz`` keys its status off the ``serving`` health flag when the
engine reports one (a sharded deployment): 503 means *no* shard can
answer — one dead shard degrades responses in-band but keeps the
deployment on the balancer.  Engines without the flag fall back to the
pool-liveness criterion.

Shutdown drains: :meth:`stop` closes the listener immediately (no new
connections), then gives in-flight requests up to ``drain_seconds`` to
finish writing their responses before force-cancelling what remains.
The CLI wires SIGTERM to the same path, so a supervised restart loses
no answered-but-unflushed work.

Edge cases answer in-band or close cleanly, never crash the server:
malformed JSON and oversized ``sources`` batches get protocol error
envelopes; an over-long line gets one error line and then the
connection closes; a final line without a trailing newline (partial
write before EOF) is still processed; a mid-request disconnect just
tears down that one connection.  A ``fault_plan`` with ``conn_drop``
makes that last case injectable: the chosen connection is closed
abruptly after its first request line, exactly the rude-client /
flaky-network behaviour the loadgen's reconnect path must absorb.
"""

from __future__ import annotations

import asyncio
import json
import re
from typing import Optional, Set, Tuple

from repro import obs
from repro.obs.exposition import format_prometheus
from repro.service.protocol import ProtocolSession, internal_error_response

__all__ = ["NetServer", "parse_listen"]

# first-line sniff: HTTP request line vs JSONL payload
_HTTP_REQUEST_RE = re.compile(rb"^(GET|HEAD|POST|PUT|DELETE) (\S+) HTTP/1\.[01]\r?$")

# a single request line (JSON or HTTP) may be this long before the
# connection is answered with an error and closed
MAX_LINE_BYTES = 1 << 20


def parse_listen(listen: str) -> Tuple[str, int]:
    """``HOST:PORT`` (or bare ``:PORT`` / ``PORT``) -> ``(host, port)``."""
    spec = listen.strip()
    if ":" in spec:
        host, _, port_text = spec.rpartition(":")
        host = host or "127.0.0.1"
    else:
        host, port_text = "127.0.0.1", spec
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid --listen {listen!r}; expected HOST:PORT")
    if not 0 <= port <= 65535:
        raise ValueError(f"invalid port {port} in --listen {listen!r}")
    return host, port


class NetServer:
    """Serve an engine (or :class:`~repro.net.shard.ShardManager`) on TCP.

    Parameters
    ----------
    engine:
        Anything with the duck-typed engine surface
        (``run``/``run_many``/``stats``/``health``/``metrics_snapshot``
        /``catalog``; ``submit_many`` keeps the event loop unblocked).
    host, port:
        Bind address; port 0 picks a free port (see :attr:`address`).
    sampler:
        Optional trace sampler forwarded to each connection's
        :class:`~repro.service.protocol.ProtocolSession`.
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan` /
        :class:`~repro.resilience.faults.ScheduledFaultPlan` consulted
        once per accepted connection (indexed by arrival order); a
        ``conn_drop`` decision closes that connection right after its
        first request line, unanswered.  Other kinds are ignored here.
    """

    def __init__(
        self,
        engine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        sampler=None,
        fault_plan=None,
    ):
        self.engine = engine
        self.host = host
        self.port = port
        self.sampler = sampler
        self.fault_plan = fault_plan
        self.connections_total = 0
        self.responses_total = 0
        self.http_requests = 0
        self.conns_dropped = 0
        self._open_connections = 0
        self._busy = 0  # connections currently inside request handling
        self._conn_tasks: Set["asyncio.Task"] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_started = False
        self._stop_done: Optional["asyncio.Event"] = None
        registry = obs.get_registry()
        self._conn_gauge = registry.gauge("net.connections")
        self._conn_counter = registry.counter("net.connections.opened")
        self._http_counter = registry.counter("net.http.requests")
        self._drop_counter = registry.counter("net.connections.dropped")
        self._events = obs.get_events()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.port,
            limit=MAX_LINE_BYTES,
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — authoritative when port was 0."""
        if self._server is None:
            raise RuntimeError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self, drain_seconds: float = 0.0) -> None:
        """Stop listening, drain in-flight sessions, cut off stragglers.

        The listener closes first — no connection arrives after stop
        begins — then busy sessions get up to ``drain_seconds`` to
        finish their current responses.  Whatever is still running
        after the deadline is cancelled (its connection closes without
        a response, which clients classify as a drop, not a hang).

        Idempotent and concurrency-safe: a second ``stop`` (a repeated
        SIGTERM, or a signal racing an already-draining shutdown) must
        not raise or double-close the listener, so later callers just
        await the first call's completion.  The started-flag check and
        set happen with no ``await`` between them, which makes them
        atomic on the event loop.
        """
        if self._stop_started:
            if self._stop_done is not None:
                await self._stop_done.wait()
            return
        self._stop_started = True
        self._stop_done = asyncio.Event()
        try:
            server, self._server = self._server, None
            if server is not None:
                server.close()
                await server.wait_closed()
            if drain_seconds > 0:
                deadline = asyncio.get_running_loop().time() + drain_seconds
                while self._busy > 0:
                    if asyncio.get_running_loop().time() >= deadline:
                        break
                    await asyncio.sleep(0.01)
            tasks = [t for t in self._conn_tasks if not t.done()]
            for task in tasks:
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            self._stop_done.set()

    @property
    def draining(self) -> int:
        """Connections still inside request handling (stop() waits on these)."""
        return self._busy

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _conn_fault(self, index: int) -> bool:
        """True when ``fault_plan`` says to drop connection ``index``."""
        if self.fault_plan is None:
            return False
        fault = self.fault_plan.decide(index)
        return fault is not None and fault.kind == "conn_drop"

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn_index = self.connections_total
        self.connections_total += 1
        self._open_connections += 1
        self._conn_gauge.set(self._open_connections)
        self._conn_counter.inc()
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            try:
                first = await self._read_line(reader, writer)
            except _LineTooLong:
                return
            if first is None:
                return
            if self._conn_fault(conn_index):
                # injected abrupt close: request read, never answered
                self.conns_dropped += 1
                self._drop_counter.inc()
                if self._events.enabled:
                    self._events.emit(
                        {"type": "conn_dropped", "connection": conn_index}
                    )
                return
            match = _HTTP_REQUEST_RE.match(first.rstrip(b"\n"))
            if match:
                await self._handle_http(match, reader, writer)
            else:
                await self._handle_jsonl(first, reader, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.TimeoutError):
            pass  # client went away mid-request; nothing left to answer
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._open_connections -= 1
            self._conn_gauge.set(self._open_connections)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_line(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[bytes]:
        """One line, or None at EOF; answers + raises on over-long lines.

        A partial final line (no trailing newline before EOF) is
        returned as-is so the request still gets its response.
        """
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            response = {
                "ok": False,
                "error": f"request line exceeds {MAX_LINE_BYTES} bytes",
            }
            writer.write(json.dumps(response).encode() + b"\n")
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
            raise _LineTooLong()
        return line if line else None

    # ------------------------------------------------------------------
    # JSONL protocol stream
    # ------------------------------------------------------------------
    async def _handle_jsonl(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        session = ProtocolSession(self.engine, sampler=self.sampler)
        line: Optional[bytes] = first
        while line is not None:
            self._busy += 1
            try:
                response = await self._respond(session, line)
                if response is not None:
                    writer.write(json.dumps(response).encode() + b"\n")
                    await writer.drain()
                    self.responses_total += 1
            finally:
                self._busy -= 1
            try:
                line = await self._read_line(reader, writer)
            except _LineTooLong:
                return

    async def _respond(self, session: ProtocolSession, raw: bytes) -> Optional[dict]:
        """Run one protocol line without blocking the event loop."""
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            return {"ok": False, "error": f"invalid utf-8 in request: {exc}"}
        try:
            pending = session.begin(text)
            if pending is None:
                return None
            if pending.ready:
                return pending.response
            raw_result = await asyncio.wrap_future(pending.future)
            return pending.finish(raw_result)
        except Exception as exc:  # engine bugs answer in-band, stream lives
            return internal_error_response(exc)

    # ------------------------------------------------------------------
    # HTTP endpoints
    # ------------------------------------------------------------------
    async def _handle_http(
        self,
        match: "re.Match[bytes]",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.http_requests += 1
        self._http_counter.inc()
        method = match.group(1).decode()
        path = match.group(2).decode().split("?", 1)[0]
        # drain request headers; bodies are not accepted on any route
        while True:
            header = await reader.readline()
            if not header or header in (b"\r\n", b"\n"):
                break

        if method not in ("GET", "HEAD"):
            body = b"method not allowed\n"
            await self._write_http(
                writer, 405, "Method Not Allowed", "text/plain", body,
                head=method == "HEAD", extra="Allow: GET, HEAD\r\n",
            )
            return
        if path == "/metrics":
            text = format_prometheus(self.engine.metrics_snapshot())
            await self._write_http(
                writer, 200, "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                text.encode(), head=method == "HEAD",
            )
            return
        if path == "/healthz":
            health = self.engine.health()
            # sharded deployments report `serving` (any shard up); 503
            # only when nothing can answer.  Single engines keep the
            # pool-liveness criterion.
            if "serving" in health:
                healthy = bool(health["serving"])
            else:
                healthy = bool(health.get("pool", {}).get("alive", False))
            status, phrase = (200, "OK") if healthy else (503, "Service Unavailable")
            body = json.dumps({"ok": healthy, **health}).encode() + b"\n"
            await self._write_http(
                writer, status, phrase, "application/json", body,
                head=method == "HEAD",
            )
            return
        await self._write_http(
            writer, 404, "Not Found", "text/plain",
            b"not found (have /metrics, /healthz)\n", head=method == "HEAD",
        )

    async def _write_http(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        phrase: str,
        content_type: str,
        body: bytes,
        *,
        head: bool = False,
        extra: str = "",
    ) -> None:
        writer.write(
            (
                f"HTTP/1.1 {status} {phrase}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"{extra}"
                "Connection: close\r\n"
                "\r\n"
            ).encode()
        )
        if not head:
            writer.write(body)
        await writer.drain()


class _LineTooLong(Exception):
    """Internal: the offending connection was answered and must close."""
