"""Closed-loop load generator for the network front-end.

``repro loadgen`` drives a running ``repro serve --listen`` endpoint
with N concurrent connections, each a closed loop: send one query,
await its response, immediately send the next.  Offered load therefore
tracks service capacity (the classic closed-loop property), and
``--connections`` is exactly the concurrency the admission controller
sees — 512 connections against ``--max-inflight 64`` *must* shed,
which is what the overload acceptance check exploits.

Sources are drawn Zipf-distributed (``--zipf A``, ``A > 1``) so a hot
set of sources exercises the result cache and the coalescing window
the way skewed production traffic would; ``A <= 1`` falls back to
uniform.  Graphs round-robin across the catalog discovered via the
``graphs`` op unless ``--graph`` pins one.

Workers are chaos-hardened clients: a dropped connection (EOF, reset)
is counted and *reconnected*, not fatal, and every read carries a
timeout so a wedged server shows up as a ``hung`` count instead of a
hung load generator.  That makes the tally itself the chaos drill's
verdict — ``hung == 0`` is the "no client ever waits forever" claim,
measured rather than asserted.

Results come back as a JSON-ready summary — counts (ok / shed /
unavailable / errors / dropped / hung), achieved qps, and latency
percentiles — which the CLI also folds into ``bench.net.*`` gauges in
a metrics snapshot file, the same schema the benchmark suite and
``repro top`` read.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.net.admission import OVERLOADED_PREFIX, UNAVAILABLE_PREFIX
from repro.net.server import parse_listen

__all__ = ["run_loadgen", "summarize"]


def _percentiles(latencies: List[float]) -> Dict[str, float]:
    if not latencies:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}
    arr = np.asarray(latencies) * 1000.0
    p50, p95, p99 = np.percentile(arr, [50, 95, 99])
    return {
        "p50_ms": round(float(p50), 3),
        "p95_ms": round(float(p95), 3),
        "p99_ms": round(float(p99), 3),
        "max_ms": round(float(arr.max()), 3),
    }


class _Tally:
    """Shared counters all worker connections fold into.

    Every request a worker sends terminates in exactly one bucket:
    ``ok``, ``shed`` (admission), ``unavailable`` (shard down,
    retryable), ``errors`` (anything else in-band), ``dropped`` (the
    connection died before the response arrived) or ``hung`` (no
    response within the read timeout).  ``sent == ok + shed +
    unavailable + errors + dropped + hung`` always holds — nothing
    vanishes, which is the invariant the chaos drill audits.
    """

    def __init__(self):
        self.sent = 0
        self.ok = 0
        self.shed = 0
        self.unavailable = 0
        self.errors = 0
        self.dropped = 0
        self.hung = 0
        self.cache_hits = 0
        self.latencies: List[float] = []
        self.error_samples: List[str] = []

    def record(self, response: dict, elapsed: float) -> None:
        self.sent += 1
        self.latencies.append(elapsed)
        if response.get("ok"):
            self.ok += 1
            if response.get("cache") in ("hit", "coalesced"):
                self.cache_hits += 1
            return
        error = str(response.get("error", ""))
        if error.startswith(OVERLOADED_PREFIX):
            self.shed += 1
        elif error.startswith(UNAVAILABLE_PREFIX):
            self.unavailable += 1
        else:
            self.errors += 1
            if len(self.error_samples) < 5:
                self.error_samples.append(error)

    def record_dropped(self) -> None:
        self.sent += 1
        self.dropped += 1

    def record_hung(self) -> None:
        self.sent += 1
        self.hung += 1


async def _discover_graphs(
    host: str, port: int, attempts: int = 3
) -> List[dict]:
    """One ``graphs`` op round-trip: the catalog rows (id, nodes, ...).

    Retries a few times: a chaos drill's ``conn_drop`` fault (or any
    flaky network) can kill this very connection, and the load run
    should start anyway.
    """
    last_error: Optional[BaseException] = None
    for _ in range(attempts):
        line = b""
        try:
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(b'{"op": "graphs"}\n')
                await writer.drain()
                line = await reader.readline()
            finally:
                await _close(writer)
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            last_error = exc
            await asyncio.sleep(0.02)
            continue
        if not line:  # dropped before the answer: dial again
            last_error = None
            await asyncio.sleep(0.02)
            continue
        response = json.loads(line)
        if not response.get("ok"):
            raise RuntimeError(f"graphs op failed: {response.get('error')}")
        graphs = response["graphs"]
        if not graphs:
            raise RuntimeError("server catalog is empty")
        return graphs
    if last_error is not None:
        raise last_error  # unreachable target: let the caller say so
    raise RuntimeError("connection dropped during graph discovery")


def _draw_source(rng: np.random.Generator, nodes: int, zipf_a: float) -> int:
    if zipf_a > 1.0:
        return int((rng.zipf(zipf_a) - 1) % nodes)
    return int(rng.integers(0, nodes))


async def _connect(host: str, port: int, deadline: float):
    """Dial until it works or the run deadline passes; None on give-up."""
    while time.perf_counter() < deadline:
        try:
            return await asyncio.open_connection(host, port)
        except (ConnectionRefusedError, OSError):
            await asyncio.sleep(0.02)
    return None


async def _close(writer: Optional[asyncio.StreamWriter]) -> None:
    if writer is None:
        return
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError):
        pass


async def _worker(
    index: int,
    host: str,
    port: int,
    graphs: List[Tuple[str, int]],
    deadline: float,
    tally: _Tally,
    *,
    zipf_a: float,
    batch: int,
    algorithm: Optional[str],
    seed: int,
    read_timeout_seconds: float,
    collect: Optional[List[dict]],
) -> None:
    rng = np.random.default_rng(seed + index)
    reader: Optional[asyncio.StreamReader] = None
    writer: Optional[asyncio.StreamWriter] = None
    turn = index  # stagger the round-robin start across workers
    try:
        while time.perf_counter() < deadline:
            if writer is None:
                conn = await _connect(host, port, deadline)
                if conn is None:
                    return  # run is over; nothing was left unanswered
                reader, writer = conn
            graph_id, nodes = graphs[turn % len(graphs)]
            turn += 1
            request: dict = {"op": "query", "graph": graph_id}
            source: Optional[int] = None
            if batch > 1:
                request["sources"] = [
                    _draw_source(rng, nodes, zipf_a) for _ in range(batch)
                ]
            else:
                source = _draw_source(rng, nodes, zipf_a)
                request["source"] = source
            if algorithm:
                request["algorithm"] = algorithm
            t0 = time.perf_counter()
            try:
                writer.write(json.dumps(request).encode() + b"\n")
                await writer.drain()
                line = await asyncio.wait_for(
                    reader.readline(), timeout=read_timeout_seconds
                )
            except asyncio.TimeoutError:
                # no response in time: the one outcome chaos drills
                # must prove impossible — count it and move on
                tally.record_hung()
                await _close(writer)
                reader = writer = None
                continue
            except (ConnectionResetError, BrokenPipeError, OSError):
                tally.record_dropped()
                await _close(writer)
                reader = writer = None
                continue
            if not line:
                # clean EOF mid-request (e.g. an injected conn_drop):
                # the request died with the connection — reconnect
                tally.record_dropped()
                await _close(writer)
                reader = writer = None
                continue
            response = json.loads(line)
            tally.record(response, time.perf_counter() - t0)
            if (
                collect is not None
                and response.get("ok")
                and source is not None
                and "reached" in response
            ):
                collect.append(
                    {
                        "graph": graph_id,
                        "source": source,
                        "reached": response["reached"],
                        "max_dist": response["max_dist"],
                        "mean_dist": response["mean_dist"],
                    }
                )
    finally:
        await _close(writer)


def summarize(tally: _Tally, wall_seconds: float, connections: int) -> dict:
    """Fold a run's tally into the JSON-ready loadgen report."""
    qps = tally.sent / wall_seconds if wall_seconds > 0 else 0.0
    return {
        "connections": connections,
        "wall_seconds": round(wall_seconds, 3),
        "sent": tally.sent,
        "ok": tally.ok,
        "shed": tally.shed,
        "unavailable": tally.unavailable,
        "errors": tally.errors,
        "dropped": tally.dropped,
        "hung": tally.hung,
        "cache_hits": tally.cache_hits,
        "qps": round(qps, 2),
        "latency": _percentiles(tally.latencies),
        "error_samples": tally.error_samples,
    }


async def run_loadgen(
    listen: str,
    *,
    connections: int = 8,
    duration_seconds: float = 5.0,
    zipf_a: float = 1.2,
    batch: int = 1,
    graph: Optional[str] = None,
    algorithm: Optional[str] = None,
    seed: int = 7,
    read_timeout_seconds: float = 30.0,
    collect: Optional[List[dict]] = None,
) -> dict:
    """Drive ``listen`` (HOST:PORT) closed-loop; return the summary dict.

    ``read_timeout_seconds`` bounds every response wait — a silent
    server costs one ``hung`` count and a reconnect, never a stuck
    worker.  ``collect``, when given a list, receives one row per
    successful single-source response (graph, source, reached,
    max_dist, mean_dist) for offline verification against Dijkstra.
    """
    if connections < 1:
        raise ValueError("connections must be >= 1")
    if duration_seconds <= 0:
        raise ValueError("duration_seconds must be positive")
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if read_timeout_seconds <= 0:
        raise ValueError("read_timeout_seconds must be positive")
    host, port = parse_listen(listen)
    rows = await _discover_graphs(host, port)
    if graph is not None:
        rows = [r for r in rows if r["id"] == graph]
        if not rows:
            raise RuntimeError(f"graph {graph!r} not in server catalog")
    graphs = [(r["id"], int(r["nodes"])) for r in rows]
    tally = _Tally()
    t0 = time.perf_counter()
    deadline = t0 + duration_seconds
    await asyncio.gather(
        *(
            _worker(
                i, host, port, graphs, deadline, tally,
                zipf_a=zipf_a, batch=batch, algorithm=algorithm, seed=seed,
                read_timeout_seconds=read_timeout_seconds, collect=collect,
            )
            for i in range(connections)
        )
    )
    return summarize(tally, time.perf_counter() - t0, connections)
