"""Closed-loop load generator for the network front-end.

``repro loadgen`` drives a running ``repro serve --listen`` endpoint
with N concurrent connections, each a closed loop: send one query,
await its response, immediately send the next.  Offered load therefore
tracks service capacity (the classic closed-loop property), and
``--connections`` is exactly the concurrency the admission controller
sees — 512 connections against ``--max-inflight 64`` *must* shed,
which is what the overload acceptance check exploits.

Sources are drawn Zipf-distributed (``--zipf A``, ``A > 1``) so a hot
set of sources exercises the result cache and the coalescing window
the way skewed production traffic would; ``A <= 1`` falls back to
uniform.  Graphs round-robin across the catalog discovered via the
``graphs`` op unless ``--graph`` pins one.

Results come back as a JSON-ready summary — counts (ok / shed /
errors), achieved qps, and latency percentiles — which the CLI also
folds into ``bench.net.*`` gauges in a metrics snapshot file, the same
schema the benchmark suite and ``repro top`` read.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.net.admission import OVERLOADED_PREFIX
from repro.net.server import parse_listen

__all__ = ["run_loadgen", "summarize"]


def _percentiles(latencies: List[float]) -> Dict[str, float]:
    if not latencies:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}
    arr = np.asarray(latencies) * 1000.0
    p50, p95, p99 = np.percentile(arr, [50, 95, 99])
    return {
        "p50_ms": round(float(p50), 3),
        "p95_ms": round(float(p95), 3),
        "p99_ms": round(float(p99), 3),
        "max_ms": round(float(arr.max()), 3),
    }


class _Tally:
    """Shared counters all worker connections fold into."""

    def __init__(self):
        self.sent = 0
        self.ok = 0
        self.shed = 0
        self.errors = 0
        self.cache_hits = 0
        self.latencies: List[float] = []
        self.error_samples: List[str] = []

    def record(self, response: dict, elapsed: float) -> None:
        self.sent += 1
        self.latencies.append(elapsed)
        if response.get("ok"):
            self.ok += 1
            if response.get("cache") in ("hit", "coalesced"):
                self.cache_hits += 1
            return
        error = str(response.get("error", ""))
        if error.startswith(OVERLOADED_PREFIX):
            self.shed += 1
        else:
            self.errors += 1
            if len(self.error_samples) < 5:
                self.error_samples.append(error)


async def _discover_graphs(host: str, port: int) -> List[dict]:
    """One ``graphs`` op round-trip: the catalog rows (id, nodes, ...)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(b'{"op": "graphs"}\n')
        await writer.drain()
        line = await reader.readline()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    response = json.loads(line)
    if not response.get("ok"):
        raise RuntimeError(f"graphs op failed: {response.get('error')}")
    graphs = response["graphs"]
    if not graphs:
        raise RuntimeError("server catalog is empty")
    return graphs


def _draw_source(rng: np.random.Generator, nodes: int, zipf_a: float) -> int:
    if zipf_a > 1.0:
        return int((rng.zipf(zipf_a) - 1) % nodes)
    return int(rng.integers(0, nodes))


async def _worker(
    index: int,
    host: str,
    port: int,
    graphs: List[Tuple[str, int]],
    deadline: float,
    tally: _Tally,
    *,
    zipf_a: float,
    batch: int,
    algorithm: Optional[str],
    seed: int,
) -> None:
    rng = np.random.default_rng(seed + index)
    reader, writer = await asyncio.open_connection(host, port)
    try:
        turn = index  # stagger the round-robin start across workers
        while time.perf_counter() < deadline:
            graph_id, nodes = graphs[turn % len(graphs)]
            turn += 1
            request: dict = {"op": "query", "graph": graph_id}
            if batch > 1:
                request["sources"] = [
                    _draw_source(rng, nodes, zipf_a) for _ in range(batch)
                ]
            else:
                request["source"] = _draw_source(rng, nodes, zipf_a)
            if algorithm:
                request["algorithm"] = algorithm
            t0 = time.perf_counter()
            writer.write(json.dumps(request).encode() + b"\n")
            await writer.drain()
            line = await reader.readline()
            if not line:
                break  # server closed on us; stop this worker
            tally.record(json.loads(line), time.perf_counter() - t0)
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def summarize(tally: _Tally, wall_seconds: float, connections: int) -> dict:
    """Fold a run's tally into the JSON-ready loadgen report."""
    qps = tally.sent / wall_seconds if wall_seconds > 0 else 0.0
    return {
        "connections": connections,
        "wall_seconds": round(wall_seconds, 3),
        "sent": tally.sent,
        "ok": tally.ok,
        "shed": tally.shed,
        "errors": tally.errors,
        "cache_hits": tally.cache_hits,
        "qps": round(qps, 2),
        "latency": _percentiles(tally.latencies),
        "error_samples": tally.error_samples,
    }


async def run_loadgen(
    listen: str,
    *,
    connections: int = 8,
    duration_seconds: float = 5.0,
    zipf_a: float = 1.2,
    batch: int = 1,
    graph: Optional[str] = None,
    algorithm: Optional[str] = None,
    seed: int = 7,
) -> dict:
    """Drive ``listen`` (HOST:PORT) closed-loop; return the summary dict."""
    if connections < 1:
        raise ValueError("connections must be >= 1")
    if duration_seconds <= 0:
        raise ValueError("duration_seconds must be positive")
    if batch < 1:
        raise ValueError("batch must be >= 1")
    host, port = parse_listen(listen)
    rows = await _discover_graphs(host, port)
    if graph is not None:
        rows = [r for r in rows if r["id"] == graph]
        if not rows:
            raise RuntimeError(f"graph {graph!r} not in server catalog")
    graphs = [(r["id"], int(r["nodes"])) for r in rows]
    tally = _Tally()
    t0 = time.perf_counter()
    deadline = t0 + duration_seconds
    await asyncio.gather(
        *(
            _worker(
                i, host, port, graphs, deadline, tally,
                zipf_a=zipf_a, batch=batch, algorithm=algorithm, seed=seed,
            )
            for i in range(connections)
        )
    )
    return summarize(tally, time.perf_counter() - t0, connections)
