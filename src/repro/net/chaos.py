"""The network-tier chaos drill: shard death under live traffic.

``repro chaos-net`` stands up a real multi-shard TCP deployment —
catalog, admission control, :class:`~repro.net.shard.ShardManager`,
:class:`~repro.net.supervisor.ShardSupervisor`,
:class:`~repro.net.server.NetServer` on an ephemeral port — injects a
scheduled network-tier fault (a dispatcher crash by default) while the
closed-loop load generator is driving it, and audits the three claims
the robustness work makes:

1. **no hangs** — every client request terminates: an answer, an
   in-band retryable error (``overloaded`` / ``unavailable``), or a
   connection drop the client reconnects through.  The loadgen tally's
   ``hung`` count *is* this claim; the drill fails if it is nonzero.
2. **no wrong answers** — every successful single-source response is
   cross-checked against a clean Dijkstra run on the same graph and
   source (the same verification ``repro faults`` applies below the
   pool).  Failover re-adoption must not change a single distance.
3. **bounded recovery** — a crashed shard is restarted and serving
   again within the restart policy's worst-case backoff budget; the
   supervisor's measured downtime is the drill's recovery metric (and
   CI's ``bench.net.recovery_ms`` gate).

Everything is deterministic where it can be: the fault is a
:class:`~repro.resilience.faults.ScheduledFaultPlan` (fires at an
exact dispatch cycle on an exact shard), sources are seeded, and the
restart schedule is the seeded :class:`~repro.resilience.retry.RestartPolicy`.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional

import numpy as np

from repro.net.admission import AdmissionController
from repro.net.loadgen import run_loadgen
from repro.net.server import NetServer
from repro.net.shard import ShardManager
from repro.net.supervisor import ShardSupervisor
from repro.resilience.faults import (
    NET_FAULT_KINDS,
    WORKER_FAULT_KINDS,
    ScheduledFaultPlan,
)
from repro.resilience.retry import RestartPolicy
from repro.service.catalog import GraphCatalog, default_catalog

__all__ = ["run_chaos_drill"]

# kinds that sabotage a shard dispatcher (vs the server's conn_drop)
_DISPATCHER_KINDS = ("shard_crash", "dispatcher_hang", "slow_shard")

# kinds after which the drill demands a supervised restart
# (worker_kill / worker_oom end the worker *process*; the supervisor
# must detect the death via waitpid and respawn within budget)
_LETHAL_KINDS = ("shard_crash", "dispatcher_hang", "worker_kill", "worker_oom")


def _verify_rows(
    catalog: GraphCatalog, rows: List[dict]
) -> Dict[str, object]:
    """Cross-check collected responses against clean Dijkstra runs."""
    from repro.sssp import dijkstra

    reference: Dict[tuple, dict] = {}
    mismatches: List[dict] = []
    for row in rows:
        key = (row["graph"], row["source"])
        ref = reference.get(key)
        if ref is None:
            clean = dijkstra(catalog.get(row["graph"]), row["source"])
            finite = clean.finite_distances()
            ref = {
                "reached": clean.num_reached,
                "max_dist": float(finite.max()) if finite.size else None,
                "mean_dist": float(finite.mean()) if finite.size else None,
            }
            reference[key] = ref
        wrong = row["reached"] != ref["reached"]
        for field in ("max_dist", "mean_dist"):
            got, want = row[field], ref[field]
            if (got is None) != (want is None):
                wrong = True
            elif got is not None and not np.isclose(
                got, want, rtol=1e-9, atol=1e-12
            ):
                wrong = True
        if wrong and len(mismatches) < 5:
            mismatches.append({"got": dict(row), "want": dict(ref)})
        elif wrong:
            mismatches.append({})  # count-only past the sample cap
    return {
        "checked": len(rows),
        "unique_sources": len(reference),
        "mismatches": len(mismatches),
        "mismatch_samples": [m for m in mismatches if m][:5],
    }


async def _recovery_wait(
    supervisor: ShardSupervisor, deadline_seconds: float
) -> bool:
    """Poll until every supervised shard is back up (or time runs out)."""
    deadline = time.perf_counter() + deadline_seconds
    while time.perf_counter() < deadline:
        report = supervisor.report()
        if all(s["state"] == "up" for s in report["shards"].values()):
            return True
        await asyncio.sleep(0.02)
    report = supervisor.report()
    return all(s["state"] == "up" for s in report["shards"].values())


def run_chaos_drill(
    *,
    shards: int = 2,
    scale: float = 0.005,
    catalog: Optional[GraphCatalog] = None,
    connections: int = 8,
    duration_seconds: float = 3.0,
    crash_at: int = 2,
    crash_shard: int = 0,
    fault_kind: str = "shard_crash",
    hang_seconds: float = 1.0,
    failover: str = "failfast",
    restart_policy: Optional[RestartPolicy] = None,
    stall_seconds: float = 0.4,
    check_interval: float = 0.02,
    max_inflight: int = 256,
    deadline_ms: Optional[float] = None,
    drain_limit: int = 64,
    workers: int = 2,
    zipf_a: float = 1.2,
    seed: int = 7,
    read_timeout_seconds: float = 10.0,
    drain_seconds: float = 0.5,
    verify: bool = True,
    shard_mode: str = "thread",
    heartbeat_ms: float = 250.0,
) -> dict:
    """Run one seeded network-tier chaos drill; return its report.

    The report's ``ok`` is the drill verdict: zero hung clients, zero
    non-retryable errors, zero Dijkstra mismatches, and (for lethal
    fault kinds) the crashed shard restarted within the recovery
    deadline.  ``repro chaos-net`` exits nonzero when ``ok`` is False;
    the CI smoke job and the recovery benchmark both run through here.
    """
    if fault_kind not in NET_FAULT_KINDS:
        raise ValueError(
            f"fault_kind must be one of {', '.join(NET_FAULT_KINDS)}; "
            f"got {fault_kind!r}"
        )
    if shard_mode not in ("thread", "process"):
        raise ValueError(
            f"shard_mode must be 'thread' or 'process', got {shard_mode!r}"
        )
    if fault_kind in WORKER_FAULT_KINDS and shard_mode != "process":
        raise ValueError(
            f"fault kind {fault_kind!r} needs shard_mode='process' "
            "(it sabotages the worker process)"
        )
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if crash_shard < 0 or crash_shard >= shards:
        raise ValueError(f"crash_shard must be in [0, {shards})")
    policy = restart_policy if restart_policy is not None else RestartPolicy()
    plan = ScheduledFaultPlan(
        at=(crash_at,), kind=fault_kind, hang_seconds=hang_seconds
    )
    cat = catalog if catalog is not None else default_catalog(scale)
    collected: List[dict] = []
    lethal = fault_kind in _LETHAL_KINDS
    # worst-case supervised recovery: detection (a stall must age out)
    # plus the full backoff budget, plus slack for the rebuild itself
    # (process mode pays a worker spawn — interpreter + numpy import —
    # per restart, so it gets extra headroom)
    recovery_deadline = (
        policy.max_recovery_seconds() + stall_seconds + hang_seconds + 5.0
        + (10.0 if shard_mode == "process" else 0.0)
    )

    admission = AdmissionController(
        max_inflight=max_inflight,
        deadline_seconds=(
            deadline_ms / 1000.0 if deadline_ms is not None else None
        ),
    )
    shard_fault_kinds = _DISPATCHER_KINDS + (
        WORKER_FAULT_KINDS if shard_mode == "process" else ()
    )
    manager = ShardManager(
        cat,
        shards=shards,
        admission=admission,
        drain_limit=drain_limit,
        net_fault_plan=plan if fault_kind in shard_fault_kinds else None,
        net_fault_shard=crash_shard,
        shard_mode=shard_mode,
        heartbeat_ms=heartbeat_ms,
        mode="thread",
        max_workers=workers,
    )
    supervisor = ShardSupervisor(
        manager,
        restart_policy=policy,
        failover=failover,
        check_interval=check_interval,
        stall_seconds=stall_seconds,
    )
    server = NetServer(
        manager,
        port=0,
        fault_plan=plan if fault_kind == "conn_drop" else None,
    )

    async def _drill() -> dict:
        await server.start()
        host, port = server.address
        serve_task = asyncio.ensure_future(server.serve_forever())
        supervisor.start()
        try:
            summary = await run_loadgen(
                f"{host}:{port}",
                connections=connections,
                duration_seconds=duration_seconds,
                zipf_a=zipf_a,
                seed=seed,
                read_timeout_seconds=read_timeout_seconds,
                collect=collected if verify else None,
            )
            recovered = await _recovery_wait(
                supervisor, recovery_deadline if lethal else 0.2
            )
        finally:
            supervisor.stop()
            serve_task.cancel()
            try:
                await serve_task
            except (asyncio.CancelledError, Exception):
                pass
            await server.stop(drain_seconds=drain_seconds)
        return {"summary": summary, "recovered": recovered}

    t0 = time.perf_counter()
    outcome = asyncio.run(_drill())
    wall = time.perf_counter() - t0
    try:
        sup_report = supervisor.report()
        verification = (
            _verify_rows(cat, collected)
            if verify
            else {"checked": 0, "mismatches": 0, "skipped": True}
        )
    finally:
        manager.close(cancel_pending=True)

    summary = outcome["summary"]
    recoveries = [
        s["last_recovery_ms"]
        for s in sup_report["shards"].values()
        if s["last_recovery_ms"] is not None
    ]
    restarts = sum(s["restarts"] for s in sup_report["shards"].values())
    recovered = bool(outcome["recovered"]) and (not lethal or restarts > 0)
    ok = (
        summary["hung"] == 0
        and summary["errors"] == 0
        and int(verification.get("mismatches", 0)) == 0
        and recovered
    )
    return {
        "ok": ok,
        "wall_seconds": round(wall, 3),
        "shard_mode": shard_mode,
        "fault": {
            "kind": fault_kind,
            "at": crash_at,
            "shard": crash_shard,
            "failover": failover,
        },
        "summary": summary,
        "supervisor": sup_report,
        "restarts": restarts,
        "recovered": recovered,
        "recovery_ms": max(recoveries) if recoveries else None,
        "verification": verification,
    }
