"""Length-prefixed, checksummed frames for shard-worker sockets.

The front-end and its out-of-process shard workers
(:mod:`repro.net.worker`) exchange binary frames over a local TCP
socket.  Each frame is::

    !I   payload length (bytes; bounded by MAX_FRAME_BYTES)
    !B   frame type (FT_* constants)
    !Q   correlation id (request/response matching; 0 = unsolicited)
    !I   CRC-32 over (type, correlation id, payload)

followed by the payload.  The CRC covers the type and correlation id
as well as the payload so a bit-flip anywhere except the length prefix
is detected; because the length prefix is honest even for a corrupt
frame, the receiver stays in sync with the stream and can answer the
damaged correlation id with a retryable error instead of tearing the
connection down (:class:`FrameCorruptError` carries both fields).

The codec is deliberately transport-blocking (plain ``socket`` calls):
the worker side is a single-threaded loop and the client side runs a
dedicated reader thread, so asyncio never crosses the process
boundary.
"""

from __future__ import annotations

import json
import socket
import struct
import zlib
from typing import Optional, Tuple

__all__ = [
    "WIRE_VERSION",
    "MAX_FRAME_BYTES",
    "FT_HELLO",
    "FT_ADOPT",
    "FT_CONFIG",
    "FT_READY",
    "FT_REQUEST",
    "FT_RESPONSE",
    "FT_HEARTBEAT",
    "FT_ERROR",
    "FT_SHUTDOWN",
    "FT_ADOPT_OK",
    "FrameError",
    "FrameCorruptError",
    "FrameTooLarge",
    "frame_crc",
    "encode_frame",
    "encode_json_frame",
    "decode_json_payload",
    "send_frame",
    "send_json_frame",
    "recv_frame",
]

#: Version of *this* frame layout — checked in the HELLO handshake,
#: independent of the JSONL protocol version the front-end speaks.
WIRE_VERSION = 1

#: Upper bound on a single frame's payload; large enough for a packed
#: multi-million-edge graph image, small enough to catch a garbled
#: length prefix before a 4 GiB allocation.
MAX_FRAME_BYTES = 64 << 20

_HEADER = struct.Struct("!IBQI")
_CRC_SEED = struct.Struct("!BQ")

FT_HELLO = 1
FT_ADOPT = 2
FT_CONFIG = 3
FT_READY = 4
FT_REQUEST = 5
FT_RESPONSE = 6
FT_HEARTBEAT = 7
FT_ERROR = 8
FT_SHUTDOWN = 9
FT_ADOPT_OK = 10


class FrameError(RuntimeError):
    """The frame stream is unusable (desync, oversize, mid-frame loss)."""


class FrameTooLarge(FrameError):
    """A frame announced a payload beyond :data:`MAX_FRAME_BYTES`."""


class FrameCorruptError(FrameError):
    """CRC mismatch on an otherwise well-delimited frame.

    Recoverable: the stream itself is still framed correctly (the
    length prefix was honoured), so the receiver may fail just this
    ``corr`` and keep reading.
    """

    def __init__(self, message: str, *, frame_type: int = 0, corr: int = 0):
        super().__init__(message)
        self.frame_type = frame_type
        self.corr = corr


def frame_crc(frame_type: int, corr: int, payload: bytes) -> int:
    """CRC-32 over the type byte, correlation id and payload."""
    return zlib.crc32(payload, zlib.crc32(_CRC_SEED.pack(frame_type, corr))) & 0xFFFFFFFF


def encode_frame(frame_type: int, corr: int, payload: bytes) -> bytes:
    """Header + payload bytes ready for ``sendall``."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameTooLarge(
            f"payload of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    crc = frame_crc(frame_type, corr, payload)
    return _HEADER.pack(len(payload), frame_type, corr, crc) + payload


def encode_json_frame(frame_type: int, corr: int, obj) -> bytes:
    return encode_frame(
        frame_type, corr, json.dumps(obj, sort_keys=True).encode("utf-8")
    )


def decode_json_payload(payload: bytes) -> dict:
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable JSON payload: {exc}") from None
    if not isinstance(obj, dict):
        raise FrameError(f"JSON payload must be an object, got {type(obj).__name__}")
    return obj


def send_frame(sock: socket.socket, frame_type: int, corr: int, payload: bytes) -> int:
    """Encode and ``sendall`` one frame; returns bytes written."""
    data = encode_frame(frame_type, corr, payload)
    sock.sendall(data)
    return len(data)


def send_json_frame(sock: socket.socket, frame_type: int, corr: int, obj) -> int:
    data = encode_json_frame(frame_type, corr, obj)
    sock.sendall(data)
    return len(data)


def _recv_exact(
    sock: socket.socket,
    n: int,
    *,
    first_timeout: Optional[float],
    rest_timeout: Optional[float],
    mid_frame: bool = False,
) -> bytes:
    """Read exactly ``n`` bytes.

    The first ``recv`` runs under ``first_timeout`` (``socket.timeout``
    propagates — the caller treats it as an idle tick); once any byte
    has arrived (or when ``mid_frame`` is already set) the remaining
    reads run under ``rest_timeout`` and a timeout there is a *fatal*
    :class:`FrameError`, because a partial frame means the stream can
    never re-synchronise.
    """
    out = bytearray()
    sock.settimeout(rest_timeout if mid_frame else first_timeout)
    while len(out) < n:
        try:
            chunk = sock.recv(n - len(out))
        except socket.timeout:
            if mid_frame:
                raise FrameError(
                    f"timed out mid-frame after {len(out)} bytes"
                ) from None
            raise
        if not chunk:
            raise EOFError("frame stream closed")
        out += chunk
        if not mid_frame:
            mid_frame = True
            sock.settimeout(rest_timeout)
    return bytes(out)


def recv_frame(
    sock: socket.socket,
    *,
    idle_timeout: Optional[float] = None,
    frame_timeout: Optional[float] = 30.0,
) -> Tuple[int, int, bytes]:
    """Read one frame; returns ``(frame_type, corr, payload)``.

    Raises ``socket.timeout`` if no frame *starts* within
    ``idle_timeout`` (callers use this as their heartbeat tick),
    :class:`EOFError` on orderly close, :class:`FrameCorruptError` on a
    CRC mismatch (stream still usable), and :class:`FrameError` when
    the stream is beyond recovery (oversize or mid-frame stall).
    """
    header = _recv_exact(
        sock,
        _HEADER.size,
        first_timeout=idle_timeout,
        rest_timeout=frame_timeout,
    )
    length, frame_type, corr, crc = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameTooLarge(
            f"incoming frame announces {length} bytes (max {MAX_FRAME_BYTES})"
        )
    payload = b""
    if length:
        payload = _recv_exact(
            sock,
            length,
            first_timeout=frame_timeout,
            rest_timeout=frame_timeout,
            mid_frame=True,  # header already consumed: timeouts are fatal
        )
    if frame_crc(frame_type, corr, payload) != crc:
        raise FrameCorruptError(
            f"CRC mismatch on frame type {frame_type} corr {corr}",
            frame_type=frame_type,
            corr=corr,
        )
    return frame_type, corr, payload
