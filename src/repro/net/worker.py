"""Out-of-process shard workers: OS-level crash isolation per shard.

Thread-mode shards (:class:`~repro.net.shard.Shard`) share the
front-end's address space, so a segfaulting kernel or an OOM kill
takes the whole server down.  Process mode moves each shard's
:class:`~repro.service.engine.QueryEngine` into a separate **worker
process** (``repro shard-worker``, spawned by the front-end) that
speaks the length-prefixed, checksummed frame protocol of
:mod:`repro.net.frames` over a loopback TCP socket:

* :func:`run_worker` — the worker side: connect back to the parent,
  HELLO handshake (wire version, JSONL protocol version, spawn token),
  adopt packed graphs (fingerprint-verified both ways), build the
  engine from the CONFIG frame, then answer REQUEST frames and beat
  HEARTBEAT frames while idle.  Single-threaded by design: a beating
  worker is provably not wedged.
* :class:`WorkerClient` — the parent side: spawns and handshakes the
  process, correlates async request/response frames under per-request
  deadlines and a bounded outstanding-frame window, detects death by
  EOF *and* ``waitpid`` (SIGKILL/SIGSEGV show up as signal exits),
  and answers CRC-rejected frames with retryable errors instead of
  tearing the stream down.
* :class:`ProcessShard` — a drop-in :class:`~repro.net.shard.Shard`
  whose dispatch path forwards to the worker.  The supervisor restarts
  it exactly like a thread shard (``rebuild_shard`` spawns a fresh
  process and replays graph adoption), and ``--failover adopt``
  re-adoption crosses the process boundary through
  :meth:`_WorkerEngineProxy.adopt_graph`.

Failure semantics: a dead worker fails all in-flight correlations with
:class:`WorkerRequestError` (a :class:`~repro.net.shard.ShardDiedError`
subclass, so the manager answers in-band retryable ``unavailable:``
errors for exactly the dead shard's sources); a corrupt frame fails
only its own correlation id.  Worker-side telemetry is process-local
by construction — the worker runs under a null observability context
so its answers are byte-identical to thread mode's; the front-end
instead exports ``net.worker.*`` counters (restarts, heartbeat
misses, corrupt frames, bytes in/out) labelled ``{"shard": i}``.
"""

from __future__ import annotations

import os
import select
import signal
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import Future
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from repro import obs
from repro.net.frames import (
    FT_ADOPT,
    FT_ADOPT_OK,
    FT_CONFIG,
    FT_ERROR,
    FT_HEARTBEAT,
    FT_HELLO,
    FT_READY,
    FT_REQUEST,
    FT_RESPONSE,
    FT_SHUTDOWN,
    WIRE_VERSION,
    FrameCorruptError,
    FrameError,
    decode_json_payload,
    encode_frame,
    encode_json_frame,
    recv_frame,
    send_json_frame,
)
from repro.net.shard import Shard, ShardDiedError
from repro.service.catalog import GraphCatalog
from repro.service.engine import QueryEngine, QueryResponse, SSSPQuery
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.serial import (
    engine_config_from_wire,
    engine_config_to_wire,
    pack_graph,
    unpack_graph,
)
from repro.resilience.faults import WORKER_FAULT_KINDS, plan_from_wire, plan_to_wire

__all__ = [
    "HandshakeError",
    "ProcessShard",
    "WorkerClient",
    "WorkerRequestError",
    "query_from_wire",
    "query_to_wire",
    "run_worker",
]

#: Generous: a cold worker pays the numpy import before it can HELLO.
DEFAULT_SPAWN_TIMEOUT = 30.0

#: Outstanding REQUEST frames allowed per worker before submits fail
#: fast (retryable).  The dispatcher drains in merged groups, so the
#: window bounds memory, not throughput.
DEFAULT_WINDOW = 32

DEFAULT_REQUEST_DEADLINE = 60.0


class WorkerRequestError(ShardDiedError):
    """A worker request failed retryably (death, deadline, corruption).

    Subclasses :class:`~repro.net.shard.ShardDiedError` so the manager
    maps it to an in-band ``unavailable:`` answer and the supervisor's
    restart machinery stays the single recovery path.
    """


class HandshakeError(RuntimeError):
    """The worker failed version, token or fingerprint verification."""


# ----------------------------------------------------------------------
# query wire form (the REQUEST payload rows)
# ----------------------------------------------------------------------
def query_to_wire(query: SSSPQuery) -> dict:
    """A JSON-safe query row.  Traces stay on the front-end side."""
    return {
        "graph_id": query.graph_id,
        "source": query.source,
        "algorithm": query.algorithm,
        "params": dict(query.params),
        "request_id": query.request_id,
    }


def query_from_wire(data: Mapping) -> SSSPQuery:
    return SSSPQuery(
        graph_id=data["graph_id"],
        source=data["source"],
        algorithm=data["algorithm"],
        params=dict(data["params"]),
        request_id=data.get("request_id"),
    )


# ----------------------------------------------------------------------
# the worker side (runs inside `repro shard-worker`)
# ----------------------------------------------------------------------
def _die_oom() -> None:
    """Simulate an OOM kill: clamp our address space, then allocate.

    ``resource.setrlimit(RLIMIT_AS)`` makes the failure real (the
    allocator genuinely cannot map more memory), and ``os._exit(137)``
    mirrors the exit status the kernel OOM killer produces.
    """
    try:
        import resource

        _, hard = resource.getrlimit(resource.RLIMIT_AS)
        resource.setrlimit(resource.RLIMIT_AS, (256 << 20, hard))
        hog = []
        while True:
            hog.append(bytearray(16 << 20))
    except MemoryError:
        pass
    except Exception:
        pass
    os._exit(137)


class _WorkerProcess:
    """The worker's single-threaded serve loop over one parent socket."""

    def __init__(
        self,
        sock: socket.socket,
        *,
        shard_index: int,
        token: str,
        heartbeat_ms: float,
    ):
        self.sock = sock
        self.shard_index = shard_index
        self.token = token
        self.heartbeat_seconds = max(0.01, heartbeat_ms / 1000.0)
        self.catalog = GraphCatalog()
        self.engine: Optional[QueryEngine] = None
        self.fault_plan = None
        self._request_index = 0

    # -- faults --------------------------------------------------------
    def _next_worker_fault(self):
        if self.fault_plan is None:
            return None
        fault = self.fault_plan.decide(self._request_index)
        self._request_index += 1
        if fault is not None and fault.kind not in WORKER_FAULT_KINDS:
            return None  # dispatcher-tier kinds run on the parent side
        return fault

    # -- frame handlers ------------------------------------------------
    def _hello(self) -> None:
        send_json_frame(
            self.sock,
            FT_HELLO,
            0,
            {
                "wire_version": WIRE_VERSION,
                "protocol_version": PROTOCOL_VERSION,
                "pid": os.getpid(),
                "shard": self.shard_index,
                "token": self.token,
            },
        )

    def _handle_adopt(self, corr: int, payload: bytes) -> None:
        graph_id, graph = unpack_graph(payload)
        self.catalog.register(graph_id, graph)
        if self.engine is not None:
            self.engine.adopt_graph(graph_id, graph)
        send_json_frame(
            self.sock,
            FT_ADOPT_OK,
            corr,
            {"graph": graph_id, "fingerprint": graph.fingerprint()},
        )

    def _handle_config(self, corr: int, payload: bytes) -> None:
        cfg = decode_json_payload(payload)
        kwargs = engine_config_from_wire(cfg.get("engine", {}))
        self.heartbeat_seconds = max(
            0.01, float(cfg.get("heartbeat_ms", self.heartbeat_seconds * 1000.0)) / 1000.0
        )
        self.fault_plan = plan_from_wire(cfg.get("fault_plan"))
        self.engine = QueryEngine(self.catalog, **kwargs)
        send_json_frame(
            self.sock,
            FT_READY,
            corr,
            {
                "pid": os.getpid(),
                "graphs": {
                    gid: self.catalog.fingerprint(gid)
                    for gid in self.catalog.names()
                },
                "stats": self.engine.stats(),
                "health": self.engine.health(),
            },
        )

    def _handle_request(self, corr: int, payload: bytes) -> None:
        fault = self._next_worker_fault()
        if fault is not None and fault.kind == "worker_kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if fault is not None and fault.kind == "worker_oom":
            _die_oom()
        if self.engine is None:
            send_json_frame(
                self.sock,
                FT_ERROR,
                corr,
                {"error": "worker not configured yet", "retryable": True},
            )
            return
        body = decode_json_payload(payload)
        queries = [query_from_wire(row) for row in body["queries"]]
        try:
            responses = self.engine.run_many(queries)
        except Exception as exc:  # engine bugs answer in-band, non-retryable
            send_json_frame(
                self.sock,
                FT_ERROR,
                corr,
                {
                    "error": f"{type(exc).__name__}: {exc}",
                    "retryable": False,
                },
            )
            return
        frame = encode_json_frame(
            FT_RESPONSE,
            corr,
            {"responses": [r.to_wire() for r in responses]},
        )
        if fault is not None and fault.kind == "frame_corrupt":
            frame = bytearray(frame)
            frame[-1] ^= 0xFF  # flip a payload bit *after* the CRC was set
            frame = bytes(frame)
        self.sock.sendall(frame)

    def _heartbeat(self) -> None:
        stats = self.engine.stats() if self.engine is not None else None
        health = self.engine.health() if self.engine is not None else None
        send_json_frame(
            self.sock,
            FT_HEARTBEAT,
            0,
            {"pid": os.getpid(), "stats": stats, "health": health},
        )

    # -- the loop ------------------------------------------------------
    def serve(self) -> int:
        self._hello()
        try:
            while True:
                try:
                    frame_type, corr, payload = recv_frame(
                        self.sock, idle_timeout=self.heartbeat_seconds
                    )
                except socket.timeout:
                    self._heartbeat()
                    continue
                except FrameCorruptError as exc:
                    # parent→worker corruption: answer that corr
                    # retryably; the stream itself is still in sync
                    send_json_frame(
                        self.sock,
                        FT_ERROR,
                        exc.corr,
                        {"error": f"corrupt frame received: {exc}", "retryable": True},
                    )
                    continue
                if frame_type == FT_SHUTDOWN:
                    return 0
                if frame_type == FT_ADOPT:
                    self._handle_adopt(corr, payload)
                elif frame_type == FT_CONFIG:
                    self._handle_config(corr, payload)
                elif frame_type == FT_REQUEST:
                    self._handle_request(corr, payload)
                else:
                    send_json_frame(
                        self.sock,
                        FT_ERROR,
                        corr,
                        {
                            "error": f"unexpected frame type {frame_type}",
                            "retryable": True,
                        },
                    )
        except (EOFError, OSError, FrameError):
            return 0  # parent went away; die quietly, never orphan
        finally:
            if self.engine is not None:
                try:
                    self.engine.close(cancel_pending=True)
                except Exception:
                    pass
            try:
                self.sock.close()
            except Exception:
                pass


def run_worker(
    connect: str,
    *,
    shard_index: int,
    token: str,
    heartbeat_ms: float = 1000.0,
) -> int:
    """Entry point for ``repro shard-worker`` (one process, one shard).

    Connects back to the parent at ``host:port``, handshakes, and
    serves until SHUTDOWN or parent disappearance.  Returns the
    process exit code.
    """
    host, _, port = connect.rpartition(":")
    sock = socket.create_connection((host or "127.0.0.1", int(port)), timeout=10.0)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    worker = _WorkerProcess(
        sock, shard_index=shard_index, token=token, heartbeat_ms=heartbeat_ms
    )
    return worker.serve()


# ----------------------------------------------------------------------
# the parent side
# ----------------------------------------------------------------------
class _Pending:
    __slots__ = ("future", "deadline_at", "windowed")

    def __init__(self, future: Future, deadline_at: float, windowed: bool):
        self.future = future
        self.deadline_at = deadline_at
        self.windowed = windowed


class WorkerClient:
    """Spawn, handshake and drive one shard-worker process.

    The client owns the socket: a writer lock serialises frame sends,
    and a dedicated reader thread correlates everything inbound —
    RESPONSE / ERROR / ADOPT_OK resolve their correlation id's future,
    HEARTBEAT refreshes the liveness clock and the cached stats/health
    payloads, and a CRC-corrupt frame fails only its own correlation.
    Death (EOF, socket error, or the process reaped by ``waitpid``)
    fails every in-flight future with a retryable
    :class:`WorkerRequestError`.
    """

    def __init__(
        self,
        index: int,
        graphs: Mapping[str, "object"],
        *,
        engine_kwargs: Optional[Mapping] = None,
        fault_plan=None,
        heartbeat_ms: float = 1000.0,
        heartbeat_timeout_ms: Optional[float] = None,
        window: int = DEFAULT_WINDOW,
        spawn_timeout: float = DEFAULT_SPAWN_TIMEOUT,
    ):
        self.index = index
        self.heartbeat_ms = float(heartbeat_ms)
        self.heartbeat_timeout_seconds = (
            float(heartbeat_timeout_ms) / 1000.0
            if heartbeat_timeout_ms is not None
            else max(0.5, 4.0 * self.heartbeat_ms / 1000.0)
        )
        self.window = int(window)
        self._window_slots = threading.BoundedSemaphore(self.window)
        self._wlock = threading.Lock()
        self._plock = threading.Lock()
        self._pending: Dict[int, _Pending] = {}
        self._corr = 0
        self._dead = False
        self.death_reason: Optional[str] = None
        self.last_frame = time.monotonic()
        self.last_stats: Optional[dict] = None
        self.last_health: Optional[dict] = None
        self.graph_fingerprints: Dict[str, str] = {}
        self._hb_missing = False
        registry = obs.get_registry()
        labels = {"shard": str(index)}
        self._bytes_in = registry.counter("net.worker.bytes_in", labels)
        self._bytes_out = registry.counter("net.worker.bytes_out", labels)
        self._corrupt_counter = registry.counter("net.worker.frames_corrupt", labels)
        self._hb_miss_counter = registry.counter("net.worker.heartbeat_misses", labels)

        self._spawn(dict(graphs), dict(engine_kwargs or {}), fault_plan, spawn_timeout)
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"repro-worker-client-{index}",
            daemon=True,
        )
        self._reader.start()

    # -- spawn + handshake (synchronous; reader not running yet) -------
    def _spawn(
        self,
        graphs: Dict[str, "object"],
        engine_kwargs: Dict,
        fault_plan,
        spawn_timeout: float,
    ) -> None:
        import secrets

        import repro

        token = secrets.token_hex(8)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            listener.settimeout(spawn_timeout)
            port = listener.getsockname()[1]
            env = dict(os.environ)
            src_root = str(Path(repro.__file__).resolve().parents[1])
            existing = env.get("PYTHONPATH")
            env["PYTHONPATH"] = (
                src_root if not existing else src_root + os.pathsep + existing
            )
            self.proc = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "shard-worker",
                    "--connect",
                    f"127.0.0.1:{port}",
                    "--shard",
                    str(self.index),
                    "--token",
                    token,
                    "--heartbeat-ms",
                    str(self.heartbeat_ms),
                ],
                env=env,
                stdout=subprocess.DEVNULL,
                stdin=subprocess.DEVNULL,
            )
            try:
                while True:
                    sock, addr = listener.accept()
                    frame_type, _, payload = recv_frame(sock, idle_timeout=spawn_timeout)
                    hello = decode_json_payload(payload)
                    if frame_type != FT_HELLO or hello.get("token") != token:
                        sock.close()  # a stray local connection, not our child
                        continue
                    break
            except (socket.timeout, EOFError, FrameError) as exc:
                raise HandshakeError(
                    f"worker {self.index} never completed HELLO: {exc}"
                ) from None
        finally:
            listener.close()
        try:
            if hello.get("wire_version") != WIRE_VERSION:
                raise HandshakeError(
                    f"worker {self.index} speaks wire version "
                    f"{hello.get('wire_version')}, expected {WIRE_VERSION}"
                )
            if hello.get("protocol_version") != PROTOCOL_VERSION:
                raise HandshakeError(
                    f"worker {self.index} speaks protocol version "
                    f"{hello.get('protocol_version')}, expected {PROTOCOL_VERSION} "
                    "(stale handshake: mixed code versions?)"
                )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self.sock = sock
            self.pid = int(hello["pid"])
            # ship the graphs, fingerprint-checked both ways
            for graph_id in sorted(graphs):
                graph = graphs[graph_id]
                self._handshake_adopt(graph_id, graph, spawn_timeout)
            corr = self._next_corr()
            self._send_raw(
                encode_json_frame(
                    FT_CONFIG,
                    corr,
                    {
                        "engine": engine_config_to_wire(engine_kwargs),
                        "heartbeat_ms": self.heartbeat_ms,
                        "fault_plan": plan_to_wire(fault_plan),
                    },
                )
            )
            frame_type, got_corr, payload = recv_frame(
                self.sock, idle_timeout=spawn_timeout
            )
            ready = decode_json_payload(payload)
            if frame_type != FT_READY or got_corr != corr:
                raise HandshakeError(
                    f"worker {self.index} answered CONFIG with frame type "
                    f"{frame_type} corr {got_corr}"
                )
            if ready.get("graphs") != self.graph_fingerprints:
                raise HandshakeError(
                    f"worker {self.index} READY fingerprints diverge: "
                    f"{ready.get('graphs')} != {self.graph_fingerprints}"
                )
            self.last_stats = ready.get("stats")
            self.last_health = ready.get("health")
            self.last_frame = time.monotonic()
        except BaseException:
            self._terminate_process(graceful=False)
            raise

    def _handshake_adopt(self, graph_id: str, graph, timeout: float) -> None:
        corr = self._next_corr()
        self._send_raw(encode_frame(FT_ADOPT, corr, pack_graph(graph_id, graph)))
        frame_type, got_corr, payload = recv_frame(self.sock, idle_timeout=timeout)
        body = decode_json_payload(payload)
        expected = graph.fingerprint()
        if (
            frame_type != FT_ADOPT_OK
            or got_corr != corr
            or body.get("graph") != graph_id
            or body.get("fingerprint") != expected
        ):
            raise HandshakeError(
                f"worker {self.index} failed to adopt {graph_id!r}: "
                f"type={frame_type} corr={got_corr} body={body}"
            )
        self.graph_fingerprints[graph_id] = expected

    # -- the reader thread ---------------------------------------------
    def _read_loop(self) -> None:
        tick = 0.05
        while not self._dead:
            try:
                ready, _, _ = select.select([self.sock], [], [], tick)
            except (OSError, ValueError):
                self._mark_dead("socket closed")
                return
            if not ready:
                self._sweep(time.monotonic())
                continue
            try:
                frame_type, corr, payload = recv_frame(
                    self.sock, idle_timeout=None, frame_timeout=30.0
                )
            except FrameCorruptError as exc:
                self._corrupt_counter.inc()
                self._finish(
                    exc.corr,
                    error=WorkerRequestError(
                        f"worker {self.index} answered corr {exc.corr} with a "
                        f"corrupt frame; retry shortly"
                    ),
                )
                continue
            except (EOFError, OSError, FrameError) as exc:
                self._mark_dead(self.exit_description() or f"{type(exc).__name__}: {exc}")
                return
            self.last_frame = time.monotonic()
            self._hb_missing = False
            self._bytes_in.inc(len(payload) + 17)  # header is 17 bytes
            if frame_type == FT_HEARTBEAT:
                body = decode_json_payload(payload)
                if body.get("stats") is not None:
                    self.last_stats = body["stats"]
                if body.get("health") is not None:
                    self.last_health = body["health"]
                continue
            if frame_type in (FT_RESPONSE, FT_ADOPT_OK):
                self._finish(corr, result=decode_json_payload(payload))
            elif frame_type == FT_ERROR:
                body = decode_json_payload(payload)
                if body.get("retryable", True):
                    error: Exception = WorkerRequestError(
                        f"worker {self.index}: {body.get('error')}"
                    )
                else:
                    error = RuntimeError(
                        f"worker {self.index}: {body.get('error')}"
                    )
                self._finish(corr, error=error)
            # unknown frame types are ignored (forward compatibility)

    def _sweep(self, now: float) -> None:
        """Idle tick: expire deadlines, account heartbeat misses, reap."""
        expired: List[Tuple[int, _Pending]] = []
        with self._plock:
            for corr, pending in list(self._pending.items()):
                if now >= pending.deadline_at:
                    expired.append((corr, self._pending.pop(corr)))
        for corr, pending in expired:
            self._release(pending)
            if not pending.future.done():
                pending.future.set_exception(
                    WorkerRequestError(
                        f"worker {self.index} deadline exceeded on corr {corr}; "
                        "retry shortly"
                    )
                )
        if self.proc.poll() is not None:
            self._mark_dead(self.exit_description())
            return
        if (
            now - self.last_frame > self.heartbeat_timeout_seconds
            and not self._hb_missing
        ):
            self._hb_missing = True
            self._hb_miss_counter.inc()

    def _mark_dead(self, reason: Optional[str]) -> None:
        if self._dead:
            return
        self._dead = True
        self.death_reason = reason or "worker connection lost"
        with self._plock:
            pending = dict(self._pending)
            self._pending.clear()
        for corr, item in pending.items():
            self._release(item)
            if not item.future.done():
                item.future.set_exception(
                    WorkerRequestError(
                        f"worker {self.index} died ({self.death_reason}); "
                        "retry shortly"
                    )
                )
        try:
            self.sock.close()
        except Exception:
            pass

    def _release(self, pending: _Pending) -> None:
        if pending.windowed:
            pending.windowed = False
            try:
                self._window_slots.release()
            except ValueError:
                pass

    def _finish(self, corr: int, *, result=None, error=None) -> None:
        with self._plock:
            pending = self._pending.pop(corr, None)
        if pending is None:
            return  # already deadline-expired or failed on death
        self._release(pending)
        if pending.future.done():
            return
        if error is not None:
            pending.future.set_exception(error)
        else:
            pending.future.set_result(result)

    # -- sends ---------------------------------------------------------
    def _next_corr(self) -> int:
        with self._wlock:
            self._corr += 1
            return self._corr

    def _send_raw(self, data: bytes) -> None:
        with self._wlock:
            self.sock.sendall(data)
        self._bytes_out.inc(len(data))

    # -- public surface ------------------------------------------------
    @property
    def alive(self) -> bool:
        return not self._dead and self.proc.poll() is None

    def beat_age(self, now: Optional[float] = None) -> float:
        now = time.monotonic() if now is None else now
        return max(0.0, now - self.last_frame)

    def heartbeat_expired(self, now: Optional[float] = None) -> bool:
        """No frame (not even a heartbeat) for the timeout window."""
        return self.beat_age(now) > self.heartbeat_timeout_seconds

    def exit_description(self) -> Optional[str]:
        """How the process ended, per ``waitpid`` (None while running)."""
        code = self.proc.poll()
        if code is None:
            return None
        if code < 0:
            try:
                name = signal.Signals(-code).name
            except ValueError:
                name = f"signal {-code}"
            return f"worker pid {self.pid} killed by {name}"
        return f"worker pid {self.pid} exited with code {code}"

    def request(
        self,
        wire_queries: List[dict],
        *,
        deadline_seconds: float = DEFAULT_REQUEST_DEADLINE,
    ) -> "Future[dict]":
        """Send one REQUEST frame; the future resolves to its payload.

        Fails fast (retryably) when the worker is dead or the
        outstanding-frame window is full.
        """
        future: Future = Future()
        if not self.alive:
            future.set_exception(
                WorkerRequestError(
                    f"worker {self.index} is dead "
                    f"({self.death_reason or self.exit_description()}); retry shortly"
                )
            )
            return future
        if not self._window_slots.acquire(timeout=deadline_seconds / 4.0):
            future.set_exception(
                WorkerRequestError(
                    f"worker {self.index} window full "
                    f"({self.window} frames outstanding); retry shortly"
                )
            )
            return future
        corr = self._next_corr()
        pending = _Pending(future, time.monotonic() + deadline_seconds, True)
        with self._plock:
            self._pending[corr] = pending
        try:
            self._send_raw(
                encode_json_frame(FT_REQUEST, corr, {"queries": wire_queries})
            )
        except Exception as exc:
            self._mark_dead(f"send failed: {type(exc).__name__}: {exc}")
        # a death racing the send is covered: _mark_dead fails every
        # registered pending, and we registered before sending
        if self._dead:
            self._finish(
                corr,
                error=WorkerRequestError(
                    f"worker {self.index} died during submit; retry shortly"
                ),
            )
        return future

    def adopt_graph(self, graph_id: str, graph, *, timeout: float = 30.0) -> None:
        """Synchronously ship one graph (failover adoption path)."""
        if not self.alive:
            raise WorkerRequestError(
                f"worker {self.index} is dead; cannot adopt {graph_id!r}"
            )
        future: Future = Future()
        corr = self._next_corr()
        with self._plock:
            self._pending[corr] = _Pending(future, time.monotonic() + timeout, False)
        try:
            self._send_raw(encode_frame(FT_ADOPT, corr, pack_graph(graph_id, graph)))
        except Exception as exc:
            self._mark_dead(f"send failed: {type(exc).__name__}: {exc}")
        body = future.result(timeout=timeout)
        expected = graph.fingerprint()
        if body.get("graph") != graph_id or body.get("fingerprint") != expected:
            raise HandshakeError(
                f"worker {self.index} mis-adopted {graph_id!r}: {body}"
            )
        self.graph_fingerprints[graph_id] = expected

    def _terminate_process(self, *, graceful: bool) -> None:
        proc = getattr(self, "proc", None)
        if proc is None:
            return
        if proc.poll() is None:
            if graceful:
                try:
                    self._send_raw(encode_json_frame(FT_SHUTDOWN, 0, {}))
                    proc.wait(timeout=2.0)
                except Exception:
                    pass
            if proc.poll() is None:
                try:
                    proc.terminate()
                    proc.wait(timeout=2.0)
                except Exception:
                    pass
            if proc.poll() is None:
                try:
                    proc.kill()
                    proc.wait(timeout=2.0)
                except Exception:
                    pass

    def close(self, *, graceful: bool = True) -> None:
        self._terminate_process(graceful=graceful and not self._dead)
        self._mark_dead("closed")
        reader = getattr(self, "_reader", None)
        if reader is not None and reader is not threading.current_thread():
            reader.join(timeout=2.0)

    def snapshot(self) -> dict:
        """JSON-ready worker facts for health rows and ``repro top``."""
        return {
            "pid": getattr(self, "pid", None),
            "alive": self.alive,
            "heartbeat_age_ms": round(self.beat_age() * 1000.0, 3),
            "heartbeat_timeout_ms": round(self.heartbeat_timeout_seconds * 1000.0, 3),
            "outstanding": len(self._pending),
            "window": self.window,
            "exit": self.exit_description(),
        }


class _WorkerPoolView:
    """The ``engine.pool`` duck-type the manager's stats path reads."""

    def __init__(self, graph_ids: List[str]):
        self.graph_ids = sorted(graph_ids)


class _WorkerEngineProxy:
    """Looks like a QueryEngine; forwards the few calls that matter.

    The real engine lives in the worker process.  ``telemetry`` is
    always False on this side — worker metrics are process-local (we
    export ``net.worker.*`` transport counters instead), which also
    keeps process-mode responses byte-identical to thread mode's.
    ``stats()`` and ``health()`` serve the last payload the worker
    shipped (READY, then every heartbeat), never blocking the caller
    on a round trip.
    """

    telemetry = False

    def __init__(self, client: WorkerClient, catalog: GraphCatalog):
        self._client = client
        self.catalog = catalog
        self.pool = _WorkerPoolView(catalog.names())

    def stats(self) -> dict:
        stats = dict(self._client.last_stats or _EMPTY_STATS)
        stats["worker"] = self._client.snapshot()
        return stats

    def health(self) -> dict:
        health = dict(self._client.last_health or _EMPTY_HEALTH)
        pool = dict(health.get("pool") or _EMPTY_HEALTH["pool"])
        pool["alive"] = bool(pool.get("alive", True)) and self._client.alive
        health["pool"] = pool
        health["worker"] = self._client.snapshot()
        return health

    def adopt_graph(self, graph_id: str, graph) -> None:
        self._client.adopt_graph(graph_id, graph)
        self.catalog.register(graph_id, graph)
        self.pool = _WorkerPoolView(self.catalog.names())

    def close(self, *, cancel_pending: bool = False) -> None:
        self._client.close(graceful=not cancel_pending)


# What the proxy serves before the worker's first stats/health payload
# lands (shapes match QueryEngine.stats()/health() aggregation keys).
_EMPTY_STATS = {
    "queries": 0,
    "max_batch": 1,
    "cache": {"hits": 0, "misses": 0, "evictions": 0, "size": 0, "capacity": 0},
    "pool": {"mode": "thread", "max_workers": 0, "pending": 0},
    "retries": {"attempts": 0, "exhausted": 0},
}
_EMPTY_HEALTH = {
    "pool": {
        "mode": "thread",
        "max_workers": 0,
        "pending": 0,
        "alive": True,
        "lost_workers": 0,
        "rebuilds": 0,
    },
    "breakers": [],
    "breakers_open": 0,
    "retries": {"attempts": 0, "exhausted": 0, "max_attempts": 0},
}


class ProcessShard(Shard):
    """A Shard whose engine lives in a separate worker process.

    The parent keeps the dispatcher thread (queueing, merge-draining,
    dispatcher-tier fault injection and the submit/death race handling
    are inherited unchanged) but ``_run_items`` forwards the merged
    group to the worker over the frame protocol *without blocking*:
    responses resolve via the client's reader thread, so the
    dispatcher keeps beating and draining while requests are in
    flight (pipelined up to the client's window).
    """

    def __init__(
        self,
        index: int,
        catalog: GraphCatalog,
        *,
        drain_limit: int = 64,
        fault_plan=None,
        tick_seconds: float = 0.25,
        heartbeat_ms: float = 1000.0,
        request_deadline_seconds: float = DEFAULT_REQUEST_DEADLINE,
        engine_kwargs: Optional[Mapping] = None,
        window: int = DEFAULT_WINDOW,
        spawn_timeout: float = DEFAULT_SPAWN_TIMEOUT,
    ):
        graphs = catalog.load_all()
        self._client = WorkerClient(
            index,
            graphs,
            engine_kwargs=engine_kwargs,
            fault_plan=fault_plan,
            heartbeat_ms=heartbeat_ms,
            window=window,
            spawn_timeout=spawn_timeout,
        )
        self._request_deadline = float(request_deadline_seconds)
        proxy = _WorkerEngineProxy(self._client, catalog)
        super().__init__(
            index,
            proxy,  # type: ignore[arg-type] — duck-typed engine facade
            drain_limit=drain_limit,
            fault_plan=fault_plan,
            tick_seconds=tick_seconds,
        )

    @property
    def client(self) -> WorkerClient:
        return self._client

    # -- dispatch forwards to the worker, pipelined --------------------
    def _run_items(self, items) -> None:
        self.cycles += 1
        queries = [q for it in items for q in it.queries]
        self.dispatched += len(queries)
        try:
            future = self._client.request(
                [query_to_wire(q) for q in queries],
                deadline_seconds=self._request_deadline,
            )
        except Exception as exc:
            for it in items:
                self._resolve(it, error=exc)
            return

        def _settle(done_future) -> None:
            try:
                body = done_future.result()
                rows = body["responses"]
                if len(rows) != len(queries):
                    raise WorkerRequestError(
                        f"worker {self.index} answered {len(rows)} rows "
                        f"for {len(queries)} queries; retry shortly"
                    )
                responses = [
                    QueryResponse.from_wire(q, row)
                    for q, row in zip(queries, rows)
                ]
            except BaseException as exc:  # noqa: BLE001 — waiters, not us
                for it in items:
                    self._resolve(it, error=exc)
                return
            offset = 0
            for it in items:
                chunk = responses[offset : offset + len(it.queries)]
                offset += len(it.queries)
                self._resolve(it, result=chunk)

        future.add_done_callback(_settle)

    # -- liveness folds in the worker process --------------------------
    @property
    def alive(self) -> bool:
        if not (self._thread.is_alive() and self.exit_reason is None):
            return False
        if not self._client.alive:
            if self.exit_reason is None:
                self.exit_reason = (
                    self._client.death_reason
                    or self._client.exit_description()
                    or "worker process died"
                )
            return False
        return True

    def beat_age(self, now: Optional[float] = None) -> float:
        """Age of the *worker's* last frame (heartbeats count).

        The parent dispatcher never blocks long in process mode, so
        its own beat is not the honest liveness signal — the worker's
        frame stream is.
        """
        return self._client.beat_age(now)

    def heartbeat_expired(self, now: Optional[float] = None) -> bool:
        """Idle-silent worker: no frames and nothing in flight.

        A busy worker that stops answering is covered by
        :meth:`stalled`; this catches the idle one that stopped
        heartbeating (wedged or unreachable) with nothing queued.
        """
        return (
            self._client.alive
            and self.pending_count() == 0
            and self._client.heartbeat_expired(now)
        )

    def dispatcher_snapshot(self) -> dict:
        snap = super().dispatcher_snapshot()
        snap["mode"] = "process"
        snap["worker"] = self._client.snapshot()
        return snap
