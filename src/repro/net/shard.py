"""Catalog sharding: partition graphs across independent engines.

Ghaffari & Trygub's low-energy distributed SSSP (PAPERS.md) splits the
work of one traversal across machines; serving a *catalog* admits a
much simpler partition with the same flavour: each graph lives on
exactly one **shard**, and a shard owns a full, independent serving
stack — its own :class:`~repro.service.engine.QueryEngine`,
:class:`~repro.service.pool.ExecutorPool` (thread or process workers),
result cache and breaker board.  Queries route by graph name; a
batched ``sources`` array fans to the shard that owns its graph as one
group, so it still coalesces into batched kernel dispatches there.

Each :class:`Shard` runs one dispatcher thread draining a submission
queue.  The dispatcher merges whatever is waiting (up to
``drain_limit`` queries) into a single
:meth:`~repro.service.engine.QueryEngine.run_many` call — cross-
connection coalescing for free, on top of the engine's own
same-corridor batching — and a shard's engine is only ever touched by
its own dispatcher, so the engines need no cross-request locking.

A dispatcher is also a single point of failure for its shard, so the
loop is survivable by construction: every queued group is tracked in a
pending set, and however the loop exits — a clean ``_STOP``, an
``Exception``, or a ``BaseException`` such as an injected
:class:`~repro.resilience.faults.InjectedShardCrash` — a ``finally``
fails every unresolved future with a retryable :class:`ShardDiedError`
and (on abnormal exit) emits a ``shard_died`` event.  Nothing queued
on a shard can hang forever.  The heartbeat (``last_beat``), pending
queue age and ``alive`` flag feed the
:class:`~repro.net.supervisor.ShardSupervisor`, which restarts dead
shards via :meth:`ShardManager.rebuild_shard` and routes their graphs
through degraded mode (failover adoption onto survivors, or fast-fail
``unavailable:`` responses) while they are down.

:class:`ShardManager` is the front-end's view: it exposes the same
duck-typed surface as a single ``QueryEngine`` (``run`` / ``run_many``
/ ``stats`` / ``health`` / ``metrics_snapshot`` / ``catalog`` /
``telemetry`` / ``events``) plus the asynchronous ``submit_many`` the
:class:`~repro.service.protocol.ProtocolSession` prefers, so the
protocol layer cannot tell a sharded deployment from a single engine —
responses are identical either way.  When an
:class:`~repro.net.admission.AdmissionController` is attached, every
submission passes through it first and sheds come back as in-band
``overloaded`` error responses without touching a dispatcher.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Mapping, Optional, Tuple

from repro import obs
from repro.net.admission import UNAVAILABLE_PREFIX, AdmissionController
from repro.resilience.faults import InjectedShardCrash
from repro.service.catalog import GraphCatalog
from repro.service.engine import QueryEngine, QueryResponse, SSSPQuery

__all__ = ["Shard", "ShardDiedError", "ShardManager"]

_STOP = object()


class ShardDiedError(RuntimeError):
    """A shard's dispatcher is gone; the work was never attempted.

    Classified transient: the supervisor restarts shards, so the same
    request resubmitted shortly is expected to succeed.  The manager
    answers these in-band with ``unavailable:`` errors.
    """

    transient = True


class _WorkItem:
    """One submit_many group bound for a single shard."""

    __slots__ = ("queries", "future", "enqueued_at")

    def __init__(self, queries: List[SSSPQuery], future: Future):
        self.queries = queries
        self.future = future
        self.enqueued_at = time.monotonic()


class Shard:
    """One catalog partition: an engine, a queue, a dispatcher thread.

    ``drain_limit`` caps how many queries one dispatcher cycle merges
    into a single ``run_many`` call; larger drains amortise better
    under load, smaller drains bound how long a fast query can be
    held behind a merged batch.

    ``fault_plan`` (a :class:`~repro.resilience.faults.FaultPlan` or
    :class:`~repro.resilience.faults.ScheduledFaultPlan`) sabotages
    dispatch cycles for chaos drills: ``shard_crash`` kills the
    dispatcher thread, ``dispatcher_hang`` stalls it for
    ``hang_seconds``, ``slow_shard`` adds ``slow_seconds`` of latency
    per cycle.  Other kinds are ignored here (``conn_drop`` belongs to
    the server).  ``tick_seconds`` bounds how stale the idle heartbeat
    may go — the dispatcher wakes at least this often to beat.
    """

    def __init__(
        self,
        index: int,
        engine: QueryEngine,
        *,
        drain_limit: int = 64,
        fault_plan=None,
        tick_seconds: float = 0.25,
    ):
        if drain_limit < 1:
            raise ValueError("drain_limit must be >= 1")
        if tick_seconds <= 0:
            raise ValueError("tick_seconds must be positive")
        self.index = index
        self.engine = engine
        self.drain_limit = int(drain_limit)
        self.fault_plan = fault_plan
        self.dispatched = 0
        self.cycles = 0
        self.faults_injected = 0
        self.exit_reason: Optional[str] = None
        self.last_beat = time.monotonic()
        self._tick = float(tick_seconds)
        self._fault_cycle = 0
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._pending: Dict[_WorkItem, None] = {}
        self._plock = threading.Lock()
        self._closed = False
        self._retired = False
        self._events = obs.get_events()
        self._thread = threading.Thread(
            target=self._dispatch_loop,
            name=f"repro-shard-{index}",
            daemon=True,
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, queries: List[SSSPQuery]) -> "Future[List[QueryResponse]]":
        """Queue one group; the future resolves to its responses in order.

        Raises :class:`ShardDiedError` when the dispatcher is closed or
        dead.  A submit that *races* the dispatcher's death cannot
        strand its future either: the item registers in the pending set
        before it is queued, so it is covered by the death cleanup — and
        the post-enqueue liveness re-check below resolves the one
        ordering where the cleanup's snapshot ran before registration
        (in that ordering the death is already visible here).
        """
        if self._closed or not self.alive:
            raise ShardDiedError(
                f"shard {self.index} is "
                + ("closed" if self._closed else "dead")
            )
        item = _WorkItem(list(queries), Future())
        with self._plock:
            self._pending[item] = None
        self._queue.put(item)
        if self._closed or not self.alive:
            self._resolve(
                item,
                error=ShardDiedError(
                    f"shard {self.index} dispatcher died during submit"
                ),
            )
        return item.future

    # ------------------------------------------------------------------
    # the dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        clean = False
        try:
            while True:
                self.last_beat = time.monotonic()
                try:
                    item = self._queue.get(timeout=self._tick)
                except queue.Empty:
                    continue
                if item is _STOP:
                    clean = True
                    return
                items = [item]
                total = len(item.queries)
                while total < self.drain_limit:
                    try:
                        nxt = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if nxt is _STOP:
                        self._queue.put(_STOP)  # leave the sentinel for later
                        break
                    items.append(nxt)
                    total += len(nxt.queries)
                fault = self._next_fault()
                if fault is not None:
                    self.faults_injected += 1
                    if fault.kind == "shard_crash":
                        raise InjectedShardCrash(
                            f"injected shard crash (cycle {self.cycles})"
                        )
                    if fault.kind == "dispatcher_hang":
                        time.sleep(fault.hang_seconds)
                    elif fault.kind == "slow_shard":
                        time.sleep(fault.slow_seconds)
                if self._retired:
                    return  # replaced while stalled; waiters already failed
                self._run_items(items)
        except BaseException as exc:  # noqa: BLE001 — must survive *any* death
            self.exit_reason = f"{type(exc).__name__}: {exc}"
        finally:
            self._on_loop_exit(clean)

    def _next_fault(self):
        if self.fault_plan is None:
            return None
        fault = self.fault_plan.decide(self._fault_cycle)
        self._fault_cycle += 1
        if fault is not None and fault.kind not in (
            "shard_crash", "dispatcher_hang", "slow_shard"
        ):
            return None  # not a dispatcher-tier kind; someone else's fault
        return fault

    def _on_loop_exit(self, clean: bool) -> None:
        """However the loop ended, nothing pending may hang (satellite fix).

        A clean ``_STOP`` normally leaves nothing behind, but a submit
        racing ``close()`` can still strand an item after the sentinel;
        an abnormal exit (any ``BaseException``) strands everything.
        Both get their futures failed with a retryable error, and an
        abnormal, non-retired exit surfaces a ``shard_died`` event.
        """
        died = not clean and not self._retired
        if died and self.exit_reason is None:
            self.exit_reason = "dispatcher loop exited unexpectedly"
        reason = (
            f"shard {self.index} dispatcher died"
            + (f" ({self.exit_reason})" if self.exit_reason else "")
            if not clean
            else f"shard {self.index} is closed"
        )
        failed = self._fail_pending(ShardDiedError(reason))
        if died and self._events.enabled:
            self._events.emit(
                {
                    "type": "shard_died",
                    "shard": self.index,
                    "reason": self.exit_reason,
                    "pending_failed": failed,
                }
            )

    def _resolve(self, item: _WorkItem, *, result=None, error=None) -> None:
        with self._plock:
            self._pending.pop(item, None)
        future = item.future
        if future.cancelled() or future.done():
            return
        try:
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(result)
        except Exception:  # lost a set-race with retire(); already answered
            pass

    def _fail_pending(self, error: BaseException) -> int:
        """Fail every unresolved future; return how many were failed."""
        with self._plock:
            items = list(self._pending)
            self._pending.clear()
        failed = 0
        for item in items:
            future = item.future
            if future.cancelled() or future.done():
                continue
            try:
                future.set_exception(error)
                failed += 1
            except Exception:
                pass
        return failed

    def _run_items(self, items: List[_WorkItem]) -> None:
        self.cycles += 1
        queries = [q for it in items for q in it.queries]
        self.dispatched += len(queries)
        try:
            responses = self.engine.run_many(queries)
        except Exception as exc:  # engine bugs fail the waiters, not us
            for it in items:
                self._resolve(it, error=exc)
            return
        offset = 0
        for it in items:
            chunk = responses[offset : offset + len(it.queries)]
            offset += len(it.queries)
            self._resolve(it, result=chunk)

    # ------------------------------------------------------------------
    # liveness introspection (what the supervisor health-checks)
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Dispatcher thread running and never abnormally exited."""
        return self._thread.is_alive() and self.exit_reason is None

    def beat_age(self, now: Optional[float] = None) -> float:
        """Seconds since the dispatcher last proved it was making progress."""
        now = time.monotonic() if now is None else now
        return max(0.0, now - self.last_beat)

    def pending_count(self) -> int:
        with self._plock:
            return len(self._pending)

    def oldest_pending_age(self, now: Optional[float] = None) -> float:
        """Age of the oldest unresolved group (0 when nothing pending)."""
        now = time.monotonic() if now is None else now
        with self._plock:
            if not self._pending:
                return 0.0
            oldest = min(item.enqueued_at for item in self._pending)
        return max(0.0, now - oldest)

    def stalled(self, stall_seconds: float, now: Optional[float] = None) -> bool:
        """Work is queued but the dispatcher has stopped beating.

        Both watchdog conditions must hold — a stale heartbeat *and* a
        group older than the stall budget — so a merely-idle shard is
        never flagged.  A long legitimate ``run_many`` also trips
        this; pick ``stall_seconds`` above the worst honest cycle.
        """
        now = time.monotonic() if now is None else now
        return (
            self.pending_count() > 0
            and self.beat_age(now) > stall_seconds
            and self.oldest_pending_age(now) > stall_seconds
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def retire(self, reason: str) -> None:
        """Take a dead or hung shard out of service (supervisor path).

        Fails every pending future with a retryable error, wakes a
        merely-stalled dispatcher so it exits on its own, and closes
        the engine.  Never joins the thread — a hung dispatcher would
        block the supervisor; the daemon thread exits when it wakes.
        """
        if self._retired:
            return
        self._retired = True
        self._closed = True
        if self.exit_reason is None:
            self.exit_reason = reason
        self._fail_pending(
            ShardDiedError(f"shard {self.index} retired: {reason}")
        )
        self._queue.put(_STOP)
        try:
            self.engine.close(cancel_pending=True)
        except Exception:
            pass  # a broken engine must not block the replacement

    def close(
        self, *, cancel_pending: bool = False, join_timeout: Optional[float] = 5.0
    ) -> None:
        """Drain the queue, stop the dispatcher, close the engine."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_STOP)
        self._thread.join(timeout=join_timeout)
        self.engine.close(cancel_pending=cancel_pending)

    def dispatcher_snapshot(self) -> dict:
        """JSON-ready liveness facts (the ``health`` op's per-shard row)."""
        return {
            "mode": "thread",
            "alive": self.alive,
            "beat_age_seconds": round(self.beat_age(), 3),
            "pending": self.pending_count(),
            "oldest_pending_seconds": round(self.oldest_pending_age(), 3),
            "exit_reason": self.exit_reason,
            "faults_injected": self.faults_injected,
        }

    def stats(self) -> dict:
        return {
            "index": self.index,
            "graphs": self.engine.pool.graph_ids,
            "dispatched": self.dispatched,
            "cycles": self.cycles,
            "dispatcher": self.dispatcher_snapshot(),
            **self.engine.stats(),
        }


class ShardManager:
    """Route queries across catalog shards; look like one engine.

    Parameters
    ----------
    catalog:
        The full catalog.  Graphs are assigned round-robin over the
        sorted names, so the partition is deterministic and every
        graph is loaded by exactly one shard.
    shards:
        Partition count (>= 1).  Each shard builds its own
        :class:`~repro.service.engine.QueryEngine` over its subset.
    admission:
        Optional :class:`~repro.net.admission.AdmissionController`;
        when present, every ``submit_many`` group passes admission
        before it can reach a dispatcher.
    drain_limit:
        Per-shard dispatcher merge bound (see :class:`Shard`).
    net_fault_plan:
        Optional dispatcher-tier fault plan (chaos drills).  Applied
        to the shard named by ``net_fault_shard`` (all shards when
        ``None``) — and only to original shard incarnations: a shard
        the supervisor rebuilds comes back fault-free, so an injected
        crash cannot become a crash loop.
    tick_seconds:
        Dispatcher heartbeat bound, forwarded to every shard.
    engine_kwargs:
        Forwarded to every shard engine (``mode``, ``max_workers``,
        ``cache_size``, ``max_batch``, retry/breaker/fault plans...).
        Each engine additionally gets ``labels={"shard": "<i>"}`` so
        the shared registry keeps per-shard latency series apart.

    Degraded mode: a shard whose state is not ``"up"`` (the supervisor
    marks ``down`` / ``restarting`` / ``failed``) answers its groups
    immediately with in-band ``unavailable: ...`` errors — unless its
    graphs were failed over onto survivors, in which case routing
    already points there and requests flow normally.
    """

    def __init__(
        self,
        catalog: GraphCatalog,
        *,
        shards: int = 1,
        admission: Optional[AdmissionController] = None,
        drain_limit: int = 64,
        net_fault_plan=None,
        net_fault_shard: Optional[int] = None,
        tick_seconds: float = 0.25,
        shard_mode: str = "thread",
        heartbeat_ms: float = 1000.0,
        **engine_kwargs,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if shard_mode not in ("thread", "process"):
            raise ValueError(
                f"shard_mode must be 'thread' or 'process', got {shard_mode!r}"
            )
        if heartbeat_ms <= 0:
            raise ValueError("heartbeat_ms must be positive")
        names = catalog.names()
        if not names:
            raise ValueError("catalog is empty; nothing to shard")
        shards = min(shards, len(names))  # an engine with no graphs is useless
        self.catalog = catalog
        self.admission = admission
        self.shard_mode = shard_mode
        self.heartbeat_ms = float(heartbeat_ms)
        self._engine_kwargs = dict(engine_kwargs)
        self._drain_limit = drain_limit
        self._tick_seconds = tick_seconds
        self._net_fault_plan = net_fault_plan
        self._net_fault_shard = net_fault_shard
        self._names = list(names)
        # _home is the immutable partition; _assignment is live routing
        # (failover temporarily points a down shard's graphs elsewhere)
        self._home: Dict[str, int] = {
            name: i % shards for i, name in enumerate(names)
        }
        self._assignment: Dict[str, int] = dict(self._home)
        self._state_lock = threading.Lock()
        self._states: Dict[int, str] = {i: "up" for i in range(shards)}
        self._failover_graphs: Dict[int, List[str]] = {}
        self._supervisor = None
        self.shards: List[Shard] = []
        for index in range(shards):
            self.shards.append(self._build_shard(index, with_faults=True))
            if admission is not None:
                admission.register_shard(index)
        self._events = obs.get_events()
        self._registry = obs.get_registry()
        self._closed = False

    def _build_shard(self, index: int, *, with_faults: bool) -> Shard:
        owned = [n for n in self._names if self._home[n] == index]
        plan = None
        if with_faults and self._net_fault_plan is not None:
            if self._net_fault_shard is None or self._net_fault_shard == index:
                plan = self._net_fault_plan
        if self.shard_mode == "process":
            from repro.net.worker import ProcessShard

            sub = self.catalog.subset(owned)
            shard = ProcessShard(
                index,
                sub,
                drain_limit=self._drain_limit,
                fault_plan=plan,
                tick_seconds=self._tick_seconds,
                heartbeat_ms=self.heartbeat_ms,
                engine_kwargs=self._engine_kwargs,
            )
            self.catalog.adopt(sub)  # reuse graphs the spawn materialised
            return shard
        engine = QueryEngine(
            self.catalog.subset(owned),
            labels={"shard": str(index)},
            **self._engine_kwargs,
        )
        self.catalog.adopt(engine.catalog)  # reuse shard-loaded graphs
        return Shard(
            index,
            engine,
            drain_limit=self._drain_limit,
            fault_plan=plan,
            tick_seconds=self._tick_seconds,
        )

    # ------------------------------------------------------------------
    # engine-facade surface (what ProtocolSession needs)
    # ------------------------------------------------------------------
    @property
    def telemetry(self) -> bool:
        return self.shards[0].engine.telemetry

    @property
    def events(self):
        return self._events

    @property
    def graph_ids(self) -> List[str]:
        return sorted(self._assignment)

    def shard_of(self, graph_id: str) -> Optional[int]:
        """The owning shard index, or None for an unknown graph."""
        return self._assignment.get(graph_id)

    # ------------------------------------------------------------------
    # supervision surface (ShardSupervisor calls these)
    # ------------------------------------------------------------------
    def attach_supervisor(self, supervisor) -> None:
        self._supervisor = supervisor

    @property
    def supervisor(self):
        return self._supervisor

    def shard_state(self, index: int) -> str:
        with self._state_lock:
            return self._states.get(index, "up")

    def set_shard_state(self, index: int, state: str) -> None:
        with self._state_lock:
            self._states[index] = state

    def rebuild_shard(self, index: int) -> Shard:
        """Replace a dead shard with a fresh engine + dispatcher.

        The old incarnation is retired (pending futures failed, engine
        closed); the replacement serves the same ``_home`` partition.
        The admission controller forgets the dead dispatcher's latency
        EWMA so the deadline gate does not shed against a ghost.
        """
        old = self.shards[index]
        old.retire("replaced by supervisor")
        shard = self._build_shard(index, with_faults=False)
        self.shards[index] = shard
        if self.shard_mode == "process":
            self._registry.counter(
                "net.worker.restarts", {"shard": str(index)}
            ).inc()
        if self.admission is not None:
            self.admission.reset_shard(index)
            self.admission.register_shard(index)
        return shard

    def adopt_shard_graphs(self, index: int) -> Dict[str, int]:
        """Failover: reroute a down shard's graphs onto survivors.

        Each orphaned graph is adopted (round-robin) by a surviving
        ``up`` shard's engine — the catalog already memoises the CSR
        arrays, so adoption shares them rather than reloading — and
        live routing is repointed.  Returns ``{graph: new_shard}``
        (empty when no survivor exists, in which case the manager
        falls back to fast-fail ``unavailable:`` responses).
        """
        survivors = [
            s.index
            for s in self.shards
            if s.index != index and s.alive and self.shard_state(s.index) == "up"
        ]
        if not survivors:
            return {}
        moved: Dict[str, int] = {}
        owned = sorted(n for n, home in self._home.items() if home == index)
        for k, name in enumerate(owned):
            target = survivors[k % len(survivors)]
            self.shards[target].engine.adopt_graph(name, self.catalog.get(name))
            with self._state_lock:
                self._assignment[name] = target
            moved[name] = target
        self._failover_graphs[index] = list(moved)
        return moved

    def restore_assignment(self, index: int) -> List[str]:
        """Point a recovered shard's graphs back home after failover."""
        restored = self._failover_graphs.pop(index, [])
        for name in restored:
            with self._state_lock:
                self._assignment[name] = index
        return restored

    def submit_many(
        self, queries: List[SSSPQuery]
    ) -> "Future[List[QueryResponse]]":
        """Route a batch; resolves to responses in request order.

        Unknown graphs, shed groups and groups for down shards answer
        immediately (the same error strings a single engine produces,
        plus ``overloaded`` sheds and ``unavailable`` fast-fails);
        everything else lands on its owning shard's queue.
        """
        out: Future = Future()
        results: List[Optional[QueryResponse]] = [None] * len(queries)
        groups: Dict[int, Tuple[List[int], List[SSSPQuery]]] = {}
        for i, query in enumerate(queries):
            shard_index = self._assignment.get(query.graph_id)
            if shard_index is None:
                # match QueryEngine._validate's message so sharded and
                # single-engine deployments answer identically
                results[i] = QueryResponse(
                    query=query,
                    ok=False,
                    error=(
                        f"unknown graph {query.graph_id!r} "
                        f"(have {self.graph_ids or 'none'})"
                    ),
                )
                continue
            indices, group = groups.setdefault(shard_index, ([], []))
            indices.append(i)
            group.append(query)

        pending: List[Tuple[int, List[int], Future, float]] = []
        for shard_index, (indices, group) in groups.items():
            state = self.shard_state(shard_index)
            if state != "up":
                reason = (
                    f"{UNAVAILABLE_PREFIX}: shard {shard_index} {state}; "
                    "retry shortly"
                )
                if self.admission is not None:
                    self.admission.record_unavailable(
                        shard_index, len(group), reason
                    )
                for i in indices:
                    results[i] = QueryResponse(
                        query=queries[i], ok=False, error=reason
                    )
                continue
            if self.admission is not None:
                shed_reason = self.admission.try_acquire(shard_index, len(group))
                if shed_reason is not None:
                    for i in indices:
                        results[i] = QueryResponse(
                            query=queries[i], ok=False, error=shed_reason
                        )
                    continue
            try:
                future = self.shards[shard_index].submit(group)
            except RuntimeError as exc:  # died between state check and submit
                reason = f"{UNAVAILABLE_PREFIX}: {exc}; retry shortly"
                if self.admission is not None:
                    self.admission.release(shard_index, len(group), 0.0)
                    self.admission.record_unavailable(
                        shard_index, len(group), reason
                    )
                for i in indices:
                    results[i] = QueryResponse(
                        query=queries[i], ok=False, error=reason
                    )
                continue
            pending.append((shard_index, indices, future, time.perf_counter()))

        if not pending:
            out.set_result(results)
            return out

        lock = threading.Lock()
        remaining = {"n": len(pending)}

        def _make_callback(shard_index: int, indices: List[int], t0: float):
            def _done(future: Future) -> None:
                if self.admission is not None:
                    self.admission.release(
                        shard_index, len(indices),
                        time.perf_counter() - t0,
                    )
                try:
                    responses = future.result()
                except ShardDiedError as exc:
                    # the dispatcher died under this group: retryable,
                    # in-band, and the supervisor is already restarting
                    responses = [
                        QueryResponse(
                            query=queries[i],
                            ok=False,
                            error=f"{UNAVAILABLE_PREFIX}: {exc}; retry shortly",
                        )
                        for i in indices
                    ]
                except Exception as exc:
                    responses = [
                        QueryResponse(
                            query=queries[i],
                            ok=False,
                            error=(
                                f"internal error: {type(exc).__name__}: {exc}"
                            ),
                        )
                        for i in indices
                    ]
                for i, response in zip(indices, responses):
                    results[i] = response
                with lock:
                    remaining["n"] -= 1
                    finished = remaining["n"] == 0
                if finished:
                    out.set_result(results)

            return _done

        for shard_index, indices, future, t0 in pending:
            future.add_done_callback(
                _make_callback(shard_index, indices, t0)
            )
        return out

    def run_many(self, queries: List[SSSPQuery]) -> List[QueryResponse]:
        """The blocking facade (stdin transports, tests)."""
        return self.submit_many(queries).result()

    def run(self, query: SSSPQuery) -> QueryResponse:
        return self.run_many([query])[0]

    # ------------------------------------------------------------------
    # introspection (the stats/health/metrics protocol ops)
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        shard_stats = [shard.stats() for shard in self.shards]
        return {
            "graphs": self.graph_ids,
            "shard_mode": self.shard_mode,
            "queries": sum(s["queries"] for s in shard_stats),
            "max_batch": shard_stats[0]["max_batch"],
            "telemetry": self.telemetry,
            "cache": {
                key: sum(s["cache"][key] for s in shard_stats)
                for key in ("hits", "misses", "evictions", "size", "capacity")
            },
            "pool": {
                "mode": shard_stats[0]["pool"]["mode"],
                "max_workers": sum(
                    s["pool"]["max_workers"] for s in shard_stats
                ),
                "pending": sum(s["pool"]["pending"] for s in shard_stats),
            },
            "retries": {
                key: sum(s["retries"][key] for s in shard_stats)
                for key in ("attempts", "exhausted")
            },
            "shards": shard_stats,
            "shard_states": {
                str(i): self.shard_state(i) for i in range(len(self.shards))
            },
            "assignment": dict(sorted(self._assignment.items())),
            "admission": (
                self.admission.snapshot()
                if self.admission is not None
                else None
            ),
        }

    def health(self) -> dict:
        """Aggregated health, per-shard liveness, supervisor state.

        ``serving`` is the front-end's 503 criterion: True while *any*
        shard is up and answering — one dead shard degrades service,
        it does not take the deployment off the balancer.
        """
        shard_health = [shard.engine.health() for shard in self.shards]
        breakers = [b for h in shard_health for b in h["breakers"]]
        shard_rows = []
        serving = 0
        for shard, h in zip(self.shards, shard_health):
            state = self.shard_state(shard.index)
            up = state == "up" and shard.alive and h["pool"]["alive"]
            serving += bool(up)
            shard_rows.append(
                {
                    "index": shard.index,
                    "state": state,
                    "serving": up,
                    "dispatcher": shard.dispatcher_snapshot(),
                    **h,
                }
            )
        return {
            "serving": serving > 0,
            "shards_up": serving,
            "shard_mode": self.shard_mode,
            "pool": {
                "mode": shard_health[0]["pool"]["mode"],
                "max_workers": sum(
                    h["pool"]["max_workers"] for h in shard_health
                ),
                "pending": sum(h["pool"]["pending"] for h in shard_health),
                "alive": all(h["pool"]["alive"] for h in shard_health),
                "lost_workers": sum(
                    h["pool"]["lost_workers"] for h in shard_health
                ),
                "rebuilds": sum(h["pool"]["rebuilds"] for h in shard_health),
            },
            "breakers": breakers,
            "breakers_open": sum(h["breakers_open"] for h in shard_health),
            "retries": {
                "attempts": sum(
                    h["retries"]["attempts"] for h in shard_health
                ),
                "exhausted": sum(
                    h["retries"]["exhausted"] for h in shard_health
                ),
                "max_attempts": shard_health[0]["retries"]["max_attempts"],
            },
            "shards": shard_rows,
            "supervisor": (
                self._supervisor.report() if self._supervisor is not None else None
            ),
            "admission": (
                self.admission.snapshot()
                if self.admission is not None
                else None
            ),
        }

    def metrics_snapshot(self) -> dict:
        return self._registry.snapshot()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, *, cancel_pending: bool = False) -> None:
        if self._closed:
            return
        self._closed = True
        if self._supervisor is not None:
            self._supervisor.stop()
        for shard in self.shards:
            shard.close(cancel_pending=cancel_pending)

    def __enter__(self) -> "ShardManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
