"""Catalog sharding: partition graphs across independent engines.

Ghaffari & Trygub's low-energy distributed SSSP (PAPERS.md) splits the
work of one traversal across machines; serving a *catalog* admits a
much simpler partition with the same flavour: each graph lives on
exactly one **shard**, and a shard owns a full, independent serving
stack — its own :class:`~repro.service.engine.QueryEngine`,
:class:`~repro.service.pool.ExecutorPool` (thread or process workers),
result cache and breaker board.  Queries route by graph name; a
batched ``sources`` array fans to the shard that owns its graph as one
group, so it still coalesces into batched kernel dispatches there.

Each :class:`Shard` runs one dispatcher thread draining a submission
queue.  The dispatcher merges whatever is waiting (up to
``drain_limit`` queries) into a single
:meth:`~repro.service.engine.QueryEngine.run_many` call — cross-
connection coalescing for free, on top of the engine's own
same-corridor batching — and a shard's engine is only ever touched by
its own dispatcher, so the engines need no cross-request locking.

:class:`ShardManager` is the front-end's view: it exposes the same
duck-typed surface as a single ``QueryEngine`` (``run`` / ``run_many``
/ ``stats`` / ``health`` / ``metrics_snapshot`` / ``catalog`` /
``telemetry`` / ``events``) plus the asynchronous ``submit_many`` the
:class:`~repro.service.protocol.ProtocolSession` prefers, so the
protocol layer cannot tell a sharded deployment from a single engine —
responses are identical either way.  When an
:class:`~repro.net.admission.AdmissionController` is attached, every
submission passes through it first and sheds come back as in-band
``overloaded`` error responses without touching a dispatcher.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Mapping, Optional, Tuple

from repro import obs
from repro.net.admission import AdmissionController
from repro.service.catalog import GraphCatalog
from repro.service.engine import QueryEngine, QueryResponse, SSSPQuery

__all__ = ["Shard", "ShardManager"]

_STOP = object()


class _WorkItem:
    """One submit_many group bound for a single shard."""

    __slots__ = ("queries", "future")

    def __init__(self, queries: List[SSSPQuery], future: Future):
        self.queries = queries
        self.future = future


class Shard:
    """One catalog partition: an engine, a queue, a dispatcher thread.

    ``drain_limit`` caps how many queries one dispatcher cycle merges
    into a single ``run_many`` call; larger drains amortise better
    under load, smaller drains bound how long a fast query can be
    held behind a merged batch.
    """

    def __init__(self, index: int, engine: QueryEngine, *, drain_limit: int = 64):
        if drain_limit < 1:
            raise ValueError("drain_limit must be >= 1")
        self.index = index
        self.engine = engine
        self.drain_limit = int(drain_limit)
        self.dispatched = 0
        self.cycles = 0
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._closed = False
        self._thread = threading.Thread(
            target=self._dispatch_loop,
            name=f"repro-shard-{index}",
            daemon=True,
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, queries: List[SSSPQuery]) -> "Future[List[QueryResponse]]":
        """Queue one group; the future resolves to its responses in order."""
        if self._closed:
            raise RuntimeError(f"shard {self.index} is closed")
        future: Future = Future()
        self._queue.put(_WorkItem(list(queries), future))
        return future

    # ------------------------------------------------------------------
    # the dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            items = [item]
            total = len(item.queries)
            while total < self.drain_limit:
                try:
                    nxt = self._queue.get_nowait()
                except queue.Empty:
                    break
                if nxt is _STOP:
                    self._queue.put(_STOP)  # leave the sentinel for later
                    break
                items.append(nxt)
                total += len(nxt.queries)
            self._run_items(items)

    def _run_items(self, items: List[_WorkItem]) -> None:
        self.cycles += 1
        queries = [q for it in items for q in it.queries]
        self.dispatched += len(queries)
        try:
            responses = self.engine.run_many(queries)
        except Exception as exc:  # engine bugs fail the waiters, not us
            for it in items:
                if not it.future.cancelled():
                    it.future.set_exception(exc)
            return
        offset = 0
        for it in items:
            chunk = responses[offset : offset + len(it.queries)]
            offset += len(it.queries)
            if not it.future.cancelled():
                it.future.set_result(chunk)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, *, cancel_pending: bool = False) -> None:
        """Drain the queue, stop the dispatcher, close the engine."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_STOP)
        self._thread.join()
        self.engine.close(cancel_pending=cancel_pending)

    def stats(self) -> dict:
        return {
            "index": self.index,
            "graphs": self.engine.pool.graph_ids,
            "dispatched": self.dispatched,
            "cycles": self.cycles,
            **self.engine.stats(),
        }


class ShardManager:
    """Route queries across catalog shards; look like one engine.

    Parameters
    ----------
    catalog:
        The full catalog.  Graphs are assigned round-robin over the
        sorted names, so the partition is deterministic and every
        graph is loaded by exactly one shard.
    shards:
        Partition count (>= 1).  Each shard builds its own
        :class:`~repro.service.engine.QueryEngine` over its subset.
    admission:
        Optional :class:`~repro.net.admission.AdmissionController`;
        when present, every ``submit_many`` group passes admission
        before it can reach a dispatcher.
    drain_limit:
        Per-shard dispatcher merge bound (see :class:`Shard`).
    engine_kwargs:
        Forwarded to every shard engine (``mode``, ``max_workers``,
        ``cache_size``, ``max_batch``, retry/breaker/fault plans...).
        Each engine additionally gets ``labels={"shard": "<i>"}`` so
        the shared registry keeps per-shard latency series apart.
    """

    def __init__(
        self,
        catalog: GraphCatalog,
        *,
        shards: int = 1,
        admission: Optional[AdmissionController] = None,
        drain_limit: int = 64,
        **engine_kwargs,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        names = catalog.names()
        if not names:
            raise ValueError("catalog is empty; nothing to shard")
        shards = min(shards, len(names))  # an engine with no graphs is useless
        self.catalog = catalog
        self.admission = admission
        self._assignment: Dict[str, int] = {
            name: i % shards for i, name in enumerate(names)
        }
        self.shards: List[Shard] = []
        for index in range(shards):
            owned = [n for n in names if self._assignment[n] == index]
            engine = QueryEngine(
                catalog.subset(owned),
                labels={"shard": str(index)},
                **engine_kwargs,
            )
            catalog.adopt(engine.catalog)  # reuse shard-loaded graphs
            self.shards.append(Shard(index, engine, drain_limit=drain_limit))
            if admission is not None:
                admission.register_shard(index)
        self._events = obs.get_events()
        self._registry = obs.get_registry()
        self._closed = False

    # ------------------------------------------------------------------
    # engine-facade surface (what ProtocolSession needs)
    # ------------------------------------------------------------------
    @property
    def telemetry(self) -> bool:
        return self.shards[0].engine.telemetry

    @property
    def events(self):
        return self._events

    @property
    def graph_ids(self) -> List[str]:
        return sorted(self._assignment)

    def shard_of(self, graph_id: str) -> Optional[int]:
        """The owning shard index, or None for an unknown graph."""
        return self._assignment.get(graph_id)

    def submit_many(
        self, queries: List[SSSPQuery]
    ) -> "Future[List[QueryResponse]]":
        """Route a batch; resolves to responses in request order.

        Unknown graphs and shed groups answer immediately (the same
        error strings a single engine produces, plus ``overloaded``
        sheds); everything else lands on its owning shard's queue.
        """
        out: Future = Future()
        results: List[Optional[QueryResponse]] = [None] * len(queries)
        groups: Dict[int, Tuple[List[int], List[SSSPQuery]]] = {}
        for i, query in enumerate(queries):
            shard_index = self._assignment.get(query.graph_id)
            if shard_index is None:
                # match QueryEngine._validate's message so sharded and
                # single-engine deployments answer identically
                results[i] = QueryResponse(
                    query=query,
                    ok=False,
                    error=(
                        f"unknown graph {query.graph_id!r} "
                        f"(have {self.graph_ids or 'none'})"
                    ),
                )
                continue
            indices, group = groups.setdefault(shard_index, ([], []))
            indices.append(i)
            group.append(query)

        pending: List[Tuple[int, List[int], Future, float]] = []
        for shard_index, (indices, group) in groups.items():
            if self.admission is not None:
                reason = self.admission.try_acquire(shard_index, len(group))
                if reason is not None:
                    for i in indices:
                        results[i] = QueryResponse(
                            query=queries[i], ok=False, error=reason
                        )
                    continue
            future = self.shards[shard_index].submit(group)
            pending.append((shard_index, indices, future, time.perf_counter()))

        if not pending:
            out.set_result(results)
            return out

        lock = threading.Lock()
        remaining = {"n": len(pending)}

        def _make_callback(shard_index: int, indices: List[int], t0: float):
            def _done(future: Future) -> None:
                if self.admission is not None:
                    self.admission.release(
                        shard_index, len(indices),
                        time.perf_counter() - t0,
                    )
                try:
                    responses = future.result()
                except Exception as exc:
                    responses = [
                        QueryResponse(
                            query=queries[i],
                            ok=False,
                            error=(
                                f"internal error: {type(exc).__name__}: {exc}"
                            ),
                        )
                        for i in indices
                    ]
                for i, response in zip(indices, responses):
                    results[i] = response
                with lock:
                    remaining["n"] -= 1
                    finished = remaining["n"] == 0
                if finished:
                    out.set_result(results)

            return _done

        for shard_index, indices, future, t0 in pending:
            future.add_done_callback(
                _make_callback(shard_index, indices, t0)
            )
        return out

    def run_many(self, queries: List[SSSPQuery]) -> List[QueryResponse]:
        """The blocking facade (stdin transports, tests)."""
        return self.submit_many(queries).result()

    def run(self, query: SSSPQuery) -> QueryResponse:
        return self.run_many([query])[0]

    # ------------------------------------------------------------------
    # introspection (the stats/health/metrics protocol ops)
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        shard_stats = [shard.stats() for shard in self.shards]
        return {
            "graphs": self.graph_ids,
            "queries": sum(s["queries"] for s in shard_stats),
            "max_batch": shard_stats[0]["max_batch"],
            "telemetry": self.telemetry,
            "cache": {
                key: sum(s["cache"][key] for s in shard_stats)
                for key in ("hits", "misses", "evictions", "size", "capacity")
            },
            "pool": {
                "mode": shard_stats[0]["pool"]["mode"],
                "max_workers": sum(
                    s["pool"]["max_workers"] for s in shard_stats
                ),
                "pending": sum(s["pool"]["pending"] for s in shard_stats),
            },
            "retries": {
                key: sum(s["retries"][key] for s in shard_stats)
                for key in ("attempts", "exhausted")
            },
            "shards": shard_stats,
            "assignment": dict(sorted(self._assignment.items())),
            "admission": (
                self.admission.snapshot()
                if self.admission is not None
                else None
            ),
        }

    def health(self) -> dict:
        shard_health = [shard.engine.health() for shard in self.shards]
        breakers = [b for h in shard_health for b in h["breakers"]]
        return {
            "pool": {
                "mode": shard_health[0]["pool"]["mode"],
                "max_workers": sum(
                    h["pool"]["max_workers"] for h in shard_health
                ),
                "pending": sum(h["pool"]["pending"] for h in shard_health),
                "alive": all(h["pool"]["alive"] for h in shard_health),
                "lost_workers": sum(
                    h["pool"]["lost_workers"] for h in shard_health
                ),
                "rebuilds": sum(h["pool"]["rebuilds"] for h in shard_health),
            },
            "breakers": breakers,
            "breakers_open": sum(h["breakers_open"] for h in shard_health),
            "retries": {
                "attempts": sum(
                    h["retries"]["attempts"] for h in shard_health
                ),
                "exhausted": sum(
                    h["retries"]["exhausted"] for h in shard_health
                ),
                "max_attempts": shard_health[0]["retries"]["max_attempts"],
            },
            "shards": [
                {"index": shard.index, **health}
                for shard, health in zip(self.shards, shard_health)
            ],
            "admission": (
                self.admission.snapshot()
                if self.admission is not None
                else None
            ),
        }

    def metrics_snapshot(self) -> dict:
        return self._registry.snapshot()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, *, cancel_pending: bool = False) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in self.shards:
            shard.close(cancel_pending=cancel_pending)

    def __enter__(self) -> "ShardManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
