"""Admission control: bound in-flight work, shed the excess early.

The energy framing of the source paper applies to serving too: a query
that will miss its deadline anyway is pure wasted compute, so the
cheapest place to handle overload is *before* the work enters a shard.
:class:`AdmissionController` enforces three gates per shard, in order:

1. **breaker** — sustained shedding trips a per-shard circuit breaker
   (the existing :class:`~repro.resilience.breaker.BreakerBoard` state
   machine, keyed ``(shard:<i>, admission)``), after which requests
   fail fast without touching the token state until a half-open probe
   gets admitted again.  Any successful admission closes the breaker,
   so it only stays open while the shard is genuinely saturated.
2. **tokens** — at most ``max_inflight`` queries may be inside a shard
   (queued or executing) at once.  Admission takes tokens up front;
   :meth:`release` returns them when the work settles.
3. **deadline** — with ``deadline_seconds`` set, a request whose
   *predicted* queue wait (current in-flight × the shard's EWMA
   per-query latency) already exceeds the budget is shed instead of
   queued: the controller never queues work past the deadline budget.

Every shed increments the ``net.shed`` counter (labelled per shard)
and answers in-band with an ``overloaded: ...`` protocol error — the
client sees *why* immediately rather than timing out.  ``net.inflight``
gauges (also per shard) expose the live occupancy.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro import obs
from repro.resilience.breaker import BreakerBoard, BreakerConfig

__all__ = ["AdmissionController", "OVERLOADED_PREFIX", "UNAVAILABLE_PREFIX"]

# every shed response's error string starts with this; clients and the
# load generator classify shed vs genuine failure by it
OVERLOADED_PREFIX = "overloaded"

# fast-fail responses for a shard that is down or restarting start with
# this; retryable by definition — the supervisor is already on it
UNAVAILABLE_PREFIX = "unavailable"

# EWMA weight for the per-query latency estimate the deadline gate
# uses; 0.2 reacts within ~5 batches without chasing single outliers
_EWMA_ALPHA = 0.2


class AdmissionController:
    """Token + deadline + breaker admission, per shard.

    Parameters
    ----------
    max_inflight:
        In-flight query bound per shard (queued + executing).  0 sheds
        everything — the drain/maintenance mode, also handy in tests.
    deadline_seconds:
        Optional latency budget: shed when predicted queue wait
        (in-flight × EWMA per-query seconds) exceeds it.  ``None``
        disables the gate.
    breaker:
        Config for the per-shard admission breaker.  The default opens
        after 64 consecutive sheds and half-opens after 0.5 s — long
        enough to matter only under sustained saturation, short enough
        to re-probe as soon as load relents.  ``failure_threshold=0``
        disables the breaker gate entirely.
    clock:
        Monotonic time source for the admission breaker.  Injectable so
        tests can drive breaker resets (and the EWMA deadline gate
        around them) with a fake clock instead of sleeping.
    """

    def __init__(
        self,
        max_inflight: int = 256,
        *,
        deadline_seconds: Optional[float] = None,
        breaker: Optional[BreakerConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_inflight < 0:
            raise ValueError("max_inflight must be >= 0")
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")
        self.max_inflight = int(max_inflight)
        self.deadline_seconds = deadline_seconds
        self.board = BreakerBoard(
            breaker
            if breaker is not None
            else BreakerConfig(failure_threshold=64, reset_seconds=0.5),
            clock=clock,
        )
        self._lock = threading.Lock()
        self._inflight: Dict[int, int] = {}
        self._ewma_seconds: Dict[int, float] = {}
        self.admitted = 0
        self.shed = 0
        self.unavailable = 0
        registry = obs.get_registry()
        self._registry = registry
        self._inflight_gauges: Dict[int, object] = {}
        self._shed_counters: Dict[int, object] = {}
        self._unavail_counters: Dict[int, object] = {}
        self._events = obs.get_events()

    # ------------------------------------------------------------------
    # per-shard metric handles (eager on first sight, so /metrics shows
    # a zero shed count rather than no series at all)
    # ------------------------------------------------------------------
    def register_shard(self, shard: int) -> None:
        """Pre-create the shard's gauges/counters (zero-valued)."""
        self._inflight_gauge(shard)
        self._shed_counter(shard)

    def _inflight_gauge(self, shard: int):
        gauge = self._inflight_gauges.get(shard)
        if gauge is None:
            gauge = self._registry.gauge(
                "net.inflight", labels={"shard": str(shard)}
            )
            self._inflight_gauges[shard] = gauge
        return gauge

    def _shed_counter(self, shard: int):
        counter = self._shed_counters.get(shard)
        if counter is None:
            counter = self._registry.counter(
                "net.shed", labels={"shard": str(shard)}
            )
            self._shed_counters[shard] = counter
        return counter

    def _unavail_counter(self, shard: int):
        counter = self._unavail_counters.get(shard)
        if counter is None:
            counter = self._registry.counter(
                "net.unavailable", labels={"shard": str(shard)}
            )
            self._unavail_counters[shard] = counter
        return counter

    # ------------------------------------------------------------------
    # the admission decision
    # ------------------------------------------------------------------
    def _breaker_key(self, shard: int) -> tuple:
        return (f"shard:{shard}", "admission")

    def try_acquire(self, shard: int, n: int = 1) -> Optional[str]:
        """Admit ``n`` queries into ``shard``, or explain the shed.

        Returns ``None`` on admission (tokens taken — pair with
        :meth:`release`) or the ``overloaded: ...`` error string when
        the request must be shed.
        """
        graph_key, alg_key = self._breaker_key(shard)
        if not self.board.allow(graph_key, alg_key):
            return self._shed_response(
                shard, n,
                f"{OVERLOADED_PREFIX}: shard {shard} admission breaker open "
                "(sustained shedding; retry shortly)",
                record_breaker=False,
            )
        with self._lock:
            inflight = self._inflight.get(shard, 0)
            if inflight + n > self.max_inflight:
                reason = (
                    f"{OVERLOADED_PREFIX}: shard {shard} at "
                    f"{inflight}/{self.max_inflight} in-flight"
                )
                admitted = False
            elif (
                self.deadline_seconds is not None
                and inflight * self._ewma_seconds.get(shard, 0.0)
                > self.deadline_seconds
            ):
                predicted = inflight * self._ewma_seconds[shard]
                reason = (
                    f"{OVERLOADED_PREFIX}: shard {shard} predicted wait "
                    f"{predicted:.3f}s exceeds the {self.deadline_seconds}s "
                    "deadline budget"
                )
                admitted = False
            else:
                self._inflight[shard] = inflight + n
                self.admitted += n
                admitted = True
        if admitted:
            self._inflight_gauge(shard).set(inflight + n)
            # an admission is the breaker's "success": it closes after
            # sheds stop, and a half-open probe that lands here heals it
            self.board.record_success(graph_key, alg_key)
            return None
        return self._shed_response(shard, n, reason)

    def _shed_response(
        self, shard: int, n: int, reason: str, *, record_breaker: bool = True
    ) -> str:
        with self._lock:
            self.shed += n
        self._shed_counter(shard).inc(n)
        if record_breaker:
            graph_key, alg_key = self._breaker_key(shard)
            self.board.record_failure(graph_key, alg_key)
        if self._events.enabled:
            self._events.emit(
                {"type": "query_shed", "shard": shard, "count": n,
                 "reason": reason}
            )
        return reason

    def record_unavailable(self, shard: int, n: int, reason: str) -> None:
        """Account a fast-failed group for a down/restarting shard.

        Unavailability is the supervisor's problem, not saturation: it
        counts separately from sheds and never feeds the admission
        breaker (opening it would keep rejecting traffic *after* the
        shard recovers).
        """
        with self._lock:
            self.unavailable += n
        self._unavail_counter(shard).inc(n)
        if self._events.enabled:
            self._events.emit(
                {"type": "query_unavailable", "shard": shard, "count": n,
                 "reason": reason}
            )

    def reset_shard(self, shard: int) -> None:
        """Forget a shard's latency estimate (a restarted shard is new).

        The EWMA learned against the dead dispatcher would keep the
        deadline gate shedding long after a healthy replacement comes
        up; a restart starts the estimate over.
        """
        with self._lock:
            self._ewma_seconds.pop(shard, None)

    def release(self, shard: int, n: int, elapsed_seconds: float) -> None:
        """Return ``n`` tokens; fold the observed latency into the EWMA."""
        with self._lock:
            inflight = max(0, self._inflight.get(shard, 0) - n)
            self._inflight[shard] = inflight
            if n > 0 and elapsed_seconds >= 0:
                per_query = elapsed_seconds / n
                prev = self._ewma_seconds.get(shard)
                self._ewma_seconds[shard] = (
                    per_query
                    if prev is None
                    else (1 - _EWMA_ALPHA) * prev + _EWMA_ALPHA * per_query
                )
        self._inflight_gauge(shard).set(inflight)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def inflight(self, shard: int) -> int:
        with self._lock:
            return self._inflight.get(shard, 0)

    def snapshot(self) -> dict:
        """Occupancy, totals and breaker states, JSON-ready."""
        with self._lock:
            inflight = dict(self._inflight)
            ewma = {
                shard: round(value, 6)
                for shard, value in self._ewma_seconds.items()
            }
        return {
            "max_inflight": self.max_inflight,
            "deadline_seconds": self.deadline_seconds,
            "admitted": self.admitted,
            "shed": self.shed,
            "unavailable": self.unavailable,
            "inflight": {str(k): v for k, v in sorted(inflight.items())},
            "ewma_query_seconds": {
                str(k): v for k, v in sorted(ewma.items())
            },
            "breakers": self.board.snapshot(),
        }
