"""Graph catalog: named graphs the query service can answer against.

A catalog maps stable ids to graphs from three kinds of source:

* an already-built :class:`~repro.graph.csr.CSRGraph`,
* a file path loaded through :func:`repro.graph.io.load_graph`
  (DIMACS ``.gr``, MatrixMarket ``.mtx``, TSV — optionally gzipped),
* a zero-argument factory (generators; loaded lazily and memoised).

Each loaded graph gets a content fingerprint
(:meth:`~repro.graph.csr.CSRGraph.fingerprint`) which the result cache
keys on, so re-registering an id with different data invalidates old
cache entries *by construction* rather than by bookkeeping.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Union

from repro.graph.csr import CSRGraph

__all__ = ["GraphCatalog", "default_catalog"]

GraphSource = Union[CSRGraph, str, Path, Callable[[], CSRGraph]]


class GraphCatalog:
    """Named, lazily-loaded graphs with stable content fingerprints."""

    def __init__(self):
        self._sources: Dict[str, GraphSource] = {}
        self._loaded: Dict[str, CSRGraph] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, graph_id: str, source: GraphSource) -> None:
        """Register ``graph_id``; a graph, a file path or a factory.

        Re-registering an id replaces it (and drops the memoised
        graph, so the next load picks up the new content).
        """
        if not graph_id:
            raise ValueError("graph_id must be non-empty")
        self._sources[graph_id] = source
        self._loaded.pop(graph_id, None)

    def register_file(self, graph_id: str, path: str | Path) -> None:
        p = Path(path)
        if not p.exists():
            raise FileNotFoundError(f"graph file not found: {p}")
        self.register(graph_id, p)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(self._sources)

    def __contains__(self, graph_id: str) -> bool:
        return graph_id in self._sources

    def __len__(self) -> int:
        return len(self._sources)

    def get(self, graph_id: str) -> CSRGraph:
        """Load (if needed) and return the graph for ``graph_id``."""
        graph = self._loaded.get(graph_id)
        if graph is not None:
            return graph
        source = self._sources.get(graph_id)
        if source is None:
            raise KeyError(
                f"unknown graph {graph_id!r} (have {self.names() or 'none'})"
            )
        if isinstance(source, CSRGraph):
            graph = source
        elif isinstance(source, (str, Path)):
            from repro.graph.io import load_graph

            graph = load_graph(source)
        else:
            graph = source()
            if not isinstance(graph, CSRGraph):
                raise TypeError(
                    f"factory for {graph_id!r} returned {type(graph).__name__}, "
                    "expected CSRGraph"
                )
        self._loaded[graph_id] = graph
        return graph

    def fingerprint(self, graph_id: str) -> str:
        return self.get(graph_id).fingerprint()

    def load_all(self) -> Dict[str, CSRGraph]:
        """Materialise every registered graph (the pool needs objects)."""
        return {gid: self.get(gid) for gid in self.names()}

    def subset(self, graph_ids) -> "GraphCatalog":
        """A new catalog holding only ``graph_ids`` (shard partitions).

        Sources are shared, not copied, and graphs this catalog already
        materialised carry over memoised — partitioning a loaded
        catalog never regenerates or reloads a graph.
        """
        sub = GraphCatalog()
        for gid in graph_ids:
            if gid not in self._sources:
                raise KeyError(
                    f"unknown graph {gid!r} (have {self.names() or 'none'})"
                )
            sub._sources[gid] = self._sources[gid]
            if gid in self._loaded:
                sub._loaded[gid] = self._loaded[gid]
        return sub

    def adopt(self, other: "GraphCatalog") -> None:
        """Memoise ``other``'s loaded graphs for sources this catalog shares.

        Shard engines materialise their :meth:`subset` at construction;
        adopting them back lets a later :meth:`describe` on the full
        catalog reuse those objects instead of regenerating.
        """
        for gid, graph in other._loaded.items():
            if self._sources.get(gid) is other._sources.get(gid):
                self._loaded.setdefault(gid, graph)

    def describe(self) -> List[dict]:
        """One JSON-ready row per graph (loads everything)."""
        rows = []
        for gid in self.names():
            g = self.get(gid)
            rows.append(
                {
                    "id": gid,
                    "name": g.name,
                    "nodes": g.num_nodes,
                    "edges": g.num_edges,
                    "fingerprint": g.fingerprint(),
                }
            )
        return rows


def default_catalog(scale: float = 0.02, *, seed: int = 7) -> GraphCatalog:
    """The built-in catalog: the paper's two synthetic stand-ins.

    ``cal`` (road-network-like) and ``wiki`` (scale-free) at ``scale``
    of the original node counts, both lazy — a serve session that only
    queries ``cal`` never generates ``wiki``.
    """
    from repro.graph.datasets import cal_like, wiki_like

    catalog = GraphCatalog()
    catalog.register("cal", lambda: cal_like(scale, seed=seed))
    catalog.register("wiki", lambda: wiki_like(scale, seed=seed + 4))
    return catalog
