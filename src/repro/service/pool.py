"""Executor pool: fan SSSP work out over threads or processes.

The pool owns a set of named :class:`~repro.graph.csr.CSRGraph` objects
and an executor.  Tasks name the graph they run against; the graph
itself never travels with a task:

* **thread mode** (default) — workers share the graphs in-process.
  NumPy releases the GIL inside the vectorised kernels, so frontier
  stages of independent runs genuinely overlap; the Python glue
  between stages serialises.  Closures and lambdas work as task
  functions.
* **process mode** — the CSR arrays are shipped to each worker exactly
  once, through the ``ProcessPoolExecutor`` *initializer* (not per
  task), and rebuilt into a worker-global graph table.  Tasks then
  carry only ``(graph_id, fn, args)``, so a 16-source batch on a
  multi-megabyte graph pays the transfer ``max_workers`` times, not 16
  times.  Task functions must be picklable (module-level functions).

Per-task timeouts are enforced at result-collection time
(:meth:`ExecutorPool.run` / :meth:`ExecutorPool.map_ordered` raise
:class:`PoolTimeoutError`); :meth:`ExecutorPool.close` shuts down
gracefully and can cancel not-yet-started work.

The pool publishes ``service.pool.queue_depth`` (gauge) and
``service.pool.tasks`` (counter) through the observability context
active at construction (see :mod:`repro.obs.context`).

Worker processes start with the *null* observability context: metrics
published inside a process worker stay in that process.  Callers that
need per-query accounting record it engine-side (wall time, cache
status), which is what :mod:`repro.service.engine` does.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.graph.csr import CSRGraph

__all__ = [
    "ExecutorPool",
    "PoolTimeoutError",
    "default_max_workers",
]


class PoolTimeoutError(TimeoutError):
    """A task exceeded the pool's per-task timeout."""


def default_max_workers() -> int:
    """A conservative default: the CPU count, capped at 8."""
    return min(8, os.cpu_count() or 1)


# ----------------------------------------------------------------------
# process-mode worker plumbing
# ----------------------------------------------------------------------
# Graph table living in each worker process, installed by the
# initializer.  In the parent process this stays empty.
_WORKER_GRAPHS: Dict[str, CSRGraph] = {}

GraphPayload = Tuple[str, str, np.ndarray, np.ndarray, np.ndarray]


def _graph_payloads(graphs: Mapping[str, CSRGraph]) -> List[GraphPayload]:
    return [
        (gid, g.name, g.indptr, g.indices, g.weights)
        for gid, g in graphs.items()
    ]


def _init_worker(payloads: List[GraphPayload]) -> None:
    """Rebuild the graph table inside a fresh worker process."""
    _WORKER_GRAPHS.clear()
    for gid, name, indptr, indices, weights in payloads:
        _WORKER_GRAPHS[gid] = CSRGraph(
            indptr=indptr, indices=indices, weights=weights, name=name
        )


def _run_on_worker_graph(graph_id: str, fn: Callable, args: tuple, kwargs: dict):
    graph = _WORKER_GRAPHS[graph_id]
    return fn(graph, *args, **kwargs)


class ExecutorPool:
    """A thread or process pool over a fixed set of named graphs.

    Parameters
    ----------
    graphs:
        ``{graph_id: CSRGraph}`` — the graphs tasks may name.  Fixed at
        construction: process workers receive them once, in their
        initializer.
    mode:
        ``"thread"`` (default) or ``"process"``.
    max_workers:
        Worker count; defaults to :func:`default_max_workers`.
    timeout:
        Per-task timeout in seconds applied by :meth:`run` and
        :meth:`map_ordered` (``None`` = wait forever).
    """

    def __init__(
        self,
        graphs: Mapping[str, CSRGraph],
        *,
        mode: str = "thread",
        max_workers: Optional[int] = None,
        timeout: Optional[float] = None,
    ):
        if mode not in ("thread", "process"):
            raise ValueError(f"mode must be 'thread' or 'process', got {mode!r}")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        self._graphs = dict(graphs)
        self.mode = mode
        self.max_workers = max_workers or default_max_workers()
        self.timeout = timeout
        self._executor: ThreadPoolExecutor | ProcessPoolExecutor | None = None
        self._closed = False
        self._lock = threading.Lock()
        self._pending = 0
        registry = obs.get_registry()
        self._depth_gauge = registry.gauge("service.pool.queue_depth")
        self._task_counter = registry.counter("service.pool.tasks")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _ensure_executor(self):
        if self._closed:
            raise RuntimeError("pool is closed")
        if self._executor is None:
            if self.mode == "process":
                self._executor = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    initializer=_init_worker,
                    initargs=(_graph_payloads(self._graphs),),
                )
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-pool",
                )
        return self._executor

    def close(self, *, cancel_pending: bool = False) -> None:
        """Shut down gracefully.

        Running tasks always finish; with ``cancel_pending`` queued
        tasks that have not started are cancelled (their futures raise
        ``CancelledError``).
        """
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=cancel_pending)
            self._executor = None

    def __enter__(self) -> "ExecutorPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Tasks submitted but not yet finished."""
        return self._pending

    def graph(self, graph_id: str) -> CSRGraph:
        return self._graphs[graph_id]

    @property
    def graph_ids(self) -> List[str]:
        return sorted(self._graphs)

    def _track(self, future: Future) -> Future:
        with self._lock:
            self._pending += 1
            self._depth_gauge.set(self._pending)
        self._task_counter.inc()

        def _done(_fut: Future) -> None:
            with self._lock:
                self._pending -= 1
                self._depth_gauge.set(self._pending)

        future.add_done_callback(_done)
        return future

    def submit(
        self, graph_id: str, fn: Callable, *args, **kwargs
    ) -> Future:
        """Schedule ``fn(graph, *args, **kwargs)`` on a worker.

        The graph is resolved worker-side from ``graph_id``; in process
        mode ``fn``, ``args`` and ``kwargs`` must be picklable.
        """
        if graph_id not in self._graphs:
            raise KeyError(
                f"unknown graph {graph_id!r} (have {self.graph_ids})"
            )
        executor = self._ensure_executor()
        if self.mode == "process":
            future = executor.submit(
                _run_on_worker_graph, graph_id, fn, args, kwargs
            )
        else:
            graph = self._graphs[graph_id]
            future = executor.submit(fn, graph, *args, **kwargs)
        return self._track(future)

    def run(self, graph_id: str, fn: Callable, *args, **kwargs):
        """Submit one task and wait for it (honouring the pool timeout)."""
        future = self.submit(graph_id, fn, *args, **kwargs)
        try:
            return future.result(timeout=self.timeout)
        except FutureTimeoutError:
            future.cancel()
            raise PoolTimeoutError(
                f"task on graph {graph_id!r} exceeded {self.timeout}s"
            ) from None

    def map_ordered(
        self,
        graph_id: str,
        fn: Callable,
        arg_tuples: Sequence[tuple],
    ) -> list:
        """Run ``fn(graph, *args)`` for every tuple, concurrently.

        Results come back **in input order** regardless of completion
        order, so a parallel batch is a drop-in replacement for the
        serial loop.  The pool timeout applies to each task
        individually; the first failing task raises (the remaining
        futures are left to finish, then cancelled by ``close``).
        """
        futures = [self.submit(graph_id, fn, *args) for args in arg_tuples]
        results = []
        for i, future in enumerate(futures):
            try:
                results.append(future.result(timeout=self.timeout))
            except FutureTimeoutError:
                for later in futures[i:]:
                    later.cancel()
                raise PoolTimeoutError(
                    f"task {i} on graph {graph_id!r} exceeded {self.timeout}s"
                ) from None
        return results
