"""Executor pool: fan SSSP work out over threads or processes.

The pool owns a set of named :class:`~repro.graph.csr.CSRGraph` objects
and an executor.  Tasks name the graph they run against; the graph
itself never travels with a task:

* **thread mode** (default) — workers share the graphs in-process.
  NumPy releases the GIL inside the vectorised kernels, so frontier
  stages of independent runs genuinely overlap; the Python glue
  between stages serialises.  Closures and lambdas work as task
  functions.
* **process mode** — the CSR arrays are shipped to each worker exactly
  once, through the ``ProcessPoolExecutor`` *initializer* (not per
  task), and rebuilt into a worker-global graph table.  Tasks then
  carry only ``(graph_id, fn, args)``, so a 16-source batch on a
  multi-megabyte graph pays the transfer ``max_workers`` times, not 16
  times.  Task functions must be picklable (module-level functions).

Per-task timeouts are enforced at result-collection time
(:meth:`ExecutorPool.run` / :meth:`ExecutorPool.map_ordered` raise
:class:`PoolTimeoutError`); :meth:`ExecutorPool.close` shuts down
gracefully and can cancel not-yet-started work.

**Timed-out thread tasks cannot be killed.**  ``Future.cancel()`` on a
task that already started is a no-op for threads, so a hung thread
task keeps its worker slot occupied until (unless) it returns.
:meth:`abandon` makes that limitation explicit: it cancels what can be
cancelled and *accounts* what cannot — the ``service.pool.lost_workers``
gauge counts slots currently held by abandoned-but-running tasks
(decremented if the straggler eventually finishes) and
:attr:`lost_workers` exposes the same number in-process.  Process
tasks do not leak slots this way (a worker can be torn down), but a
*dead* process worker breaks the whole ``ProcessPoolExecutor``; the
pool answers ``BrokenProcessPool`` by rebuilding the executor
(:meth:`recover`, counted in ``service.pool.rebuilds``) and
:meth:`run`/:meth:`map_ordered` transparently requeue the work that
never ran.

Deterministic sabotage for tests and chaos drills: pass a
:class:`~repro.resilience.faults.FaultPlan` and the pool injects the
planned fault (crash, hang, corrupt result, transient error, worker
death) into each task by submission index.

The pool publishes ``service.pool.queue_depth`` (gauge) and
``service.pool.tasks`` (counter) through the observability context
active at construction (see :mod:`repro.obs.context`).

Worker processes start with the *null* observability context, so
metrics a task publishes would stay in that process — which is why
the engine's traced task wrappers
(:func:`~repro.service.runners.run_algorithm_traced`) run each task
under a private buffered context and ship the deltas back with the
result (see :mod:`repro.obs.telemetry`).  The pool itself stays
telemetry-agnostic: an envelope is just another pickled argument.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.graph.csr import CSRGraph
from repro.resilience.faults import FaultPlan, FaultSpec, apply_fault

__all__ = [
    "ExecutorPool",
    "PoolTimeoutError",
    "default_max_workers",
]


class PoolTimeoutError(TimeoutError):
    """A task exceeded the pool's per-task timeout."""


def default_max_workers() -> int:
    """A conservative default: the CPU count, capped at 8."""
    return min(8, os.cpu_count() or 1)


# ----------------------------------------------------------------------
# process-mode worker plumbing
# ----------------------------------------------------------------------
# Graph table living in each worker process, installed by the
# initializer.  In the parent process this stays empty.
_WORKER_GRAPHS: Dict[str, CSRGraph] = {}

GraphPayload = Tuple[str, str, np.ndarray, np.ndarray, np.ndarray]


def _graph_payloads(graphs: Mapping[str, CSRGraph]) -> List[GraphPayload]:
    return [
        (gid, g.name, g.indptr, g.indices, g.weights)
        for gid, g in graphs.items()
    ]


def _init_worker(payloads: List[GraphPayload]) -> None:
    """Rebuild the graph table inside a fresh worker process."""
    _WORKER_GRAPHS.clear()
    for gid, name, indptr, indices, weights in payloads:
        _WORKER_GRAPHS[gid] = CSRGraph(
            indptr=indptr, indices=indices, weights=weights, name=name
        )


def _run_on_worker_graph(graph_id: str, fn: Callable, args: tuple, kwargs: dict):
    graph = _WORKER_GRAPHS[graph_id]
    return fn(graph, *args, **kwargs)


def _run_faulted_on_worker_graph(
    fault: FaultSpec, graph_id: str, fn: Callable, args: tuple, kwargs: dict
):
    return apply_fault(
        fault,
        lambda: _run_on_worker_graph(graph_id, fn, args, kwargs),
        in_process_worker=True,
    )


def _run_faulted_in_thread(fault: FaultSpec, fn: Callable, graph, args, kwargs):
    return apply_fault(
        fault, lambda: fn(graph, *args, **kwargs), in_process_worker=False
    )


class ExecutorPool:
    """A thread or process pool over a fixed set of named graphs.

    Parameters
    ----------
    graphs:
        ``{graph_id: CSRGraph}`` — the graphs tasks may name.  Fixed at
        construction: process workers receive them once, in their
        initializer.
    mode:
        ``"thread"`` (default) or ``"process"``.
    max_workers:
        Worker count; defaults to :func:`default_max_workers`.
    timeout:
        Per-task timeout in seconds applied by :meth:`run` and
        :meth:`map_ordered` (``None`` = wait forever).
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan`; when set,
        each submission is sabotaged (or not) per the plan's seeded
        decision for its submission index.
    """

    def __init__(
        self,
        graphs: Mapping[str, CSRGraph],
        *,
        mode: str = "thread",
        max_workers: Optional[int] = None,
        timeout: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        if mode not in ("thread", "process"):
            raise ValueError(f"mode must be 'thread' or 'process', got {mode!r}")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        self._graphs = dict(graphs)
        self.mode = mode
        self.max_workers = max_workers or default_max_workers()
        self.timeout = timeout
        self.fault_plan = fault_plan
        self._executor: ThreadPoolExecutor | ProcessPoolExecutor | None = None
        self._closed = False
        self._lock = threading.Lock()
        self._pending = 0
        self._task_index = 0
        self._lost_workers = 0
        self.rebuilds = 0
        registry = obs.get_registry()
        self._depth_gauge = registry.gauge("service.pool.queue_depth")
        self._task_counter = registry.counter("service.pool.tasks")
        self._lost_gauge = registry.gauge("service.pool.lost_workers")
        self._rebuild_counter = registry.counter("service.pool.rebuilds")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _ensure_executor(self):
        if self._closed:
            raise RuntimeError("pool is closed")
        if self._executor is None:
            if self.mode == "process":
                self._executor = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    initializer=_init_worker,
                    initargs=(_graph_payloads(self._graphs),),
                )
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-pool",
                )
        return self._executor

    def close(self, *, cancel_pending: bool = False) -> None:
        """Shut down gracefully.

        Running tasks always finish; with ``cancel_pending`` queued
        tasks that have not started are cancelled (their futures raise
        ``CancelledError``).
        """
        self._closed = True
        if self._executor is not None:
            # a broken process pool cannot wait for its (dead) workers
            broken = getattr(self._executor, "_broken", False)
            self._executor.shutdown(
                wait=not broken, cancel_futures=cancel_pending or bool(broken)
            )
            self._executor = None

    @property
    def alive(self) -> bool:
        """Usable right now: not closed, executor absent or unbroken."""
        if self._closed:
            return False
        executor = self._executor
        return executor is None or not getattr(executor, "_broken", False)

    @property
    def lost_workers(self) -> int:
        """Slots currently occupied by abandoned (timed-out) thread tasks."""
        return self._lost_workers

    def recover(self) -> None:
        """Tear down a broken executor and lazily rebuild on next submit.

        Called when a worker process died hard (``BrokenProcessPool``):
        the executor object is unusable, but the graphs and the
        configuration are not — a fresh executor (with fresh workers
        re-initialised from the same graph payloads) restores service.
        Futures already handed out by the broken executor stay failed;
        callers requeue them (:meth:`run` / :meth:`map_ordered` do this
        themselves, the query engine retries through its normal path).
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self.rebuilds += 1
        self._rebuild_counter.inc()

    def __enter__(self) -> "ExecutorPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Tasks submitted but not yet finished."""
        return self._pending

    def graph(self, graph_id: str) -> CSRGraph:
        return self._graphs[graph_id]

    @property
    def graph_ids(self) -> List[str]:
        return sorted(self._graphs)

    def add_graph(self, graph_id: str, graph: CSRGraph) -> None:
        """Register a graph after construction (shard failover adoption).

        Thread mode sees the new graph immediately (workers resolve
        graphs from the shared dict).  Process mode ships graph
        payloads to workers at executor build time, so an existing
        executor is torn down lazily — in-flight futures finish on the
        old workers, and the next submit rebuilds with the full set.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        with self._lock:
            self._graphs[graph_id] = graph
            if self.mode == "process" and self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=False)
                self._executor = None

    def _track(self, future: Future) -> Future:
        with self._lock:
            self._pending += 1
            self._depth_gauge.set(self._pending)
        self._task_counter.inc()

        def _done(_fut: Future) -> None:
            with self._lock:
                self._pending -= 1
                self._depth_gauge.set(self._pending)

        future.add_done_callback(_done)
        return future

    def submit(
        self, graph_id: str, fn: Callable, *args, **kwargs
    ) -> Future:
        """Schedule ``fn(graph, *args, **kwargs)`` on a worker.

        The graph is resolved worker-side from ``graph_id``; in process
        mode ``fn``, ``args`` and ``kwargs`` must be picklable.
        """
        if graph_id not in self._graphs:
            raise KeyError(
                f"unknown graph {graph_id!r} (have {self.graph_ids})"
            )
        executor = self._ensure_executor()
        fault = None
        if self.fault_plan is not None:
            with self._lock:
                index = self._task_index
                self._task_index += 1
            fault = self.fault_plan.decide(index)
        if self.mode == "process":
            if fault is not None:
                future = executor.submit(
                    _run_faulted_on_worker_graph, fault, graph_id, fn, args, kwargs
                )
            else:
                future = executor.submit(
                    _run_on_worker_graph, graph_id, fn, args, kwargs
                )
        else:
            graph = self._graphs[graph_id]
            if fault is not None:
                future = executor.submit(
                    _run_faulted_in_thread, fault, fn, graph, args, kwargs
                )
            else:
                future = executor.submit(fn, graph, *args, **kwargs)
        return self._track(future)

    def abandon(self, future: Future) -> bool:
        """Give up on a future; account the slot if it cannot be freed.

        Returns True if the task was cancelled before starting.  A
        task already running on a *thread* cannot be stopped — the
        slot is counted lost (``service.pool.lost_workers`` gauge,
        :attr:`lost_workers`) until the straggler finishes on its own,
        if it ever does.
        """
        if future.cancel() or future.done():
            return future.cancelled()
        if self.mode == "thread":
            with self._lock:
                self._lost_workers += 1
                self._lost_gauge.set(self._lost_workers)

            def _finally_finished(_fut: Future) -> None:
                with self._lock:
                    self._lost_workers -= 1
                    self._lost_gauge.set(self._lost_workers)

            future.add_done_callback(_finally_finished)
        return False

    def run(self, graph_id: str, fn: Callable, *args, **kwargs):
        """Submit one task and wait for it (honouring the pool timeout).

        A dead process worker (``BrokenProcessPool``) triggers one
        executor rebuild and one transparent resubmission; a second
        break raises.
        """
        future = self.submit(graph_id, fn, *args, **kwargs)
        for attempt in range(2):
            try:
                return future.result(timeout=self.timeout)
            except FutureTimeoutError:
                self.abandon(future)
                raise PoolTimeoutError(
                    f"task on graph {graph_id!r} exceeded {self.timeout}s"
                ) from None
            except BrokenExecutor:
                if attempt == 1:
                    raise
                self.recover()
                future = self.submit(graph_id, fn, *args, **kwargs)

    def map_ordered(
        self,
        graph_id: str,
        fn: Callable,
        arg_tuples: Sequence[tuple],
    ) -> list:
        """Run ``fn(graph, *args)`` for every tuple, concurrently.

        Results come back **in input order** regardless of completion
        order, so a parallel batch is a drop-in replacement for the
        serial loop.  The pool timeout applies to each task
        individually; the first failing task raises (the remaining
        futures are left to finish, then cancelled by ``close``).  A
        broken process pool is rebuilt once, with every task that did
        not complete requeued on the fresh executor.
        """
        futures = [self.submit(graph_id, fn, *args) for args in arg_tuples]
        results = []
        recovered = False
        i = 0
        while i < len(futures):
            try:
                results.append(futures[i].result(timeout=self.timeout))
            except FutureTimeoutError:
                for later in futures[i:]:
                    self.abandon(later)
                raise PoolTimeoutError(
                    f"task {i} on graph {graph_id!r} exceeded {self.timeout}s"
                ) from None
            except BrokenExecutor:
                if recovered:
                    raise
                recovered = True
                self.recover()
                # requeue this task and everything after it that did
                # not finish before the break
                for j in range(i, len(futures)):
                    if not (futures[j].done() and futures[j].exception() is None):
                        futures[j] = self.submit(graph_id, fn, *arg_tuples[j])
                continue
            i += 1
        return results
