"""Bounded LRU result cache with observability counters.

Keys are opaque hashables; the query engine keys on
``(graph fingerprint, source, algorithm, canonical params)`` so a
cached result can never be served for a graph whose arrays changed —
:meth:`repro.graph.csr.CSRGraph.fingerprint` covers weights, topology
and name, and a re-registered graph with new weights simply misses.

Every lookup and eviction is counted twice: into plain integers on the
cache (always available, e.g. for ``stats`` responses) and into the
metrics registry active at construction (``<prefix>.hits`` /
``.misses`` / ``.evictions`` counters plus a ``<prefix>.size`` gauge)
so a served workload exposes its hit rate through the normal
:mod:`repro.obs` channel.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Optional

from repro import obs

__all__ = ["LRUCache"]


class LRUCache:
    """A thread-safe least-recently-used mapping with a size bound.

    ``capacity=0`` disables caching entirely (every ``get`` misses,
    ``put`` is a no-op) — useful for measuring cold-path latency.
    """

    def __init__(self, capacity: int = 128, *, metrics_prefix: str = "service.cache"):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        registry = obs.get_registry()
        self._hit_counter = registry.counter(f"{metrics_prefix}.hits")
        self._miss_counter = registry.counter(f"{metrics_prefix}.misses")
        self._eviction_counter = registry.counter(f"{metrics_prefix}.evictions")
        self._size_gauge = registry.gauge(f"{metrics_prefix}.size")

    def get(self, key: Hashable) -> Optional[object]:
        """The cached value, refreshed to most-recent; ``None`` on miss."""
        with self._lock:
            value = self._data.get(key)
            if value is None:
                self.misses += 1
                self._miss_counter.inc()
                return None
            self._data.move_to_end(key)
            self.hits += 1
            self._hit_counter.inc()
            return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry if full."""
        if value is None:
            raise ValueError("cache values must not be None (None marks a miss)")
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1
                self._eviction_counter.inc()
            self._size_gauge.set(len(self._data))

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._size_gauge.set(0)

    def stats(self) -> dict:
        """Counters + occupancy, JSON-ready (for ``stats`` responses)."""
        return {
            "capacity": self.capacity,
            "size": len(self._data),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
