"""The SSSP query engine: cache, dedup, pool, observability.

:class:`QueryEngine` turns a :class:`~repro.service.catalog.GraphCatalog`
into something that answers :class:`SSSPQuery` requests:

1. **cache** — repeats are served from a bounded LRU
   (:mod:`repro.service.cache`) keyed on ``(graph fingerprint, source,
   algorithm, canonical params)``; the fingerprint in the key makes a
   stale hit against changed graph data impossible.
2. **dedup** — identical queries submitted in one batch collapse onto
   a single execution; the duplicates report ``cache="coalesced"``.
3. **pool** — misses run on an :class:`~repro.service.pool.ExecutorPool`
   (threads by default, processes for CPU-bound fan-out) with the
   graphs shared per-worker, per-query timeouts and graceful
   shutdown.
4. **resilience** — transient failures (worker crashes, timeouts,
   broken process pools, corrupted results) are retried with
   exponential backoff and deterministic jitter
   (:class:`~repro.resilience.retry.RetryPolicy`); repeated failures
   on one ``(graph, algorithm)`` corridor open a circuit breaker
   (:class:`~repro.resilience.breaker.BreakerBoard`) that fails fast
   until a half-open probe succeeds.  Every pool result is sanity
   validated before it can reach the cache or a client — a failed (or
   corrupt) attempt is **never cached**.

Every query emits ``query_start`` / ``query_end`` events (plus
``query_retry`` per retry) and updates ``service.*`` metrics through
the observability context active when the engine was built, so a
serve session's hit rate, queue depth, retry totals and latency
distribution are one ``snapshot()`` away; :meth:`QueryEngine.health`
bundles pool liveness, breaker states and retry counters for the
``health`` protocol op.

When that context is live, every query also carries a
:class:`~repro.obs.telemetry.TraceContext`: the engine derives a child
of the query's (protocol-minted) trace, threads a grandchild through
the task envelope into the pool worker, and the worker ships its
metric deltas, span profile and buffered events back with the result
(see :mod:`repro.obs.telemetry`).  Merged worker payloads feed the
labelled ``service.query.latency`` / ``service.query.queue_wait`` /
``service.query.compute`` histograms — per ``(graph, algorithm)`` —
whose p50/p95/p99 the ``metrics`` protocol op exposes.  With a null
context the engine runs the exact pre-telemetry code path: bare
runner tasks, no envelopes, no per-query overhead.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro import obs
from repro.obs.telemetry import TraceContext, emit_span, merge_payload
from repro.resilience.breaker import BreakerBoard, BreakerConfig
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import (
    RetryPolicy,
    classify_error,
    validate_result,
)
from repro.resilience.retry import CorruptResultError
from repro.service.cache import LRUCache
from repro.service.catalog import GraphCatalog
from repro.service.pool import ExecutorPool, PoolTimeoutError
from repro.service.runners import (
    ALGORITHM_PARAMS,
    BATCHED_ALGORITHMS,
    run_algorithm,
    run_algorithm_batch,
    run_algorithm_batch_traced,
    run_algorithm_traced,
    validate_params,
)
from repro.sssp.result import SSSPResult

__all__ = ["SSSPQuery", "QueryResponse", "QueryEngine"]


@dataclass(frozen=True)
class SSSPQuery:
    """One shortest-path request against a catalogued graph."""

    graph_id: str
    source: int
    algorithm: str = "adaptive"
    params: Mapping = field(default_factory=dict)
    request_id: Optional[str] = None
    # the caller's trace (protocol-minted); identity-only, so excluded
    # from equality — two identical queries on different traces still
    # coalesce onto one execution
    trace: Optional[TraceContext] = field(default=None, compare=False)

    def canonical_params(self) -> str:
        """Params as sorted JSON — the cache-key component."""
        return json.dumps(dict(self.params), sort_keys=True, default=float)


@dataclass
class QueryResponse:
    """What the engine answers; :meth:`as_dict` is the wire format."""

    query: SSSPQuery
    ok: bool
    cache: str = "miss"  # "miss" | "hit" | "coalesced"
    error: Optional[str] = None
    fingerprint: Optional[str] = None
    reached: int = 0
    iterations: int = 0
    relaxations: int = 0
    max_dist: Optional[float] = None
    mean_dist: Optional[float] = None
    wall_seconds: float = 0.0
    attempts: int = 1
    trace_id: Optional[str] = None

    def as_dict(self) -> dict:
        out: dict = {"ok": self.ok}
        if self.query.request_id is not None:
            out["id"] = self.query.request_id
        out.update(
            graph=self.query.graph_id,
            source=self.query.source,
            algorithm=self.query.algorithm,
        )
        if self.trace_id is not None:
            out["trace"] = self.trace_id
        if not self.ok:
            out["error"] = self.error
            if self.attempts > 1:
                out["attempts"] = self.attempts
            return out
        out.update(
            fingerprint=self.fingerprint,
            cache=self.cache,
            reached=self.reached,
            iterations=self.iterations,
            relaxations=self.relaxations,
            max_dist=self.max_dist,
            mean_dist=self.mean_dist,
            wall_seconds=round(self.wall_seconds, 6),
        )
        if self.attempts > 1:
            out["attempts"] = self.attempts
        return out

    # Wire fields shipped verbatim between shard-worker processes and
    # the front-end: everything except ``query`` (the caller already
    # holds it, and rebuilding from it keeps ids/traces identical).
    _WIRE_FIELDS = (
        "ok",
        "cache",
        "error",
        "fingerprint",
        "reached",
        "iterations",
        "relaxations",
        "max_dist",
        "mean_dist",
        "wall_seconds",
        "attempts",
        "trace_id",
    )

    def to_wire(self) -> dict:
        """A JSON-safe dict for the worker frame protocol.

        Round-tripping through :meth:`from_wire` yields a response
        whose :meth:`as_dict` is byte-identical to this one's — the
        process-mode server answers exactly what thread mode would.
        """
        return {name: getattr(self, name) for name in self._WIRE_FIELDS}

    @classmethod
    def from_wire(cls, query: SSSPQuery, data: Mapping) -> "QueryResponse":
        """Invert :meth:`to_wire`, re-attaching the caller's query."""
        return cls(query=query, **{k: data[k] for k in cls._WIRE_FIELDS})


def _summarise(result: SSSPResult) -> dict:
    finite = result.finite_distances()
    return {
        "reached": result.num_reached,
        "iterations": result.iterations,
        "relaxations": result.relaxations,
        "max_dist": float(finite.max()) if finite.size else None,
        "mean_dist": float(finite.mean()) if finite.size else None,
    }


CacheKey = Tuple[str, int, str, str]

# one pending cache-miss:
# (request index, query, cache key, qid, start time, engine trace ctx)
_Miss = Tuple[int, SSSPQuery, CacheKey, int, float, Optional[TraceContext]]


@dataclass
class _Dispatch:
    """One pool submission covering one or more pending misses."""

    future: object
    members: List[_Miss]
    batched: bool = False


class QueryEngine:
    """Serve SSSP queries against a catalog, with caching and a pool.

    Parameters
    ----------
    catalog:
        The graphs to serve.  Loaded eagerly at construction — the
        pool needs concrete arrays to hand its workers.
    mode, max_workers, timeout:
        Pool configuration (see :class:`~repro.service.pool.ExecutorPool`).
    cache_size:
        LRU capacity in results (0 disables caching).
    retry:
        Retry policy for transient failures (default:
        :class:`~repro.resilience.retry.RetryPolicy` with 3 attempts;
        ``RetryPolicy(max_attempts=1)`` disables retrying).
    breaker:
        Circuit-breaker config per ``(graph, algorithm)`` (default:
        open after 5 consecutive failures, half-open after 30 s;
        ``BreakerConfig(failure_threshold=0)`` disables tripping).
    fault_plan:
        Optional deterministic sabotage for chaos drills, passed to
        the pool (see :class:`~repro.resilience.faults.FaultPlan`).
    max_batch:
        Coalescing width: concurrent cache-miss queries on the same
        ``(graph, algorithm, params)`` corridor are dispatched as one
        batched kernel call, at most ``max_batch`` sources per call
        (only for algorithms with a multi-source kernel — see
        :data:`~repro.service.runners.BATCHED_ALGORITHMS`).  1 (the
        default) disables coalescing: every miss is its own pool task.
    backend:
        Default kernel backend for algorithms that accept one (see
        :mod:`repro.sssp.backends`): injected into query params when
        the request does not name its own, stamped into the
        ``service.query.*`` metric labels and :meth:`stats`.  Falls
        back to the ``REPRO_KERNEL_BACKEND`` environment variable;
        when neither is set queries run on the per-call default
        (numpy) and no backend label is added.
    labels:
        Extra labels folded into every ``service.query.*`` histogram
        this engine publishes (on top of ``graph``/``algorithm``).
        The shard manager tags each shard engine with
        ``{"shard": "<index>"}`` so per-shard latency stays
        distinguishable in one shared registry.
    """

    def __init__(
        self,
        catalog: GraphCatalog,
        *,
        mode: str = "thread",
        max_workers: Optional[int] = None,
        timeout: Optional[float] = None,
        cache_size: int = 128,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        max_batch: int = 1,
        backend: Optional[str] = None,
        labels: Optional[Mapping[str, str]] = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        requested_backend = backend or os.environ.get("REPRO_KERNEL_BACKEND")
        if requested_backend:
            # resolve eagerly: an unknown name fails construction, a
            # known-but-unavailable one warns and pins the fallback
            from repro.sssp.backends import resolve_backend

            self.backend: Optional[str] = resolve_backend(
                requested_backend
            ).name
        else:
            self.backend = None
        self.catalog = catalog
        self._graphs = catalog.load_all()
        self.pool = ExecutorPool(
            self._graphs,
            mode=mode,
            max_workers=max_workers,
            timeout=timeout,
            fault_plan=fault_plan,
        )
        self.cache = LRUCache(cache_size)
        self.retry = retry or RetryPolicy()
        self.breakers = BreakerBoard(breaker)
        self.max_batch = int(max_batch)
        self._extra_labels = dict(labels or {})
        if self.backend is not None:
            self._extra_labels.setdefault("backend", self.backend)
        self._qid = 0
        self.retry_attempts = 0  # extra attempts beyond the first, total
        self.retry_exhausted = 0  # queries that failed after all attempts
        registry = obs.get_registry()
        self._registry = registry
        self._events = obs.get_events()
        self._spans = obs.get_spans()
        # captured once at construction: with a null context this stays
        # False and every query runs the bare (envelope-free) task path
        self._telemetry = obs.current().enabled
        self._query_counter = registry.counter("service.queries")
        self._error_counter = registry.counter("service.errors")
        self._query_timer = registry.timer("service.query_seconds")
        self._retry_counter = registry.counter("service.retries")
        self._exhausted_counter = registry.counter("service.retry_exhausted")
        self._batch_size_hist = registry.histogram("service.batch.size")
        self._batch_coalesced = registry.counter("service.batch.coalesced")
        # labelled per-(graph, algorithm) histogram handles, cached so
        # the hot path does one dict lookup instead of a registry call
        self._query_hist_cache: Dict[
            Tuple[str, str], Tuple[object, object, object]
        ] = {}

    def _query_hists(
        self, graph_id: str, algorithm: str
    ) -> Tuple[object, object, object]:
        """The ``(latency, queue_wait, compute)`` histogram triple for
        one ``(graph, algorithm)`` label pair."""
        cached = self._query_hist_cache.get((graph_id, algorithm))
        if cached is None:
            labels = {
                "graph": graph_id,
                "algorithm": algorithm,
                **self._extra_labels,
            }
            cached = (
                self._registry.histogram("service.query.latency", labels=labels),
                self._registry.histogram(
                    "service.query.queue_wait", labels=labels
                ),
                self._registry.histogram("service.query.compute", labels=labels),
            )
            self._query_hist_cache[(graph_id, algorithm)] = cached
        return cached

    def _observe_latency(self, query: SSSPQuery, response: QueryResponse) -> None:
        """Record end-to-end latency for one answered query."""
        if self._telemetry and response.ok:
            latency, _, _ = self._query_hists(query.graph_id, query.algorithm)
            latency.observe(response.wall_seconds)

    def _mint_ctx(self, query: SSSPQuery) -> Optional[TraceContext]:
        """The engine-side trace context for one query, or None.

        A protocol-minted trace gains an engine child span; a bare
        engine call (no protocol in front) mints its own root so
        direct :meth:`run` users still get traced.
        """
        if not self._telemetry:
            return None
        if query.trace is not None:
            return query.trace.child()
        return TraceContext.mint()

    def _absorb_payload(
        self, payload: Optional[Mapping], query: SSSPQuery
    ) -> None:
        """Fold one worker telemetry payload into the serving context."""
        if not payload:
            return
        merge_payload(
            payload,
            registry=self._registry,
            events=self._events,
            spans=self._spans,
        )
        _, queue_hist, compute_hist = self._query_hists(
            query.graph_id, query.algorithm
        )
        queue_wait = payload.get("queue_wait_seconds")
        if queue_wait is not None:
            queue_hist.observe(float(queue_wait))
        compute = payload.get("compute_seconds")
        if compute is not None:
            compute_hist.observe(float(compute))

    def _unwrap(self, raw):
        """Split a pool return into ``(result, payload)``.

        With telemetry off tasks return bare results — pass through.
        With telemetry on every task is a traced wrapper returning a
        ``(result, payload-dict)`` pair; anything else (e.g. a fault
        plan's corrupted envelope) is a corrupt result, which
        :func:`~repro.resilience.retry.classify_error` treats as
        transient — same retry behaviour a corrupted bare result gets.
        """
        if not self._telemetry:
            return raw, None
        if (
            not isinstance(raw, tuple)
            or len(raw) != 2
            or not isinstance(raw[1], dict)
        ):
            raise CorruptResultError(
                f"task returned {type(raw).__name__}, "
                "expected a (result, telemetry) pair"
            )
        return raw

    @property
    def telemetry(self) -> bool:
        """True when the engine was built under a live obs context."""
        return self._telemetry

    @property
    def events(self):
        """The event sink the engine publishes to (protocol spans use it)."""
        return self._events

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def adopt_graph(self, graph_id: str, graph) -> None:
        """Serve one more graph, post-construction (shard failover).

        A surviving shard adopts a dead shard's graph: registered in
        the engine's catalog (already-memoised CSR arrays are shared,
        not reloaded), made resolvable by validation, and added to the
        pool so workers can run on it.  Idempotent per (id, graph).
        """
        self.catalog.register(graph_id, graph)
        self._graphs[graph_id] = graph
        self.pool.add_graph(graph_id, graph)

    def close(self, *, cancel_pending: bool = False) -> None:
        self.pool.close(cancel_pending=cancel_pending)

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def _cache_key(self, query: SSSPQuery) -> CacheKey:
        fingerprint = self._graphs[query.graph_id].fingerprint()
        return (
            fingerprint,
            int(query.source),
            query.algorithm,
            query.canonical_params(),
        )

    def _next_qid(self) -> int:
        self._qid += 1
        return self._qid

    def _emit_start(
        self,
        qid: int,
        query: SSSPQuery,
        ctx: Optional[TraceContext] = None,
    ) -> None:
        if self._events.enabled:
            event = {
                "type": "query_start",
                "qid": qid,
                "graph": query.graph_id,
                "source": int(query.source),
                "algorithm": query.algorithm,
                "queue_depth": self.pool.pending,
            }
            if ctx is not None:
                event["trace"] = ctx.trace_id
            self._events.emit(event)

    def _emit_end(
        self,
        qid: int,
        response: QueryResponse,
        ctx: Optional[TraceContext] = None,
    ) -> None:
        if self._events.enabled:
            event = {
                "type": "query_end",
                "qid": qid,
                "ok": response.ok,
                "cache": response.cache if response.ok else None,
                "error": response.error,
                "reached": response.reached,
                "iterations": response.iterations,
                "wall_seconds": round(response.wall_seconds, 6),
            }
            if ctx is not None:
                event["trace"] = ctx.trace_id
            self._events.emit(event)
        emit_span(
            self._events,
            ctx,
            "engine/query",
            response.wall_seconds,
            qid=qid,
            graph=response.query.graph_id,
            algorithm=response.query.algorithm,
            cache=response.cache if response.ok else None,
        )

    def _validate(self, query: SSSPQuery) -> Optional[str]:
        """A human-readable rejection reason, or None if runnable."""
        if query.graph_id not in self._graphs:
            return (
                f"unknown graph {query.graph_id!r} "
                f"(have {self.pool.graph_ids or 'none'})"
            )
        try:
            validate_params(query.algorithm, query.params)
        except ValueError as exc:
            return str(exc)
        graph = self._graphs[query.graph_id]
        if not 0 <= int(query.source) < graph.num_nodes:
            return (
                f"source {query.source} out of range for "
                f"{graph.num_nodes}-node graph {query.graph_id!r}"
            )
        return None

    def run(self, query: SSSPQuery) -> QueryResponse:
        """Answer one query (cache -> pool), never raising for bad input."""
        return self.run_many([query])[0]

    def _task_params(self, query: SSSPQuery) -> dict:
        """The params shipped to the pool task for one query.

        Injects the engine's default kernel backend when the query did
        not name its own and the algorithm accepts one; a per-query
        ``backend`` param always wins.
        """
        params = dict(query.params)
        if (
            self.backend is not None
            and "backend" not in params
            and "backend" in ALGORITHM_PARAMS.get(query.algorithm, ())
        ):
            params["backend"] = self.backend
        return params

    def _envelope(self, ctx: Optional[TraceContext]) -> dict:
        """The telemetry envelope for one pool task: the worker's trace
        context (a pool-hop child of the engine span) plus the enqueue
        timestamp queue-wait is measured against.  A retry mints a
        fresh envelope — new span, new enqueue time."""
        return {
            "ctx": ctx.child().to_wire() if ctx is not None else None,
            "enqueue_ts": time.time(),
        }

    def _submit_query(
        self, query: SSSPQuery, ctx: Optional[TraceContext] = None
    ):
        """Submit to the pool, absorbing one asynchronous break.

        A process worker can die (``poolbreak``, OOM kill, ...) while
        *other* tasks are being submitted or retried, leaving the
        executor broken before this submission ever ran — recover and
        submit again rather than blaming this query for it.
        """
        if self._telemetry:
            args = (
                run_algorithm_traced,
                self._envelope(ctx),
                int(query.source),
                query.algorithm,
                self._task_params(query),
            )
        else:
            args = (
                run_algorithm,
                int(query.source),
                query.algorithm,
                self._task_params(query),
            )
        try:
            return self.pool.submit(query.graph_id, *args)
        except BrokenExecutor:
            self.pool.recover()
            return self.pool.submit(query.graph_id, *args)

    def _submit_batch(
        self,
        queries: List[SSSPQuery],
        ctx: Optional[TraceContext] = None,
    ):
        """Submit one coalesced batch task (same break-absorption as
        :meth:`_submit_query`); all queries share graph/algorithm/params.
        The worker payload attaches to the lead query's trace."""
        lead = queries[0]
        sources = [int(q.source) for q in queries]
        if self._telemetry:
            args = (
                run_algorithm_batch_traced,
                self._envelope(ctx),
                sources,
                lead.algorithm,
                self._task_params(lead),
            )
        else:
            args = (
                run_algorithm_batch,
                sources,
                lead.algorithm,
                self._task_params(lead),
            )
        try:
            return self.pool.submit(lead.graph_id, *args)
        except BrokenExecutor:
            self.pool.recover()
            return self.pool.submit(lead.graph_id, *args)

    def _emit_batch_dispatch(self, chunk: List[_Miss]) -> None:
        if self._events.enabled:
            lead = chunk[0][1]
            lead_ctx = chunk[0][5]
            event = {
                "type": "batch_dispatch",
                "graph": lead.graph_id,
                "algorithm": lead.algorithm,
                "batch_size": len(chunk),
                "sources": [int(m[1].source) for m in chunk],
                "qids": [m[3] for m in chunk],
            }
            if lead_ctx is not None:
                event["trace"] = lead_ctx.trace_id
            self._events.emit(event)

    def _dispatch(self, misses: List[_Miss]) -> List[_Dispatch]:
        """Turn pending misses into pool submissions.

        With ``max_batch > 1``, misses on one ``(graph, algorithm,
        params)`` corridor whose algorithm has a multi-source kernel
        are coalesced into batch tasks of at most ``max_batch`` sources
        (a corridor dispatches at its first member's position, so
        submission order tracks request order); everything else is one
        task per query, exactly as before.
        """
        groups: Dict[Tuple[str, str, str], List[_Miss]] = {}
        plan: List[Tuple[str, object]] = []
        for miss in misses:
            query = miss[1]
            if self.max_batch > 1 and query.algorithm in BATCHED_ALGORITHMS:
                corridor = (
                    query.graph_id,
                    query.algorithm,
                    query.canonical_params(),
                )
                if corridor not in groups:
                    groups[corridor] = []
                    plan.append(("group", corridor))
                groups[corridor].append(miss)
            else:
                plan.append(("single", miss))

        dispatches: List[_Dispatch] = []
        for kind, payload in plan:
            if kind == "single":
                miss = payload  # type: ignore[assignment]
                dispatches.append(
                    _Dispatch(
                        future=self._submit_query(miss[1], miss[5]),
                        members=[miss],
                    )
                )
                continue
            members = groups[payload]  # type: ignore[index]
            for start in range(0, len(members), self.max_batch):
                chunk = members[start : start + self.max_batch]
                if len(chunk) == 1:
                    # a lone miss gains nothing from the batch entry point
                    dispatches.append(
                        _Dispatch(
                            future=self._submit_query(
                                chunk[0][1], chunk[0][5]
                            ),
                            members=chunk,
                        )
                    )
                    continue
                future = self._submit_batch(
                    [m[1] for m in chunk], chunk[0][5]
                )
                self._batch_size_hist.observe(len(chunk))
                self._batch_coalesced.inc(len(chunk) - 1)
                self._emit_batch_dispatch(chunk)
                dispatches.append(
                    _Dispatch(future=future, members=chunk, batched=True)
                )
        return dispatches

    def run_many(self, queries: List[SSSPQuery]) -> List[QueryResponse]:
        """Answer a batch, deduplicating identical in-flight queries.

        Responses come back in request order.  Distinct queries run
        concurrently on the pool; identical ones (same graph content,
        source, algorithm and params) execute once and fan the result
        back out with ``cache="coalesced"``.  With ``max_batch > 1``,
        distinct cache-misses sharing a ``(graph, algorithm, params)``
        corridor are dispatched as one batched kernel call
        (``batch_dispatch`` event, ``service.batch.*`` metrics) while
        keeping per-query caching, validation, breaker accounting and
        ``query_start``/``query_end`` events.
        """
        responses: List[Optional[QueryResponse]] = [None] * len(queries)
        pending_keys: Dict[CacheKey, bool] = {}
        misses: List[_Miss] = []
        coalesced: List[
            Tuple[int, CacheKey, int, Optional[TraceContext]]
        ] = []

        for i, query in enumerate(queries):
            qid = self._next_qid()
            self._query_counter.inc()
            ctx = self._mint_ctx(query)
            self._emit_start(qid, query, ctx)
            reason = self._validate(query)
            if reason is not None:
                self._error_counter.inc()
                responses[i] = QueryResponse(
                    query=query,
                    ok=False,
                    error=reason,
                    trace_id=ctx.trace_id if ctx else None,
                )
                self._emit_end(qid, responses[i], ctx)
                continue
            key = self._cache_key(query)
            t0 = time.perf_counter()
            cached = self.cache.get(key)
            if cached is not None:
                response = QueryResponse(
                    query=query,
                    ok=True,
                    cache="hit",
                    fingerprint=key[0],
                    wall_seconds=time.perf_counter() - t0,
                    trace_id=ctx.trace_id if ctx else None,
                    **_summarise(cached),  # type: ignore[arg-type]
                )
                self._query_timer.observe(response.wall_seconds)
                self._observe_latency(query, response)
                responses[i] = response
                self._emit_end(qid, response, ctx)
                continue
            if key in pending_keys:
                coalesced.append((i, key, qid, ctx))
                continue
            if not self.breakers.allow(query.graph_id, query.algorithm):
                self._error_counter.inc()
                state = self.breakers.get(
                    query.graph_id, query.algorithm
                ).snapshot()
                responses[i] = QueryResponse(
                    query=query,
                    ok=False,
                    error=(
                        f"circuit breaker {state['state']} for "
                        f"({query.graph_id!r}, {query.algorithm!r}) after "
                        f"{state['consecutive_failures']} consecutive failures"
                    ),
                    trace_id=ctx.trace_id if ctx else None,
                )
                self._emit_end(qid, responses[i], ctx)
                continue
            pending_keys[key] = True
            misses.append((i, query, key, qid, t0, ctx))
            responses[i] = None  # filled in below

        # settle dispatches in submission order, retrying transients
        settled: Dict[CacheKey, QueryResponse] = {}
        for dispatch in self._dispatch(misses):
            for miss, response in self._settle_dispatch(dispatch):
                i, query, key, qid, t0, ctx = miss
                self._query_timer.observe(response.wall_seconds)
                self._observe_latency(query, response)
                responses[i] = response
                settled[key] = response
                self._emit_end(qid, response, ctx)

        for i, key, qid, ctx in coalesced:
            primary = settled.get(key)
            assert primary is not None
            response = QueryResponse(
                query=queries[i],
                ok=primary.ok,
                cache="coalesced" if primary.ok else primary.cache,
                error=primary.error,
                fingerprint=primary.fingerprint,
                reached=primary.reached,
                iterations=primary.iterations,
                relaxations=primary.relaxations,
                max_dist=primary.max_dist,
                mean_dist=primary.mean_dist,
                wall_seconds=primary.wall_seconds,
                attempts=primary.attempts,
                trace_id=ctx.trace_id if ctx else None,
            )
            if not primary.ok:
                self._error_counter.inc()
            responses[i] = response
            self._emit_end(qid, response, ctx)

        return responses  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def _emit_retry(
        self, qid: int, attempt: int, error: str, delay: float
    ) -> None:
        if self._events.enabled:
            self._events.emit(
                {
                    "type": "query_retry",
                    "qid": qid,
                    "attempt": attempt,
                    "error": error,
                    "delay_seconds": round(delay, 4),
                }
            )

    def _settle_dispatch(
        self, dispatch: _Dispatch
    ) -> List[Tuple[_Miss, QueryResponse]]:
        """Wait for one dispatch; one ``(miss, response)`` per member."""
        if not dispatch.batched:
            miss = dispatch.members[0]
            _, query, key, qid, t0, ctx = miss
            return [
                (miss, self._settle(query, key, dispatch.future, qid, t0, ctx))
            ]
        return self._settle_batch(dispatch)

    def _settle_batch(
        self, dispatch: _Dispatch
    ) -> List[Tuple[_Miss, QueryResponse]]:
        """Wait for one coalesced batch task, retrying it whole.

        Mirrors :meth:`_settle` per member: every member result is
        validated before *any* of them can reach the cache (a single
        corrupt member condemns the attempt — results of one kernel
        pass stand or fall together), the breaker hears one
        corridor-level verdict per member query, and failures are
        never cached.
        """
        members = dispatch.members
        lead = members[0][1]
        lead_ctx = members[0][5]
        graph = self._graphs[lead.graph_id]
        future = dispatch.future
        attempt = 1
        while True:
            try:
                raw = future.result(timeout=self.pool.timeout)
                results, payload = self._unwrap(raw)
                if (
                    not isinstance(results, (list, tuple))
                    or len(results) != len(members)
                ):
                    raise CorruptResultError(
                        f"batch task returned {type(results).__name__}, "
                        f"expected {len(members)} results"
                    )
                for miss, result in zip(members, results):
                    validate_result(
                        result,
                        num_nodes=graph.num_nodes,
                        source=int(miss[1].source),
                    )
                self._absorb_payload(payload, lead)
                now = time.perf_counter()
                out: List[Tuple[_Miss, QueryResponse]] = []
                for miss, result in zip(members, results):
                    _, query, key, _, t0, ctx = miss
                    self.breakers.record_success(
                        query.graph_id, query.algorithm
                    )
                    response = QueryResponse(
                        query=query,
                        ok=True,
                        cache="miss",
                        fingerprint=key[0],
                        wall_seconds=now - t0,
                        attempts=attempt,
                        trace_id=ctx.trace_id if ctx else None,
                        **_summarise(result),  # type: ignore[arg-type]
                    )
                    self.cache.put(key, result)
                    out.append((miss, response))
                return out
            except Exception as exc:
                self.pool.abandon(future)
                if isinstance(exc, BrokenExecutor):
                    self.pool.recover()
                timed_out = isinstance(
                    exc, (PoolTimeoutError, TimeoutError, FutureTimeoutError)
                )
                message = (
                    f"timeout after {self.pool.timeout}s"
                    if timed_out
                    else f"{type(exc).__name__}: {exc}"
                )
                transient = classify_error(exc) == "transient"
                if transient and attempt < self.retry.max_attempts:
                    delay = self.retry.delay(attempt, members[0][2])
                    self.retry_attempts += 1
                    self._retry_counter.inc()
                    for miss in members:
                        self._emit_retry(miss[3], attempt, message, delay)
                    if delay > 0:
                        time.sleep(delay)
                    try:
                        future = self._submit_batch(
                            [m[1] for m in members], lead_ctx
                        )
                    except Exception as resubmit_exc:
                        message = (
                            f"{type(resubmit_exc).__name__}: {resubmit_exc}"
                        )
                        transient = False
                    else:
                        attempt += 1
                        continue
                now = time.perf_counter()
                failed: List[Tuple[_Miss, QueryResponse]] = []
                for miss in members:
                    _, query, _, _, t0, ctx = miss
                    self.breakers.record_failure(
                        query.graph_id, query.algorithm
                    )
                    self._error_counter.inc()
                    if transient:
                        self.retry_exhausted += 1
                        self._exhausted_counter.inc()
                    failed.append(
                        (
                            miss,
                            QueryResponse(
                                query=query,
                                ok=False,
                                error=message,
                                attempts=attempt,
                                wall_seconds=now - t0,
                                trace_id=ctx.trace_id if ctx else None,
                            ),
                        )
                    )
                return failed

    def _settle(
        self,
        query: SSSPQuery,
        key: CacheKey,
        future,
        qid: int,
        t0: float,
        ctx: Optional[TraceContext] = None,
    ) -> QueryResponse:
        """Wait for one in-flight query, retrying transient failures.

        Each attempt is bounded by the pool timeout.  A result must
        pass sanity validation before it is cached or returned — a
        corrupted result counts as a transient failure and is re-run.
        Errors are **never** cached; the breaker hears about the final
        verdict only (one corridor-level signal per query, not one per
        attempt).
        """
        graph = self._graphs[query.graph_id]
        attempt = 1
        while True:
            try:
                raw = future.result(timeout=self.pool.timeout)
                result, payload = self._unwrap(raw)
                validate_result(
                    result,
                    num_nodes=graph.num_nodes,
                    source=int(query.source),
                )
                self._absorb_payload(payload, query)
                self.breakers.record_success(query.graph_id, query.algorithm)
                response = QueryResponse(
                    query=query,
                    ok=True,
                    cache="miss",
                    fingerprint=key[0],
                    wall_seconds=time.perf_counter() - t0,
                    attempts=attempt,
                    trace_id=ctx.trace_id if ctx else None,
                    **_summarise(result),  # type: ignore[arg-type]
                )
                self.cache.put(key, result)
                return response
            except Exception as exc:
                self.pool.abandon(future)
                if isinstance(exc, BrokenExecutor):
                    self.pool.recover()
                timed_out = isinstance(
                    exc, (PoolTimeoutError, TimeoutError, FutureTimeoutError)
                )
                message = (
                    f"timeout after {self.pool.timeout}s"
                    if timed_out
                    else f"{type(exc).__name__}: {exc}"
                )
                transient = classify_error(exc) == "transient"
                if transient and attempt < self.retry.max_attempts:
                    delay = self.retry.delay(attempt, key)
                    self.retry_attempts += 1
                    self._retry_counter.inc()
                    self._emit_retry(qid, attempt, message, delay)
                    if delay > 0:
                        time.sleep(delay)
                    try:
                        future = self._submit_query(query, ctx)
                    except Exception as resubmit_exc:
                        message = (
                            f"{type(resubmit_exc).__name__}: {resubmit_exc}"
                        )
                        transient = False
                    else:
                        attempt += 1
                        continue
                self.breakers.record_failure(query.graph_id, query.algorithm)
                self._error_counter.inc()
                if transient:
                    self.retry_exhausted += 1
                    self._exhausted_counter.inc()
                return QueryResponse(
                    query=query,
                    ok=False,
                    error=message,
                    attempts=attempt,
                    wall_seconds=time.perf_counter() - t0,
                    trace_id=ctx.trace_id if ctx else None,
                )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Liveness + breaker states + retry totals (the ``health`` op)."""
        return {
            "pool": {
                "mode": self.pool.mode,
                "max_workers": self.pool.max_workers,
                "pending": self.pool.pending,
                "alive": self.pool.alive,
                "lost_workers": self.pool.lost_workers,
                "rebuilds": self.pool.rebuilds,
            },
            "breakers": self.breakers.snapshot(),
            "breakers_open": self.breakers.open_count(),
            "retries": {
                "attempts": self.retry_attempts,
                "exhausted": self.retry_exhausted,
                "max_attempts": self.retry.max_attempts,
            },
        }

    def stats(self) -> dict:
        """Engine-level counters, JSON-ready (the ``stats`` op)."""
        return {
            "graphs": self.pool.graph_ids,
            "queries": self._qid,
            "max_batch": self.max_batch,
            "backend": self.backend,
            "telemetry": self._telemetry,
            "cache": self.cache.stats(),
            "pool": {
                "mode": self.pool.mode,
                "max_workers": self.pool.max_workers,
                "pending": self.pool.pending,
            },
            "retries": {
                "attempts": self.retry_attempts,
                "exhausted": self.retry_exhausted,
            },
        }

    def metrics_snapshot(self) -> dict:
        """The serving registry's full snapshot (the ``metrics`` op).

        Empty when the engine was built under a null context — the
        ``metrics`` protocol op then reports ``{}`` rather than erroring,
        so a client can probe whether telemetry is on.
        """
        return self._registry.snapshot()
