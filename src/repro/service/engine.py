"""The SSSP query engine: cache, dedup, pool, observability.

:class:`QueryEngine` turns a :class:`~repro.service.catalog.GraphCatalog`
into something that answers :class:`SSSPQuery` requests:

1. **cache** — repeats are served from a bounded LRU
   (:mod:`repro.service.cache`) keyed on ``(graph fingerprint, source,
   algorithm, canonical params)``; the fingerprint in the key makes a
   stale hit against changed graph data impossible.
2. **dedup** — identical queries submitted in one batch collapse onto
   a single execution; the duplicates report ``cache="coalesced"``.
3. **pool** — misses run on an :class:`~repro.service.pool.ExecutorPool`
   (threads by default, processes for CPU-bound fan-out) with the
   graphs shared per-worker, per-query timeouts and graceful
   shutdown.
4. **resilience** — transient failures (worker crashes, timeouts,
   broken process pools, corrupted results) are retried with
   exponential backoff and deterministic jitter
   (:class:`~repro.resilience.retry.RetryPolicy`); repeated failures
   on one ``(graph, algorithm)`` corridor open a circuit breaker
   (:class:`~repro.resilience.breaker.BreakerBoard`) that fails fast
   until a half-open probe succeeds.  Every pool result is sanity
   validated before it can reach the cache or a client — a failed (or
   corrupt) attempt is **never cached**.

Every query emits ``query_start`` / ``query_end`` events (plus
``query_retry`` per retry) and updates ``service.*`` metrics through
the observability context active when the engine was built, so a
serve session's hit rate, queue depth, retry totals and latency
distribution are one ``snapshot()`` away; :meth:`QueryEngine.health`
bundles pool liveness, breaker states and retry counters for the
``health`` protocol op.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro import obs
from repro.resilience.breaker import BreakerBoard, BreakerConfig
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import (
    RetryPolicy,
    classify_error,
    validate_result,
)
from repro.service.cache import LRUCache
from repro.service.catalog import GraphCatalog
from repro.service.pool import ExecutorPool, PoolTimeoutError
from repro.service.runners import run_algorithm, validate_params
from repro.sssp.result import SSSPResult

__all__ = ["SSSPQuery", "QueryResponse", "QueryEngine"]


@dataclass(frozen=True)
class SSSPQuery:
    """One shortest-path request against a catalogued graph."""

    graph_id: str
    source: int
    algorithm: str = "adaptive"
    params: Mapping = field(default_factory=dict)
    request_id: Optional[str] = None

    def canonical_params(self) -> str:
        """Params as sorted JSON — the cache-key component."""
        return json.dumps(dict(self.params), sort_keys=True, default=float)


@dataclass
class QueryResponse:
    """What the engine answers; :meth:`as_dict` is the wire format."""

    query: SSSPQuery
    ok: bool
    cache: str = "miss"  # "miss" | "hit" | "coalesced"
    error: Optional[str] = None
    fingerprint: Optional[str] = None
    reached: int = 0
    iterations: int = 0
    relaxations: int = 0
    max_dist: Optional[float] = None
    mean_dist: Optional[float] = None
    wall_seconds: float = 0.0
    attempts: int = 1

    def as_dict(self) -> dict:
        out: dict = {"ok": self.ok}
        if self.query.request_id is not None:
            out["id"] = self.query.request_id
        out.update(
            graph=self.query.graph_id,
            source=self.query.source,
            algorithm=self.query.algorithm,
        )
        if not self.ok:
            out["error"] = self.error
            if self.attempts > 1:
                out["attempts"] = self.attempts
            return out
        out.update(
            fingerprint=self.fingerprint,
            cache=self.cache,
            reached=self.reached,
            iterations=self.iterations,
            relaxations=self.relaxations,
            max_dist=self.max_dist,
            mean_dist=self.mean_dist,
            wall_seconds=round(self.wall_seconds, 6),
        )
        if self.attempts > 1:
            out["attempts"] = self.attempts
        return out


def _summarise(result: SSSPResult) -> dict:
    finite = result.finite_distances()
    return {
        "reached": result.num_reached,
        "iterations": result.iterations,
        "relaxations": result.relaxations,
        "max_dist": float(finite.max()) if finite.size else None,
        "mean_dist": float(finite.mean()) if finite.size else None,
    }


CacheKey = Tuple[str, int, str, str]


class QueryEngine:
    """Serve SSSP queries against a catalog, with caching and a pool.

    Parameters
    ----------
    catalog:
        The graphs to serve.  Loaded eagerly at construction — the
        pool needs concrete arrays to hand its workers.
    mode, max_workers, timeout:
        Pool configuration (see :class:`~repro.service.pool.ExecutorPool`).
    cache_size:
        LRU capacity in results (0 disables caching).
    retry:
        Retry policy for transient failures (default:
        :class:`~repro.resilience.retry.RetryPolicy` with 3 attempts;
        ``RetryPolicy(max_attempts=1)`` disables retrying).
    breaker:
        Circuit-breaker config per ``(graph, algorithm)`` (default:
        open after 5 consecutive failures, half-open after 30 s;
        ``BreakerConfig(failure_threshold=0)`` disables tripping).
    fault_plan:
        Optional deterministic sabotage for chaos drills, passed to
        the pool (see :class:`~repro.resilience.faults.FaultPlan`).
    """

    def __init__(
        self,
        catalog: GraphCatalog,
        *,
        mode: str = "thread",
        max_workers: Optional[int] = None,
        timeout: Optional[float] = None,
        cache_size: int = 128,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        self.catalog = catalog
        self._graphs = catalog.load_all()
        self.pool = ExecutorPool(
            self._graphs,
            mode=mode,
            max_workers=max_workers,
            timeout=timeout,
            fault_plan=fault_plan,
        )
        self.cache = LRUCache(cache_size)
        self.retry = retry or RetryPolicy()
        self.breakers = BreakerBoard(breaker)
        self._qid = 0
        self.retry_attempts = 0  # extra attempts beyond the first, total
        self.retry_exhausted = 0  # queries that failed after all attempts
        registry = obs.get_registry()
        self._events = obs.get_events()
        self._query_counter = registry.counter("service.queries")
        self._error_counter = registry.counter("service.errors")
        self._query_timer = registry.timer("service.query_seconds")
        self._retry_counter = registry.counter("service.retries")
        self._exhausted_counter = registry.counter("service.retry_exhausted")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, *, cancel_pending: bool = False) -> None:
        self.pool.close(cancel_pending=cancel_pending)

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def _cache_key(self, query: SSSPQuery) -> CacheKey:
        fingerprint = self._graphs[query.graph_id].fingerprint()
        return (
            fingerprint,
            int(query.source),
            query.algorithm,
            query.canonical_params(),
        )

    def _next_qid(self) -> int:
        self._qid += 1
        return self._qid

    def _emit_start(self, qid: int, query: SSSPQuery) -> None:
        if self._events.enabled:
            self._events.emit(
                {
                    "type": "query_start",
                    "qid": qid,
                    "graph": query.graph_id,
                    "source": int(query.source),
                    "algorithm": query.algorithm,
                    "queue_depth": self.pool.pending,
                }
            )

    def _emit_end(self, qid: int, response: QueryResponse) -> None:
        if self._events.enabled:
            self._events.emit(
                {
                    "type": "query_end",
                    "qid": qid,
                    "ok": response.ok,
                    "cache": response.cache if response.ok else None,
                    "error": response.error,
                    "reached": response.reached,
                    "iterations": response.iterations,
                    "wall_seconds": round(response.wall_seconds, 6),
                }
            )

    def _validate(self, query: SSSPQuery) -> Optional[str]:
        """A human-readable rejection reason, or None if runnable."""
        if query.graph_id not in self._graphs:
            return (
                f"unknown graph {query.graph_id!r} "
                f"(have {self.pool.graph_ids or 'none'})"
            )
        try:
            validate_params(query.algorithm, query.params)
        except ValueError as exc:
            return str(exc)
        graph = self._graphs[query.graph_id]
        if not 0 <= int(query.source) < graph.num_nodes:
            return (
                f"source {query.source} out of range for "
                f"{graph.num_nodes}-node graph {query.graph_id!r}"
            )
        return None

    def run(self, query: SSSPQuery) -> QueryResponse:
        """Answer one query (cache -> pool), never raising for bad input."""
        return self.run_many([query])[0]

    def _submit_query(self, query: SSSPQuery):
        """Submit to the pool, absorbing one asynchronous break.

        A process worker can die (``poolbreak``, OOM kill, ...) while
        *other* tasks are being submitted or retried, leaving the
        executor broken before this submission ever ran — recover and
        submit again rather than blaming this query for it.
        """
        try:
            return self.pool.submit(
                query.graph_id,
                run_algorithm,
                int(query.source),
                query.algorithm,
                dict(query.params),
            )
        except BrokenExecutor:
            self.pool.recover()
            return self.pool.submit(
                query.graph_id,
                run_algorithm,
                int(query.source),
                query.algorithm,
                dict(query.params),
            )

    def run_many(self, queries: List[SSSPQuery]) -> List[QueryResponse]:
        """Answer a batch, deduplicating identical in-flight queries.

        Responses come back in request order.  Distinct queries run
        concurrently on the pool; identical ones (same graph content,
        source, algorithm and params) execute once and fan the result
        back out with ``cache="coalesced"``.
        """
        responses: List[Optional[QueryResponse]] = [None] * len(queries)
        in_flight: Dict[CacheKey, Tuple[object, int, float]] = {}
        coalesced: List[Tuple[int, CacheKey, int]] = []

        for i, query in enumerate(queries):
            qid = self._next_qid()
            self._query_counter.inc()
            self._emit_start(qid, query)
            reason = self._validate(query)
            if reason is not None:
                self._error_counter.inc()
                responses[i] = QueryResponse(query=query, ok=False, error=reason)
                self._emit_end(qid, responses[i])
                continue
            key = self._cache_key(query)
            t0 = time.perf_counter()
            cached = self.cache.get(key)
            if cached is not None:
                response = QueryResponse(
                    query=query,
                    ok=True,
                    cache="hit",
                    fingerprint=key[0],
                    wall_seconds=time.perf_counter() - t0,
                    **_summarise(cached),  # type: ignore[arg-type]
                )
                self._query_timer.observe(response.wall_seconds)
                responses[i] = response
                self._emit_end(qid, response)
                continue
            if key in in_flight:
                coalesced.append((i, key, qid))
                continue
            if not self.breakers.allow(query.graph_id, query.algorithm):
                self._error_counter.inc()
                state = self.breakers.get(
                    query.graph_id, query.algorithm
                ).snapshot()
                responses[i] = QueryResponse(
                    query=query,
                    ok=False,
                    error=(
                        f"circuit breaker {state['state']} for "
                        f"({query.graph_id!r}, {query.algorithm!r}) after "
                        f"{state['consecutive_failures']} consecutive failures"
                    ),
                )
                self._emit_end(qid, responses[i])
                continue
            future = self._submit_query(query)
            in_flight[key] = (future, qid, t0)
            responses[i] = None  # filled in below

        # collect misses in submission order, retrying transients per key
        settled: Dict[CacheKey, QueryResponse] = {}
        for i, query in enumerate(queries):
            if responses[i] is not None:
                continue
            key = self._cache_key(query)
            if key in settled:
                continue  # a coalesced duplicate; resolved after this loop
            entry = in_flight.get(key)
            if entry is None:
                continue
            future, qid, t0 = entry
            response = self._settle(query, key, future, qid, t0)
            self._query_timer.observe(response.wall_seconds)
            responses[i] = response
            settled[key] = response
            self._emit_end(qid, response)

        for i, key, qid in coalesced:
            primary = settled.get(key)
            assert primary is not None
            response = QueryResponse(
                query=queries[i],
                ok=primary.ok,
                cache="coalesced" if primary.ok else primary.cache,
                error=primary.error,
                fingerprint=primary.fingerprint,
                reached=primary.reached,
                iterations=primary.iterations,
                relaxations=primary.relaxations,
                max_dist=primary.max_dist,
                mean_dist=primary.mean_dist,
                wall_seconds=primary.wall_seconds,
                attempts=primary.attempts,
            )
            if not primary.ok:
                self._error_counter.inc()
            responses[i] = response
            self._emit_end(qid, response)

        return responses  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def _emit_retry(
        self, qid: int, attempt: int, error: str, delay: float
    ) -> None:
        if self._events.enabled:
            self._events.emit(
                {
                    "type": "query_retry",
                    "qid": qid,
                    "attempt": attempt,
                    "error": error,
                    "delay_seconds": round(delay, 4),
                }
            )

    def _settle(
        self,
        query: SSSPQuery,
        key: CacheKey,
        future,
        qid: int,
        t0: float,
    ) -> QueryResponse:
        """Wait for one in-flight query, retrying transient failures.

        Each attempt is bounded by the pool timeout.  A result must
        pass sanity validation before it is cached or returned — a
        corrupted result counts as a transient failure and is re-run.
        Errors are **never** cached; the breaker hears about the final
        verdict only (one corridor-level signal per query, not one per
        attempt).
        """
        graph = self._graphs[query.graph_id]
        attempt = 1
        while True:
            try:
                result = future.result(timeout=self.pool.timeout)
                validate_result(
                    result,
                    num_nodes=graph.num_nodes,
                    source=int(query.source),
                )
                self.breakers.record_success(query.graph_id, query.algorithm)
                response = QueryResponse(
                    query=query,
                    ok=True,
                    cache="miss",
                    fingerprint=key[0],
                    wall_seconds=time.perf_counter() - t0,
                    attempts=attempt,
                    **_summarise(result),  # type: ignore[arg-type]
                )
                self.cache.put(key, result)
                return response
            except Exception as exc:
                self.pool.abandon(future)
                if isinstance(exc, BrokenExecutor):
                    self.pool.recover()
                timed_out = isinstance(
                    exc, (PoolTimeoutError, TimeoutError, FutureTimeoutError)
                )
                message = (
                    f"timeout after {self.pool.timeout}s"
                    if timed_out
                    else f"{type(exc).__name__}: {exc}"
                )
                transient = classify_error(exc) == "transient"
                if transient and attempt < self.retry.max_attempts:
                    delay = self.retry.delay(attempt, key)
                    self.retry_attempts += 1
                    self._retry_counter.inc()
                    self._emit_retry(qid, attempt, message, delay)
                    if delay > 0:
                        time.sleep(delay)
                    try:
                        future = self._submit_query(query)
                    except Exception as resubmit_exc:
                        message = (
                            f"{type(resubmit_exc).__name__}: {resubmit_exc}"
                        )
                        transient = False
                    else:
                        attempt += 1
                        continue
                self.breakers.record_failure(query.graph_id, query.algorithm)
                self._error_counter.inc()
                if transient:
                    self.retry_exhausted += 1
                    self._exhausted_counter.inc()
                return QueryResponse(
                    query=query,
                    ok=False,
                    error=message,
                    attempts=attempt,
                    wall_seconds=time.perf_counter() - t0,
                )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Liveness + breaker states + retry totals (the ``health`` op)."""
        return {
            "pool": {
                "mode": self.pool.mode,
                "max_workers": self.pool.max_workers,
                "pending": self.pool.pending,
                "alive": self.pool.alive,
                "lost_workers": self.pool.lost_workers,
                "rebuilds": self.pool.rebuilds,
            },
            "breakers": self.breakers.snapshot(),
            "breakers_open": self.breakers.open_count(),
            "retries": {
                "attempts": self.retry_attempts,
                "exhausted": self.retry_exhausted,
                "max_attempts": self.retry.max_attempts,
            },
        }

    def stats(self) -> dict:
        """Engine-level counters, JSON-ready (the ``stats`` op)."""
        return {
            "graphs": self.pool.graph_ids,
            "queries": self._qid,
            "cache": self.cache.stats(),
            "pool": {
                "mode": self.pool.mode,
                "max_workers": self.pool.max_workers,
                "pending": self.pool.pending,
            },
            "retries": {
                "attempts": self.retry_attempts,
                "exhausted": self.retry_exhausted,
            },
        }
