"""The serve wire protocol: JSONL requests in, JSONL responses out.

One JSON object per line.  Four operations (``op`` defaults to
``"query"`` so the common case is terse):

* ``{"op": "query", "graph": "cal", "source": 0, "algorithm":
  "nearfar", "params": {"delta": 0.5}, "id": "q1"}`` — run (or serve
  from cache) one SSSP query.  ``id`` is echoed back untouched;
  ``algorithm`` defaults to ``"adaptive"``; ``params`` defaults to
  ``{}`` (at most :data:`MAX_PARAM_KEYS` keys — a param object large
  enough to trip that bound is garbage, not a query).
* ``{"op": "stats"}`` — engine counters: queries served, cache
  hits/misses/evictions, pool occupancy, retry totals.
* ``{"op": "graphs"}`` — the catalog: id, name, sizes, fingerprint.
* ``{"op": "health"}`` — the resilience picture: pool liveness (mode,
  workers, pending, ``alive``, ``lost_workers``, ``rebuilds``),
  per-(graph, algorithm) circuit-breaker states, and retry totals.

Every input line produces exactly one output line with an ``"ok"``
key; malformed lines (bad JSON, missing fields, unknown graph or
algorithm) produce ``{"ok": false, "error": ...}`` and the stream
keeps going — a service must not die because one client sent garbage.
The same holds for *engine* crashes: an unexpected exception while
answering one line is caught by :func:`serve_stream` and answered as
an error line, because one bad query must not end the session.
Responses are flushed per line so ``tail -f`` (or a piped consumer)
sees them live.

Version history: v1 — query/stats/graphs; v2 — ``health`` op,
``attempts`` on retried responses, param-size bound.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Optional

from repro.service.engine import QueryEngine, SSSPQuery

__all__ = [
    "MAX_PARAM_KEYS",
    "PROTOCOL_VERSION",
    "parse_query",
    "handle_line",
    "serve_stream",
]

PROTOCOL_VERSION = 2

# params is a flat knob dict (delta, setpoint, k, ...); dozens of keys
# means a malformed or hostile request, and the engine would only
# reject them one ValueError at a time further in
MAX_PARAM_KEYS = 16


class ProtocolError(ValueError):
    """A request line that cannot be turned into an operation."""


def parse_query(request: dict) -> SSSPQuery:
    """Build an :class:`SSSPQuery` from a decoded ``query`` request."""
    if "graph" not in request:
        raise ProtocolError("query is missing 'graph'")
    if "source" not in request:
        raise ProtocolError("query is missing 'source'")
    try:
        source = int(request["source"])
    except (TypeError, ValueError):
        raise ProtocolError(f"source must be an integer, got {request['source']!r}")
    params = request.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(f"params must be an object, got {type(params).__name__}")
    if len(params) > MAX_PARAM_KEYS:
        raise ProtocolError(
            f"params has {len(params)} keys (max {MAX_PARAM_KEYS})"
        )
    request_id = request.get("id")
    return SSSPQuery(
        graph_id=str(request["graph"]),
        source=source,
        algorithm=str(request.get("algorithm", "adaptive")),
        params=params,
        request_id=None if request_id is None else str(request_id),
    )


def handle_line(engine: QueryEngine, line: str) -> Optional[dict]:
    """One request line -> one response dict (None for blank lines)."""
    line = line.strip()
    if not line:
        return None
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        return {"ok": False, "error": f"invalid JSON: {exc}"}
    if not isinstance(request, dict):
        return {"ok": False, "error": "request must be a JSON object"}

    op = request.get("op", "query")
    if op == "query":
        try:
            query = parse_query(request)
        except ProtocolError as exc:
            response = {"ok": False, "error": str(exc)}
            if request.get("id") is not None:
                response["id"] = str(request["id"])
            return response
        return engine.run(query).as_dict()
    if op == "stats":
        return {"ok": True, "op": "stats", "v": PROTOCOL_VERSION, **engine.stats()}
    if op == "graphs":
        return {"ok": True, "op": "graphs", "graphs": engine.catalog.describe()}
    if op == "health":
        return {"ok": True, "op": "health", "v": PROTOCOL_VERSION, **engine.health()}
    return {
        "ok": False,
        "error": f"unknown op {op!r} (have query, stats, graphs, health)",
    }


def serve_stream(
    engine: QueryEngine, lines: Iterable[str], out: IO[str]
) -> int:
    """Drive the engine from a line stream; returns responses written.

    This is the whole serve loop: the CLI hands it ``sys.stdin`` (or a
    file) and ``sys.stdout``; tests hand it lists and ``StringIO``.

    Exceptions escaping the engine for one line — a bug, a resource
    blip, anything :func:`handle_line` did not already turn into an
    error response — are answered as ``{"ok": false, "error": ...}``
    so a single poisoned request cannot end the session.
    """
    written = 0
    for line in lines:
        try:
            response = handle_line(engine, line)
        except Exception as exc:  # one bad query must not kill the loop
            response = {
                "ok": False,
                "error": f"internal error: {type(exc).__name__}: {exc}",
            }
        if response is None:
            continue
        out.write(json.dumps(response) + "\n")
        out.flush()
        written += 1
    return written
