"""The serve wire protocol: JSONL requests in, JSONL responses out.

One JSON object per line.  Three operations (``op`` defaults to
``"query"`` so the common case is terse):

* ``{"op": "query", "graph": "cal", "source": 0, "algorithm":
  "nearfar", "params": {"delta": 0.5}, "id": "q1"}`` — run (or serve
  from cache) one SSSP query.  ``id`` is echoed back untouched;
  ``algorithm`` defaults to ``"adaptive"``; ``params`` defaults to
  ``{}``.
* ``{"op": "stats"}`` — engine counters: queries served, cache
  hits/misses/evictions, pool occupancy.
* ``{"op": "graphs"}`` — the catalog: id, name, sizes, fingerprint.

Every input line produces exactly one output line with an ``"ok"``
key; malformed lines (bad JSON, missing fields, unknown graph or
algorithm) produce ``{"ok": false, "error": ...}`` and the stream
keeps going — a service must not die because one client sent garbage.
Responses are flushed per line so ``tail -f`` (or a piped consumer)
sees them live.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Optional

from repro.service.engine import QueryEngine, SSSPQuery

__all__ = ["PROTOCOL_VERSION", "parse_query", "handle_line", "serve_stream"]

PROTOCOL_VERSION = 1


class ProtocolError(ValueError):
    """A request line that cannot be turned into an operation."""


def parse_query(request: dict) -> SSSPQuery:
    """Build an :class:`SSSPQuery` from a decoded ``query`` request."""
    if "graph" not in request:
        raise ProtocolError("query is missing 'graph'")
    if "source" not in request:
        raise ProtocolError("query is missing 'source'")
    try:
        source = int(request["source"])
    except (TypeError, ValueError):
        raise ProtocolError(f"source must be an integer, got {request['source']!r}")
    params = request.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(f"params must be an object, got {type(params).__name__}")
    request_id = request.get("id")
    return SSSPQuery(
        graph_id=str(request["graph"]),
        source=source,
        algorithm=str(request.get("algorithm", "adaptive")),
        params=params,
        request_id=None if request_id is None else str(request_id),
    )


def handle_line(engine: QueryEngine, line: str) -> Optional[dict]:
    """One request line -> one response dict (None for blank lines)."""
    line = line.strip()
    if not line:
        return None
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        return {"ok": False, "error": f"invalid JSON: {exc}"}
    if not isinstance(request, dict):
        return {"ok": False, "error": "request must be a JSON object"}

    op = request.get("op", "query")
    if op == "query":
        try:
            query = parse_query(request)
        except ProtocolError as exc:
            response = {"ok": False, "error": str(exc)}
            if request.get("id") is not None:
                response["id"] = str(request["id"])
            return response
        return engine.run(query).as_dict()
    if op == "stats":
        return {"ok": True, "op": "stats", "v": PROTOCOL_VERSION, **engine.stats()}
    if op == "graphs":
        return {"ok": True, "op": "graphs", "graphs": engine.catalog.describe()}
    return {"ok": False, "error": f"unknown op {op!r} (have query, stats, graphs)"}


def serve_stream(
    engine: QueryEngine, lines: Iterable[str], out: IO[str]
) -> int:
    """Drive the engine from a line stream; returns responses written.

    This is the whole serve loop: the CLI hands it ``sys.stdin`` (or a
    file) and ``sys.stdout``; tests hand it lists and ``StringIO``.
    """
    written = 0
    for line in lines:
        response = handle_line(engine, line)
        if response is None:
            continue
        out.write(json.dumps(response) + "\n")
        out.flush()
        written += 1
    return written
