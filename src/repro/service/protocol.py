"""The serve wire protocol: JSONL requests in, JSONL responses out.

One JSON object per line.  Four operations (``op`` defaults to
``"query"`` so the common case is terse):

* ``{"op": "query", "graph": "cal", "source": 0, "algorithm":
  "nearfar", "params": {"delta": 0.5}, "id": "q1"}`` — run (or serve
  from cache) one SSSP query.  ``id`` is echoed back untouched;
  ``algorithm`` defaults to ``"adaptive"``; ``params`` defaults to
  ``{}`` (at most :data:`MAX_PARAM_KEYS` keys — a param object large
  enough to trip that bound is garbage, not a query).  A request may
  carry ``"sources": [0, 5, 9]`` *instead of* ``"source"`` (at most
  :data:`MAX_BATCH_SOURCES`): the queries run as one engine batch —
  same-corridor misses become one batched kernel dispatch — and the
  single response line answers
  ``{"ok": <all ok>, "count": N, "results": [<per-source response>,
  ...]}`` in source order.
* ``{"op": "stats"}`` — engine counters: queries served, cache
  hits/misses/evictions, pool occupancy, retry totals.
* ``{"op": "graphs"}`` — the catalog: id, name, sizes, fingerprint.
* ``{"op": "health"}`` — the resilience picture: pool liveness (mode,
  workers, pending, ``alive``, ``lost_workers``, ``rebuilds``),
  per-(graph, algorithm) circuit-breaker states, and retry totals.
* ``{"op": "metrics"}`` — the serving registry's metric snapshot
  (labelled ``service.query.*`` histograms with p50/p95/p99, cache and
  breaker counters, merged worker-side kernel metrics).  With
  ``"format": "prometheus"`` the snapshot is rendered as Prometheus
  text exposition in the response's ``"text"`` field (see
  :mod:`repro.obs.exposition`).  ``{}`` when the engine was built
  without observability.

The protocol layer is also where a request's **trace** begins: when
the engine has telemetry, each query line mints a root
:class:`~repro.obs.telemetry.TraceContext` (one per line — a
``sources`` batch shares its line's trace), threads it through the
queries, stamps the response with ``"trace"``, and emits the
``protocol`` span closing the request.  An optional
:class:`~repro.obs.telemetry.TraceSampler` decides, per line, whether
that trace ships spans and events (metric deltas always count).

Every input line produces exactly one output line with an ``"ok"``
key; malformed lines (bad JSON, missing fields, unknown graph or
algorithm) produce ``{"ok": false, "error": ...}`` and the stream
keeps going — a service must not die because one client sent garbage.
The same holds for *engine* crashes: an unexpected exception while
answering one line is caught by :func:`serve_stream` and answered as
an error line, because one bad query must not end the session.
Responses are flushed per line so ``tail -f`` (or a piped consumer)
sees them live.

Version history: v1 — query/stats/graphs; v2 — ``health`` op,
``attempts`` on retried responses, param-size bound; v3 — ``sources``
lists on query requests (batched dispatch, one ``results`` line);
v4 — ``metrics`` op, ``trace`` ids on query responses.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from typing import IO, Iterable, Optional

from repro.obs.exposition import format_prometheus
from repro.obs.telemetry import TraceContext, TraceSampler, emit_span
from repro.service.engine import QueryEngine, SSSPQuery

__all__ = [
    "MAX_BATCH_SOURCES",
    "MAX_PARAM_KEYS",
    "PROTOCOL_VERSION",
    "parse_query",
    "parse_batch_query",
    "handle_line",
    "serve_stream",
]

PROTOCOL_VERSION = 4

# params is a flat knob dict (delta, setpoint, k, ...); dozens of keys
# means a malformed or hostile request, and the engine would only
# reject them one ValueError at a time further in
MAX_PARAM_KEYS = 16

# one request line fanning out to thousands of kernel runs is a typo
# or an attack, not a batch; big sweeps belong in `repro experiment`
MAX_BATCH_SOURCES = 256


class ProtocolError(ValueError):
    """A request line that cannot be turned into an operation."""


def _common_query_fields(request: dict) -> tuple:
    """Validate the graph/params/id fields shared by both query shapes."""
    if "graph" not in request:
        raise ProtocolError("query is missing 'graph'")
    params = request.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(f"params must be an object, got {type(params).__name__}")
    if len(params) > MAX_PARAM_KEYS:
        raise ProtocolError(
            f"params has {len(params)} keys (max {MAX_PARAM_KEYS})"
        )
    request_id = request.get("id")
    return (
        str(request["graph"]),
        str(request.get("algorithm", "adaptive")),
        params,
        None if request_id is None else str(request_id),
    )


def parse_query(request: dict) -> SSSPQuery:
    """Build an :class:`SSSPQuery` from a decoded ``query`` request."""
    graph_id, algorithm, params, request_id = _common_query_fields(request)
    if "source" not in request:
        raise ProtocolError("query is missing 'source'")
    try:
        source = int(request["source"])
    except (TypeError, ValueError):
        raise ProtocolError(f"source must be an integer, got {request['source']!r}")
    return SSSPQuery(
        graph_id=graph_id,
        source=source,
        algorithm=algorithm,
        params=params,
        request_id=request_id,
    )


def parse_batch_query(request: dict) -> list:
    """Build one :class:`SSSPQuery` per entry of a ``sources`` list."""
    graph_id, algorithm, params, request_id = _common_query_fields(request)
    if "source" in request:
        raise ProtocolError("pass either 'source' or 'sources', not both")
    sources = request["sources"]
    if not isinstance(sources, list) or not sources:
        raise ProtocolError("sources must be a non-empty array of integers")
    if len(sources) > MAX_BATCH_SOURCES:
        raise ProtocolError(
            f"sources has {len(sources)} entries (max {MAX_BATCH_SOURCES})"
        )
    queries = []
    for raw in sources:
        if isinstance(raw, bool) or not isinstance(raw, int):
            raise ProtocolError(
                f"sources must be an array of integers, got {raw!r}"
            )
        queries.append(
            SSSPQuery(
                graph_id=graph_id,
                source=raw,
                algorithm=algorithm,
                params=params,
                request_id=request_id,
            )
        )
    return queries


def _mint_root(
    engine: QueryEngine, sampler: Optional[TraceSampler]
) -> Optional[TraceContext]:
    """The root trace context for one query line, or None.

    Minted only when the engine has telemetry (a null-context engine
    stays envelope-free end to end).  The sampler — when given —
    decides here, once, whether this trace ships spans and events.
    """
    if not engine.telemetry:
        return None
    sampled = sampler.sample() if sampler is not None else True
    return TraceContext.mint(sampled=sampled)


def handle_line(
    engine: QueryEngine,
    line: str,
    sampler: Optional[TraceSampler] = None,
) -> Optional[dict]:
    """One request line -> one response dict (None for blank lines)."""
    line = line.strip()
    if not line:
        return None
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        return {"ok": False, "error": f"invalid JSON: {exc}"}
    if not isinstance(request, dict):
        return {"ok": False, "error": "request must be a JSON object"}

    op = request.get("op", "query")
    if op == "query":
        ctx = _mint_root(engine, sampler)
        t0 = time.perf_counter()
        try:
            if "sources" in request:
                queries = parse_batch_query(request)
            else:
                query = parse_query(request)
                if ctx is not None:
                    query = replace(query, trace=ctx)
                out = engine.run(query).as_dict()
                emit_span(
                    engine.events, ctx, "protocol",
                    time.perf_counter() - t0, op="query",
                )
                return out
        except ProtocolError as exc:
            response = {"ok": False, "error": str(exc)}
            if request.get("id") is not None:
                response["id"] = str(request["id"])
            return response
        if ctx is not None:
            queries = [replace(q, trace=ctx) for q in queries]
        responses = engine.run_many(queries)
        out = {
            "ok": all(r.ok for r in responses),
            "count": len(responses),
            "results": [r.as_dict() for r in responses],
        }
        if ctx is not None:
            out["trace"] = ctx.trace_id
        if request.get("id") is not None:
            out["id"] = str(request["id"])
        emit_span(
            engine.events, ctx, "protocol",
            time.perf_counter() - t0, op="query", batch=len(responses),
        )
        return out
    if op == "stats":
        return {"ok": True, "op": "stats", "v": PROTOCOL_VERSION, **engine.stats()}
    if op == "graphs":
        return {"ok": True, "op": "graphs", "graphs": engine.catalog.describe()}
    if op == "health":
        return {"ok": True, "op": "health", "v": PROTOCOL_VERSION, **engine.health()}
    if op == "metrics":
        snapshot = engine.metrics_snapshot()
        out = {"ok": True, "op": "metrics", "v": PROTOCOL_VERSION}
        if request.get("format") == "prometheus":
            out["format"] = "prometheus"
            out["text"] = format_prometheus(snapshot)
        else:
            out["metrics"] = snapshot
        return out
    return {
        "ok": False,
        "error": (
            f"unknown op {op!r} "
            "(have query, stats, graphs, health, metrics)"
        ),
    }


def serve_stream(
    engine: QueryEngine,
    lines: Iterable[str],
    out: IO[str],
    *,
    sampler: Optional[TraceSampler] = None,
) -> int:
    """Drive the engine from a line stream; returns responses written.

    This is the whole serve loop: the CLI hands it ``sys.stdin`` (or a
    file) and ``sys.stdout``; tests hand it lists and ``StringIO``.
    ``sampler`` (optional) head-samples traces per request line.

    Exceptions escaping the engine for one line — a bug, a resource
    blip, anything :func:`handle_line` did not already turn into an
    error response — are answered as ``{"ok": false, "error": ...}``
    so a single poisoned request cannot end the session.
    """
    written = 0
    for line in lines:
        try:
            response = handle_line(engine, line, sampler)
        except Exception as exc:  # one bad query must not kill the loop
            response = {
                "ok": False,
                "error": f"internal error: {type(exc).__name__}: {exc}",
            }
        if response is None:
            continue
        out.write(json.dumps(response) + "\n")
        out.flush()
        written += 1
    return written
