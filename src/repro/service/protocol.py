"""The serve wire protocol: JSONL requests in, JSONL responses out.

One JSON object per line.  Four operations (``op`` defaults to
``"query"`` so the common case is terse):

* ``{"op": "query", "graph": "cal", "source": 0, "algorithm":
  "nearfar", "params": {"delta": 0.5}, "id": "q1"}`` — run (or serve
  from cache) one SSSP query.  ``id`` is echoed back untouched;
  ``algorithm`` defaults to ``"adaptive"``; ``params`` defaults to
  ``{}`` (at most :data:`MAX_PARAM_KEYS` keys — a param object large
  enough to trip that bound is garbage, not a query).  A request may
  carry ``"sources": [0, 5, 9]`` *instead of* ``"source"`` (at most
  :data:`MAX_BATCH_SOURCES`): the queries run as one engine batch —
  same-corridor misses become one batched kernel dispatch — and the
  single response line answers
  ``{"ok": <all ok>, "count": N, "results": [<per-source response>,
  ...]}`` in source order.
* ``{"op": "stats"}`` — engine counters: queries served, cache
  hits/misses/evictions, pool occupancy, retry totals.
* ``{"op": "graphs"}`` — the catalog: id, name, sizes, fingerprint.
* ``{"op": "health"}`` — the resilience picture: pool liveness (mode,
  workers, pending, ``alive``, ``lost_workers``, ``rebuilds``),
  per-(graph, algorithm) circuit-breaker states, and retry totals.
* ``{"op": "metrics"}`` — the serving registry's metric snapshot
  (labelled ``service.query.*`` histograms with p50/p95/p99, cache and
  breaker counters, merged worker-side kernel metrics).  With
  ``"format": "prometheus"`` the snapshot is rendered as Prometheus
  text exposition in the response's ``"text"`` field (see
  :mod:`repro.obs.exposition`).  ``{}`` when the engine was built
  without observability.

The protocol layer is also where a request's **trace** begins: when
the engine has telemetry, each query line mints a root
:class:`~repro.obs.telemetry.TraceContext` (one per line — a
``sources`` batch shares its line's trace), threads it through the
queries, stamps the response with ``"trace"``, and emits the
``protocol`` span closing the request.  An optional
:class:`~repro.obs.telemetry.TraceSampler` decides, per line, whether
that trace ships spans and events (metric deltas always count).

Every input line produces exactly one output line with an ``"ok"``
key; malformed lines (bad JSON, missing fields, unknown graph or
algorithm) produce ``{"ok": false, "error": ...}`` and the stream
keeps going — a service must not die because one client sent garbage.
The same holds for *engine* crashes: an unexpected exception while
answering one line is caught by :func:`serve_stream` and answered as
an error line, because one bad query must not end the session.
Responses are flushed per line so ``tail -f`` (or a piped consumer)
sees them live.

Version history: v1 — query/stats/graphs; v2 — ``health`` op,
``attempts`` on retried responses, param-size bound; v3 — ``sources``
lists on query requests (batched dispatch, one ``results`` line);
v4 — ``metrics`` op, ``trace`` ids on query responses.

**Transports.**  The per-line dispatch lives in
:class:`ProtocolSession`, which is transport-agnostic: the stdin loop
(:func:`serve_stream`) and the socket server (:mod:`repro.net.server`)
drive the *same* session object, so a malformed line, an unknown op or
an engine crash produces byte-identical error envelopes whichever way
the request arrived.  A session splits handling into
:meth:`ProtocolSession.begin` (parse, validate, dispatch — never
blocks on query execution when the engine supports asynchronous
submission) and the returned :class:`PendingReply`, whose ``finish``
closure shapes the final response.  Synchronous callers use
:meth:`ProtocolSession.handle`, which runs both phases back to back;
an asyncio transport awaits ``PendingReply.future`` instead of
blocking the event loop.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from typing import IO, Callable, Iterable, List, Optional

from repro.obs.exposition import format_prometheus
from repro.obs.telemetry import TraceContext, TraceSampler, emit_span
from repro.service.engine import QueryEngine, QueryResponse, SSSPQuery

__all__ = [
    "MAX_BATCH_SOURCES",
    "MAX_PARAM_KEYS",
    "PROTOCOL_VERSION",
    "PendingReply",
    "ProtocolSession",
    "internal_error_response",
    "parse_query",
    "parse_batch_query",
    "handle_line",
    "serve_stream",
]

PROTOCOL_VERSION = 4

# params is a flat knob dict (delta, setpoint, k, ...); dozens of keys
# means a malformed or hostile request, and the engine would only
# reject them one ValueError at a time further in
MAX_PARAM_KEYS = 16

# one request line fanning out to thousands of kernel runs is a typo
# or an attack, not a batch; big sweeps belong in `repro experiment`
MAX_BATCH_SOURCES = 256


class ProtocolError(ValueError):
    """A request line that cannot be turned into an operation."""


def _common_query_fields(request: dict) -> tuple:
    """Validate the graph/params/id fields shared by both query shapes."""
    if "graph" not in request:
        raise ProtocolError("query is missing 'graph'")
    params = request.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(f"params must be an object, got {type(params).__name__}")
    if len(params) > MAX_PARAM_KEYS:
        raise ProtocolError(
            f"params has {len(params)} keys (max {MAX_PARAM_KEYS})"
        )
    request_id = request.get("id")
    return (
        str(request["graph"]),
        str(request.get("algorithm", "adaptive")),
        params,
        None if request_id is None else str(request_id),
    )


def parse_query(request: dict) -> SSSPQuery:
    """Build an :class:`SSSPQuery` from a decoded ``query`` request."""
    graph_id, algorithm, params, request_id = _common_query_fields(request)
    if "source" not in request:
        raise ProtocolError("query is missing 'source'")
    try:
        source = int(request["source"])
    except (TypeError, ValueError):
        raise ProtocolError(f"source must be an integer, got {request['source']!r}")
    return SSSPQuery(
        graph_id=graph_id,
        source=source,
        algorithm=algorithm,
        params=params,
        request_id=request_id,
    )


def parse_batch_query(request: dict) -> list:
    """Build one :class:`SSSPQuery` per entry of a ``sources`` list."""
    graph_id, algorithm, params, request_id = _common_query_fields(request)
    if "source" in request:
        raise ProtocolError("pass either 'source' or 'sources', not both")
    sources = request["sources"]
    if not isinstance(sources, list) or not sources:
        raise ProtocolError("sources must be a non-empty array of integers")
    if len(sources) > MAX_BATCH_SOURCES:
        raise ProtocolError(
            f"sources has {len(sources)} entries (max {MAX_BATCH_SOURCES})"
        )
    queries = []
    for raw in sources:
        if isinstance(raw, bool) or not isinstance(raw, int):
            raise ProtocolError(
                f"sources must be an array of integers, got {raw!r}"
            )
        queries.append(
            SSSPQuery(
                graph_id=graph_id,
                source=raw,
                algorithm=algorithm,
                params=params,
                request_id=request_id,
            )
        )
    return queries


def _mint_root(
    engine: QueryEngine, sampler: Optional[TraceSampler]
) -> Optional[TraceContext]:
    """The root trace context for one query line, or None.

    Minted only when the engine has telemetry (a null-context engine
    stays envelope-free end to end).  The sampler — when given —
    decides here, once, whether this trace ships spans and events.
    """
    if not engine.telemetry:
        return None
    sampled = sampler.sample() if sampler is not None else True
    return TraceContext.mint(sampled=sampled)


def internal_error_response(exc: Exception) -> dict:
    """The in-band envelope for an exception that escaped the engine.

    One definition, used by every transport, so the stdin loop and the
    socket server cannot drift apart on what an internal error looks
    like on the wire.
    """
    return {
        "ok": False,
        "error": f"internal error: {type(exc).__name__}: {exc}",
    }


class PendingReply:
    """One request's in-flight answer: ready now, or a future + shaper.

    ``response`` is set for everything that resolves synchronously
    (parse errors, ``stats``/``graphs``/``health``/``metrics`` ops,
    query execution on an engine without asynchronous submission).
    Otherwise ``future`` is a :class:`concurrent.futures.Future`
    resolving to the ``List[QueryResponse]`` and ``finish`` shapes that
    list into the final response dict (stamping the protocol span).
    """

    __slots__ = ("response", "future", "finish")

    def __init__(
        self,
        response: Optional[dict] = None,
        future=None,
        finish: Optional[Callable[[List[QueryResponse]], dict]] = None,
    ):
        self.response = response
        self.future = future
        self.finish = finish

    @property
    def ready(self) -> bool:
        return self.future is None

    def wait(self) -> dict:
        """Block until the response dict is available (sync transports)."""
        if self.future is None:
            return self.response  # type: ignore[return-value]
        return self.finish(self.future.result())  # type: ignore[misc]


class ProtocolSession:
    """One protocol stream over any transport.

    Owns the per-line dispatch previously inlined in
    :func:`serve_stream`: JSON decoding, op routing, trace minting,
    query parsing and response shaping.  The transport supplies lines
    and writes the encoded responses; :attr:`responses` counts what the
    session answered.

    Query execution goes through ``engine.submit_many(queries)`` when
    the engine offers it (the sharded router in
    :mod:`repro.net.shard` does), in which case :meth:`begin` returns
    without blocking and the transport decides how to wait — an
    asyncio server awaits the future, :meth:`handle` blocks on it.  A
    plain :class:`~repro.service.engine.QueryEngine` executes inline.
    """

    def __init__(
        self,
        engine: QueryEngine,
        *,
        sampler: Optional[TraceSampler] = None,
    ):
        self.engine = engine
        self.sampler = sampler
        self.responses = 0

    # ------------------------------------------------------------------
    # phase 1: parse + dispatch
    # ------------------------------------------------------------------
    def begin(self, line: str) -> Optional[PendingReply]:
        """Parse one request line and start answering it.

        Returns ``None`` for blank lines.  Protocol-level problems
        (bad JSON, bad fields, unknown op) come back as ready error
        replies; engine crashes propagate to the caller (wrap with
        :func:`internal_error_response`, as :meth:`handle` does).
        """
        line = line.strip()
        if not line:
            return None
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            return PendingReply({"ok": False, "error": f"invalid JSON: {exc}"})
        if not isinstance(request, dict):
            return PendingReply(
                {"ok": False, "error": "request must be a JSON object"}
            )
        op = request.get("op", "query")
        if op == "query":
            return self._begin_query(request)
        return PendingReply(self._handle_admin(op, request))

    def _begin_query(self, request: dict) -> PendingReply:
        engine = self.engine
        ctx = _mint_root(engine, self.sampler)
        t0 = time.perf_counter()
        batched = "sources" in request
        try:
            if batched:
                queries = parse_batch_query(request)
            else:
                queries = [parse_query(request)]
        except ProtocolError as exc:
            response = {"ok": False, "error": str(exc)}
            if request.get("id") is not None:
                response["id"] = str(request["id"])
            return PendingReply(response)
        if ctx is not None:
            queries = [replace(q, trace=ctx) for q in queries]

        def finish(responses: List[QueryResponse]) -> dict:
            if not batched:
                out = responses[0].as_dict()
                emit_span(
                    engine.events, ctx, "protocol",
                    time.perf_counter() - t0, op="query",
                )
                return out
            out = {
                "ok": all(r.ok for r in responses),
                "count": len(responses),
                "results": [r.as_dict() for r in responses],
            }
            if ctx is not None:
                out["trace"] = ctx.trace_id
            if request.get("id") is not None:
                out["id"] = str(request["id"])
            emit_span(
                engine.events, ctx, "protocol",
                time.perf_counter() - t0, op="query", batch=len(responses),
            )
            return out

        submit = getattr(engine, "submit_many", None)
        if submit is not None:
            return PendingReply(future=submit(queries), finish=finish)
        if not batched:
            return PendingReply(finish([engine.run(queries[0])]))
        return PendingReply(finish(engine.run_many(queries)))

    def _handle_admin(self, op: str, request: dict) -> dict:
        """The non-query ops; all answer synchronously."""
        engine = self.engine
        if op == "stats":
            return {
                "ok": True, "op": "stats", "v": PROTOCOL_VERSION,
                **engine.stats(),
            }
        if op == "graphs":
            return {"ok": True, "op": "graphs", "graphs": engine.catalog.describe()}
        if op == "health":
            return {
                "ok": True, "op": "health", "v": PROTOCOL_VERSION,
                **engine.health(),
            }
        if op == "metrics":
            snapshot = engine.metrics_snapshot()
            out = {"ok": True, "op": "metrics", "v": PROTOCOL_VERSION}
            if request.get("format") == "prometheus":
                out["format"] = "prometheus"
                out["text"] = format_prometheus(snapshot)
            else:
                out["metrics"] = snapshot
            return out
        return {
            "ok": False,
            "error": (
                f"unknown op {op!r} "
                "(have query, stats, graphs, health, metrics)"
            ),
        }

    # ------------------------------------------------------------------
    # phase 1+2: the blocking convenience path
    # ------------------------------------------------------------------
    def handle(self, line: str) -> Optional[dict]:
        """One request line -> one response dict (None for blank lines).

        Exceptions escaping the engine — a bug, a resource blip,
        anything :meth:`begin` did not already turn into an error
        reply — are answered in-band so a single poisoned request
        cannot end the session.
        """
        try:
            pending = self.begin(line)
            if pending is None:
                return None
            response = pending.wait()
        except Exception as exc:  # one bad query must not kill the loop
            response = internal_error_response(exc)
        self.responses += 1
        return response


def handle_line(
    engine: QueryEngine,
    line: str,
    sampler: Optional[TraceSampler] = None,
) -> Optional[dict]:
    """One request line -> one response dict (None for blank lines).

    The stateless wrapper around :class:`ProtocolSession` kept for
    direct callers and tests; unlike :meth:`ProtocolSession.handle` it
    lets engine crashes propagate (the session loop turns those into
    in-band error responses).
    """
    pending = ProtocolSession(engine, sampler=sampler).begin(line)
    return None if pending is None else pending.wait()


def serve_stream(
    engine: QueryEngine,
    lines: Iterable[str],
    out: IO[str],
    *,
    sampler: Optional[TraceSampler] = None,
) -> int:
    """Drive the engine from a line stream; returns responses written.

    This is the whole stdin serve loop: the CLI hands it ``sys.stdin``
    (or a file) and ``sys.stdout``; tests hand it lists and
    ``StringIO``.  ``sampler`` (optional) head-samples traces per
    request line.  The socket server (:mod:`repro.net.server`) drives
    the same :class:`ProtocolSession` machinery, so both transports
    answer identically — including the in-band ``internal error``
    envelope for exceptions escaping the engine.
    """
    session = ProtocolSession(engine, sampler=sampler)
    for line in lines:
        response = session.handle(line)
        if response is None:
            continue
        out.write(json.dumps(response) + "\n")
        out.flush()
    return session.responses
