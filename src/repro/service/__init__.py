"""The SSSP query service.

The repo's algorithms answer one-shot, in-process calls; this package
turns them into a serving stack:

* :mod:`~repro.service.pool` — thread/process executor with the CSR
  graphs shared per-worker (arrays shipped once, not per task),
  per-task timeouts and graceful shutdown;
* :mod:`~repro.service.catalog` — named graphs (objects, files,
  generator factories) with stable content fingerprints;
* :mod:`~repro.service.cache` — bounded LRU result cache with
  hit/miss/eviction metrics;
* :mod:`~repro.service.engine` — the query engine: fingerprint-keyed
  caching, in-flight dedup, pool fan-out, ``query_start``/``query_end``
  events;
* :mod:`~repro.service.scheduler` — the coalescing window: park
  concurrent queries for up to ``max_wait_ms``, dispatch up to
  ``max_batch`` of them as one batched kernel call;
* :mod:`~repro.service.runners` — wire-name -> algorithm dispatch
  (single-source and batched entry points);
* :mod:`~repro.service.protocol` — the JSONL request/response format
  behind ``repro serve`` and ``repro query``; also where per-request
  traces are minted (see :mod:`repro.obs.telemetry`) and where the
  ``metrics`` op exposes the serving registry (JSON or Prometheus
  text).

Resilience (retry/backoff, circuit breaking, fault injection, result
validation) lives in :mod:`repro.resilience` and is wired through the
pool and engine; the README's *Query service* and *Resilience*
sections document the wire schema, cache semantics and failure
handling.
"""

from repro.service.cache import LRUCache
from repro.service.catalog import GraphCatalog, default_catalog
from repro.service.engine import QueryEngine, QueryResponse, SSSPQuery
from repro.service.pool import ExecutorPool, PoolTimeoutError, default_max_workers
from repro.service.protocol import (
    MAX_BATCH_SOURCES,
    MAX_PARAM_KEYS,
    PROTOCOL_VERSION,
    PendingReply,
    ProtocolSession,
    handle_line,
    internal_error_response,
    serve_stream,
)
from repro.service.runners import (
    BATCHED_ALGORITHMS,
    algorithm_names,
    run_algorithm,
    run_algorithm_batch,
    run_algorithm_batch_traced,
    run_algorithm_traced,
)
from repro.service.scheduler import CoalescingScheduler

__all__ = [
    "BATCHED_ALGORITHMS",
    "CoalescingScheduler",
    "ExecutorPool",
    "GraphCatalog",
    "LRUCache",
    "MAX_BATCH_SOURCES",
    "MAX_PARAM_KEYS",
    "PROTOCOL_VERSION",
    "PendingReply",
    "PoolTimeoutError",
    "ProtocolSession",
    "QueryEngine",
    "QueryResponse",
    "SSSPQuery",
    "algorithm_names",
    "default_catalog",
    "default_max_workers",
    "handle_line",
    "internal_error_response",
    "run_algorithm",
    "run_algorithm_batch",
    "run_algorithm_batch_traced",
    "run_algorithm_traced",
    "serve_stream",
]
