"""Cross-request coalescing: hold queries briefly, dispatch together.

:class:`~repro.service.engine.QueryEngine` can only coalesce queries
that arrive in the *same* ``run_many`` call.  Real traffic arrives one
request at a time, from many client threads; this module supplies the
missing accumulation window.  :class:`CoalescingScheduler` is the
service-side analogue of continuous batching in an inference server:

* :meth:`CoalescingScheduler.submit` parks a query and returns a
  future immediately;
* a flusher thread dispatches the parked batch when either bound
  trips — ``max_batch`` queries are waiting (batch is full) or the
  oldest has waited ``max_wait_ms`` (latency cap);
* the flush is one :meth:`~repro.service.engine.QueryEngine.run_many`
  call, where same-corridor misses become one batched kernel pass
  (``batch_dispatch`` event, ``service.batch.*`` metrics) and every
  per-query guarantee — cache, validation, retry, breaker accounting,
  ``query_start``/``query_end`` events — applies unchanged.

The trade is explicit: up to ``max_wait_ms`` of added latency per
query buys one kernel pass for up to ``max_batch`` of them.  With
``max_wait_ms=0`` the scheduler degenerates to a submit-side queue
that still fuses whatever happens to be waiting at flush time.

Trace propagation needs nothing special here: a query's
:class:`~repro.obs.telemetry.TraceContext` rides on the
:class:`~repro.service.engine.SSSPQuery` itself, so parking and
re-batching queries preserves each one's trace — the engine derives
its per-query child contexts at ``run_many`` time, after the window
closes.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import List, Optional, Tuple

from repro.service.engine import QueryEngine, QueryResponse, SSSPQuery

__all__ = ["CoalescingScheduler"]


class CoalescingScheduler:
    """Accumulate queries for a bounded window, flush as one batch.

    Parameters
    ----------
    engine:
        The engine that answers flushed batches.  Build it with
        ``max_batch > 1`` or same-corridor queries will still run one
        kernel pass each.
    max_batch:
        Flush as soon as this many queries are parked (>= 1).
    max_wait_ms:
        Flush no later than this many milliseconds after the first
        parked query (>= 0; 0 flushes as fast as the flusher can spin).
    """

    def __init__(
        self,
        engine: QueryEngine,
        *,
        max_batch: int = 16,
        max_wait_ms: float = 2.0,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self.engine = engine
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.submitted = 0
        self.flushes = 0
        self._cond = threading.Condition()
        self._pending: List[Tuple[SSSPQuery, Future]] = []
        self._deadline: Optional[float] = None
        self._closed = False
        self._flusher = threading.Thread(
            target=self._flush_loop, name="repro-coalesce", daemon=True
        )
        self._flusher.start()

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def submit(self, query: SSSPQuery) -> "Future[QueryResponse]":
        """Park one query; the future resolves to its QueryResponse."""
        future: Future = Future()
        with self._cond:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            if not self._pending:
                self._deadline = time.monotonic() + self.max_wait_ms / 1000.0
            self._pending.append((query, future))
            self.submitted += 1
            self._cond.notify_all()
        return future

    def run(self, query: SSSPQuery) -> QueryResponse:
        """Submit and wait: the blocking convenience wrapper."""
        return self.submit(query).result()

    # ------------------------------------------------------------------
    # flusher
    # ------------------------------------------------------------------
    def _flush_loop(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if self._closed and not self._pending:
                    return
                # wait until the batch fills or the window expires
                while (
                    len(self._pending) < self.max_batch and not self._closed
                ):
                    assert self._deadline is not None
                    remaining = self._deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(timeout=remaining)
                batch = self._pending[: self.max_batch]
                del self._pending[: self.max_batch]
                if self._pending:
                    # leftovers start a fresh window of their own
                    self._deadline = (
                        time.monotonic() + self.max_wait_ms / 1000.0
                    )
            self._run_batch(batch)

    def _run_batch(self, batch: List[Tuple[SSSPQuery, Future]]) -> None:
        self.flushes += 1
        queries = [query for query, _ in batch]
        try:
            responses = self.engine.run_many(queries)
        except Exception as exc:  # engine bugs fail the waiters, not us
            for _, future in batch:
                if not future.cancelled():
                    future.set_exception(exc)
            return
        for (_, future), response in zip(batch, responses):
            if not future.cancelled():
                future.set_result(response)

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._cond:
            pending = len(self._pending)
        return {
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "submitted": self.submitted,
            "flushes": self.flushes,
            "pending": pending,
        }

    def close(self) -> None:
        """Flush whatever is parked, then stop the flusher thread."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._flusher.join()

    def __enter__(self) -> "CoalescingScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
