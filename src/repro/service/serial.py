"""Wire serialization for worker-process bootstrap.

Out-of-process shard workers (:mod:`repro.net.worker`) cannot receive
a :class:`~repro.service.catalog.GraphCatalog` directly — the default
catalog registers lambdas, which do not pickle, and re-generating a
graph in the worker would race the fingerprint check.  Instead the
front-end ships each materialised :class:`~repro.graph.csr.CSRGraph`
over the frame protocol:

* :func:`pack_graph` / :func:`unpack_graph` — a compact binary graph
  image (JSON header + raw CSR array bytes) with the content
  fingerprint embedded, verified on unpack so a corrupted or stale
  transfer can never seed a worker with wrong data;
* :func:`engine_config_to_wire` / :func:`engine_config_from_wire` —
  the :class:`~repro.service.engine.QueryEngine` keyword arguments as
  a JSON-safe dict (retry/breaker policies flattened to their
  dataclass fields, fault plans via
  :func:`repro.resilience.faults.plan_to_wire`).
"""

from __future__ import annotations

import json
import struct
from dataclasses import asdict
from typing import Mapping, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.resilience.breaker import BreakerConfig
from repro.resilience.faults import plan_from_wire, plan_to_wire
from repro.resilience.retry import RetryPolicy

__all__ = [
    "pack_graph",
    "unpack_graph",
    "engine_config_to_wire",
    "engine_config_from_wire",
    "GraphTransferError",
]

_MAGIC = b"RGPH"
_HEADER_LEN = struct.Struct("!I")

# Engine kwargs that are already JSON-safe scalars.
_SCALAR_KEYS = (
    "mode",
    "max_workers",
    "timeout",
    "cache_size",
    "max_batch",
    "backend",
)


class GraphTransferError(ValueError):
    """A packed graph failed structural or fingerprint validation."""


def pack_graph(graph_id: str, graph: CSRGraph) -> bytes:
    """Serialize one catalog entry for an ADOPT frame.

    Layout: ``b"RGPH"`` · u32 header length · JSON header (graph id,
    name, node/edge counts, fingerprint) · raw ``indptr`` · raw
    ``indices`` · raw ``weights`` bytes.  Array dtypes are fixed by
    :class:`CSRGraph` (int64/int32/float64) so lengths in the header
    fully determine the byte spans.
    """
    header = {
        "graph_id": graph_id,
        "name": graph.name,
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "fingerprint": graph.fingerprint(),
    }
    head = json.dumps(header, sort_keys=True).encode("utf-8")
    parts = [_MAGIC, _HEADER_LEN.pack(len(head)), head]
    for arr in (graph.indptr, graph.indices, graph.weights):
        parts.append(np.ascontiguousarray(arr).tobytes())
    return b"".join(parts)


def unpack_graph(payload: bytes) -> Tuple[str, CSRGraph]:
    """Invert :func:`pack_graph`; verify structure and fingerprint.

    Returns ``(graph_id, graph)``.  Raises :class:`GraphTransferError`
    if the image is malformed or the rebuilt graph's fingerprint does
    not match the one the sender embedded — a worker never adopts a
    graph it cannot prove it received intact.
    """
    if len(payload) < len(_MAGIC) + _HEADER_LEN.size:
        raise GraphTransferError("graph image truncated before header")
    if payload[: len(_MAGIC)] != _MAGIC:
        raise GraphTransferError("bad graph image magic")
    (head_len,) = _HEADER_LEN.unpack_from(payload, len(_MAGIC))
    body_at = len(_MAGIC) + _HEADER_LEN.size
    try:
        header = json.loads(payload[body_at : body_at + head_len])
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise GraphTransferError(f"bad graph image header: {exc}") from None
    num_nodes = int(header["num_nodes"])
    num_edges = int(header["num_edges"])
    spans = (
        ((num_nodes + 1) * 8, np.int64),
        (num_edges * 4, np.int32),
        (num_edges * 8, np.float64),
    )
    offset = body_at + head_len
    if len(payload) != offset + sum(size for size, _ in spans):
        raise GraphTransferError(
            f"graph image size mismatch for {header.get('graph_id')!r}"
        )
    arrays = []
    for size, dtype in spans:
        arrays.append(
            np.frombuffer(payload[offset : offset + size], dtype=dtype).copy()
        )
        offset += size
    graph = CSRGraph(
        indptr=arrays[0],
        indices=arrays[1],
        weights=arrays[2],
        name=header["name"],
    )
    if graph.fingerprint() != header["fingerprint"]:
        raise GraphTransferError(
            f"fingerprint mismatch unpacking {header.get('graph_id')!r}: "
            f"got {graph.fingerprint()[:12]}, "
            f"expected {header['fingerprint'][:12]}"
        )
    return header["graph_id"], graph


def engine_config_to_wire(kwargs: Mapping) -> dict:
    """QueryEngine keyword arguments as a JSON-safe dict.

    ``labels`` is intentionally dropped: the worker's registry is
    process-local and never merged, so shard labels only exist on the
    front-end side.  Unknown non-None keys raise — silently losing an
    engine knob across the process boundary would be a config drift
    bug.
    """
    wire: dict = {}
    for key, value in dict(kwargs).items():
        if key in _SCALAR_KEYS:
            wire[key] = value
        elif key == "retry":
            wire[key] = None if value is None else asdict(value)
        elif key == "breaker":
            wire[key] = None if value is None else asdict(value)
        elif key == "fault_plan":
            wire[key] = plan_to_wire(value)
        elif key == "labels":
            continue
        elif value is not None:
            raise ValueError(f"cannot serialize engine kwarg {key!r}")
    return wire


def engine_config_from_wire(data: Mapping) -> dict:
    """Invert :func:`engine_config_to_wire`."""
    kwargs: dict = {}
    for key, value in dict(data).items():
        if key in _SCALAR_KEYS:
            kwargs[key] = value
        elif key == "retry":
            kwargs[key] = None if value is None else RetryPolicy(**value)
        elif key == "breaker":
            kwargs[key] = None if value is None else BreakerConfig(**value)
        elif key == "fault_plan":
            kwargs[key] = plan_from_wire(value)
        else:
            raise ValueError(f"unknown engine kwarg {key!r} on the wire")
    return kwargs
