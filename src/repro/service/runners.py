"""Algorithm dispatch for the query service.

One registry maps the wire-level algorithm names to the package's SSSP
implementations with a uniform call shape::

    run_algorithm(graph, source, "nearfar", {"delta": 0.5}) -> SSSPResult

:func:`run_algorithm_batch` is the coalesced-dispatch entry point: one
pool task answering B sources at once.  For :data:`BATCHED_ALGORITHMS`
it calls the true multi-source kernel
(:func:`~repro.sssp.batch_kernels.batched_nearfar_sssp`); for every
other algorithm it loops in-task, which still amortises pool submit
overhead across the batch.

Parameters are validated against a per-algorithm whitelist *before*
the run starts, so a typo'd request fails fast with a message naming
the accepted keys instead of dying mid-run.  Everything here is a
module-level function on purpose: process-mode workers must be able to
pickle the task (see :mod:`repro.service.pool`).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.graph.csr import CSRGraph
from repro.sssp.result import SSSPResult

__all__ = [
    "ALGORITHM_PARAMS",
    "BATCHED_ALGORITHMS",
    "algorithm_names",
    "run_algorithm",
    "run_algorithm_batch",
    "run_algorithm_traced",
    "run_algorithm_batch_traced",
]

# algorithm -> accepted parameter names
ALGORITHM_PARAMS: Dict[str, Tuple[str, ...]] = {
    "dijkstra": (),
    "bellman-ford": (),
    "delta-stepping": ("delta",),
    "nearfar": ("delta", "backend"),
    "adaptive": ("setpoint",),
    "kla": ("k",),
}

# algorithms with a true multi-source kernel behind run_algorithm_batch
BATCHED_ALGORITHMS: Tuple[str, ...] = ("nearfar",)


def algorithm_names() -> Tuple[str, ...]:
    return tuple(sorted(ALGORITHM_PARAMS))


def validate_params(algorithm: str, params: Mapping) -> dict:
    """Check ``algorithm`` exists and ``params`` only uses known keys."""
    accepted = ALGORITHM_PARAMS.get(algorithm)
    if accepted is None:
        raise ValueError(
            f"unknown algorithm {algorithm!r} (have {', '.join(algorithm_names())})"
        )
    params = dict(params or {})
    unknown = sorted(set(params) - set(accepted))
    if unknown:
        raise ValueError(
            f"algorithm {algorithm!r} does not accept {unknown}; "
            f"accepted: {list(accepted) or 'none'}"
        )
    backend = params.get("backend")
    if backend is not None:
        from repro.sssp.backends import backend_names

        if backend not in backend_names():
            raise ValueError(
                f"unknown kernel backend {backend!r} "
                f"(registered: {', '.join(backend_names())})"
            )
    return params


def run_algorithm(
    graph: CSRGraph,
    source: int,
    algorithm: str,
    params: Optional[Mapping] = None,
) -> SSSPResult:
    """Run one SSSP query and return its result (no trace).

    Traces are deliberately not collected: a service answering many
    queries wants distances and work counters, not per-iteration
    records (use ``repro trace record`` for those).
    """
    params = validate_params(algorithm, params or {})
    if not 0 <= source < graph.num_nodes:
        raise ValueError(
            f"source {source} out of range for {graph.num_nodes} nodes"
        )
    if algorithm == "dijkstra":
        from repro.sssp.dijkstra import dijkstra

        return dijkstra(graph, source)
    if algorithm == "bellman-ford":
        from repro.sssp.bellman_ford import bellman_ford

        return bellman_ford(graph, source)
    if algorithm == "delta-stepping":
        from repro.sssp.delta_stepping import delta_stepping

        return delta_stepping(graph, source, params.get("delta"))
    if algorithm == "nearfar":
        from repro.sssp.nearfar import nearfar_sssp

        result, _ = nearfar_sssp(
            graph,
            source,
            delta=params.get("delta"),
            collect_trace=False,
            backend=params.get("backend"),
        )
        return result
    if algorithm == "kla":
        from repro.sssp.kla import kla_sssp

        result, _ = kla_sssp(
            graph, source, int(params.get("k", 4)), collect_trace=False
        )
        return result
    # adaptive
    from repro.core import AdaptiveParams, adaptive_sssp

    setpoint = float(params.get("setpoint", 10_000.0))
    result, _, _ = adaptive_sssp(
        graph, source, AdaptiveParams(setpoint=setpoint), collect_trace=False
    )
    return result


def run_algorithm_batch(
    graph: CSRGraph,
    sources: Sequence[int],
    algorithm: str,
    params: Optional[Mapping] = None,
) -> List[SSSPResult]:
    """Answer B sources in one task; results come back in source order.

    Algorithms in :data:`BATCHED_ALGORITHMS` go through the
    multi-source kernel — one pass over the shared CSR arrays for the
    whole batch.  The rest loop over :func:`run_algorithm` inside the
    task, which amortises pool submission without changing per-query
    semantics.  Either way each source gets its own independent
    :class:`~repro.sssp.result.SSSPResult`.
    """
    params = validate_params(algorithm, params or {})
    sources = [int(s) for s in sources]
    if not sources:
        raise ValueError("batch must contain at least one source")
    for source in sources:
        if not 0 <= source < graph.num_nodes:
            raise ValueError(
                f"source {source} out of range for {graph.num_nodes} nodes"
            )
    if algorithm in BATCHED_ALGORITHMS:
        from repro.sssp.batch_kernels import batched_nearfar_sssp

        return batched_nearfar_sssp(
            graph,
            sources,
            delta=params.get("delta"),
            backend=params.get("backend"),
        )
    return [run_algorithm(graph, s, algorithm, params) for s in sources]


def run_algorithm_traced(
    graph: CSRGraph,
    envelope: Mapping,
    source: int,
    algorithm: str,
    params: Optional[Mapping] = None,
) -> Tuple[SSSPResult, dict]:
    """:func:`run_algorithm` under a buffered telemetry context.

    The task envelope (trace context + enqueue timestamp, see
    :func:`repro.obs.telemetry.capture_task`) comes right after the
    graph so the pool's graph-injection calling convention is
    untouched.  Returns ``(result, payload)`` where the payload ships
    the worker's metric deltas, span profile, buffered events and
    queue-wait/compute timings back to the engine.  Module-level (and
    envelope a plain dict) so process-mode workers can pickle the task.
    """
    from repro import obs
    from repro.obs.telemetry import capture_task

    def task() -> SSSPResult:
        with obs.get_spans().span("kernel"):
            return run_algorithm(graph, source, algorithm, params)

    return capture_task(envelope, task)


def run_algorithm_batch_traced(
    graph: CSRGraph,
    envelope: Mapping,
    sources: Sequence[int],
    algorithm: str,
    params: Optional[Mapping] = None,
) -> Tuple[List[SSSPResult], dict]:
    """:func:`run_algorithm_batch` under a buffered telemetry context.

    The batched sibling of :func:`run_algorithm_traced`: one payload
    for the whole coalesced batch (one pool task, one worker span
    tree), attributed to the lead query's trace.
    """
    from repro import obs
    from repro.obs.telemetry import capture_task

    def task() -> List[SSSPResult]:
        with obs.get_spans().span("kernel"):
            return run_algorithm_batch(graph, sources, algorithm, params)

    return capture_task(envelope, task)
