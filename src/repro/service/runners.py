"""Algorithm dispatch for the query service.

One registry maps the wire-level algorithm names to the package's SSSP
implementations with a uniform call shape::

    run_algorithm(graph, source, "nearfar", {"delta": 0.5}) -> SSSPResult

Parameters are validated against a per-algorithm whitelist *before*
the run starts, so a typo'd request fails fast with a message naming
the accepted keys instead of dying mid-run.  Everything here is a
module-level function on purpose: process-mode workers must be able to
pickle the task (see :mod:`repro.service.pool`).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.graph.csr import CSRGraph
from repro.sssp.result import SSSPResult

__all__ = ["ALGORITHM_PARAMS", "algorithm_names", "run_algorithm"]

# algorithm -> accepted parameter names
ALGORITHM_PARAMS: Dict[str, Tuple[str, ...]] = {
    "dijkstra": (),
    "bellman-ford": (),
    "delta-stepping": ("delta",),
    "nearfar": ("delta",),
    "adaptive": ("setpoint",),
    "kla": ("k",),
}


def algorithm_names() -> Tuple[str, ...]:
    return tuple(sorted(ALGORITHM_PARAMS))


def validate_params(algorithm: str, params: Mapping) -> dict:
    """Check ``algorithm`` exists and ``params`` only uses known keys."""
    accepted = ALGORITHM_PARAMS.get(algorithm)
    if accepted is None:
        raise ValueError(
            f"unknown algorithm {algorithm!r} (have {', '.join(algorithm_names())})"
        )
    params = dict(params or {})
    unknown = sorted(set(params) - set(accepted))
    if unknown:
        raise ValueError(
            f"algorithm {algorithm!r} does not accept {unknown}; "
            f"accepted: {list(accepted) or 'none'}"
        )
    return params


def run_algorithm(
    graph: CSRGraph,
    source: int,
    algorithm: str,
    params: Optional[Mapping] = None,
) -> SSSPResult:
    """Run one SSSP query and return its result (no trace).

    Traces are deliberately not collected: a service answering many
    queries wants distances and work counters, not per-iteration
    records (use ``repro trace record`` for those).
    """
    params = validate_params(algorithm, params or {})
    if not 0 <= source < graph.num_nodes:
        raise ValueError(
            f"source {source} out of range for {graph.num_nodes} nodes"
        )
    if algorithm == "dijkstra":
        from repro.sssp.dijkstra import dijkstra

        return dijkstra(graph, source)
    if algorithm == "bellman-ford":
        from repro.sssp.bellman_ford import bellman_ford

        return bellman_ford(graph, source)
    if algorithm == "delta-stepping":
        from repro.sssp.delta_stepping import delta_stepping

        return delta_stepping(graph, source, params.get("delta"))
    if algorithm == "nearfar":
        from repro.sssp.nearfar import nearfar_sssp

        result, _ = nearfar_sssp(
            graph, source, delta=params.get("delta"), collect_trace=False
        )
        return result
    if algorithm == "kla":
        from repro.sssp.kla import kla_sssp

        result, _ = kla_sssp(
            graph, source, int(params.get("k", 4)), collect_trace=False
        )
        return result
    # adaptive
    from repro.core import AdaptiveParams, adaptive_sssp

    setpoint = float(params.get("setpoint", 10_000.0))
    result, _, _ = adaptive_sssp(
        graph, source, AdaptiveParams(setpoint=setpoint), collect_trace=False
    )
    return result
