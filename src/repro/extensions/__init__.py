"""Generalisations of the controller to other frontier primitives.

The paper's conclusion: "we believe the same ideas are relevant to
other graph implementations … many of the other graph computations
have a similar structure to SSSP: they are expressed as sequences or
banks of 'frontier filters' that manipulate a frontier work-queue."

This package demonstrates that claim on a second primitive:
single-source *widest path* (maximum bottleneck), whose frontier
engine runs the same four stages with an inverted priority window —
and whose parallelism the unchanged
:class:`~repro.core.controller.SetpointController` steers just as it
does for SSSP.
"""

from repro.extensions.widest_path import (
    WidestPathParams,
    adaptive_widest_path,
    widest_path,
    widest_path_reference,
)

__all__ = [
    "WidestPathParams",
    "adaptive_widest_path",
    "widest_path",
    "widest_path_reference",
]
