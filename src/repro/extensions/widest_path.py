"""Single-source widest path on the controlled near+far engine.

The widest-path (maximum-bottleneck) problem: maximise, over paths
from the source, the *minimum* edge weight along the path.  It is the
max-min analogue of SSSP and, like it, label-correcting: any
processing order converges to the exact widths.

The port to the near+far structure works in *key space*: each vertex
carries ``key = -width`` so that "process the widest candidates first"
becomes the familiar "process the smallest keys first", and the whole
windowing machinery — near window ``[L, S)``, far queue, drains,
dynamic delta — transfers verbatim.  Relaxation is the only changed
line: ``cand = max(key[u], -w(u, v))`` instead of ``key[u] + w``.

``adaptive_widest_path`` drives the window with the *unchanged*
:class:`~repro.core.controller.SetpointController`: the controller
only ever sees the stage workload counters, so it neither knows nor
cares that the underlying semiring changed — which is precisely the
generalisation argument of the paper's conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.controller import ControllerConfig, SetpointController
from repro.graph.csr import CSRGraph
from repro.instrument.trace import IterationRecord, RunTrace
from repro.sssp.frontier import ragged_arange
from repro.sssp.result import SSSPResult

__all__ = [
    "WidestPathParams",
    "widest_path_reference",
    "widest_path",
    "adaptive_widest_path",
]

_EMPTY = np.zeros(0, dtype=np.int64)


@dataclass(frozen=True)
class WidestPathParams:
    """Configuration of the adaptive widest-path run."""

    setpoint: float
    initial_delta: float | None = None
    max_iterations: int = 0

    def __post_init__(self) -> None:
        if self.setpoint <= 0:
            raise ValueError("setpoint must be positive")
        if self.initial_delta is not None and self.initial_delta <= 0:
            raise ValueError("initial_delta must be positive")
        if self.max_iterations < 0:
            raise ValueError("max_iterations must be >= 0")


def widest_path_reference(graph: CSRGraph, source: int) -> np.ndarray:
    """Oracle: max-heap Dijkstra for bottleneck widths.

    Returns widths with the conventions ``width[source] = +inf`` and
    ``-inf`` for unreachable vertices.
    """
    import heapq

    n = graph.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} nodes")
    width = np.full(n, -np.inf)
    width[source] = np.inf
    heap = [(-np.inf, source)]  # (-width, vertex): widest first
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    while heap:
        neg_w, u = heapq.heappop(heap)
        if -neg_w < width[u]:
            continue
        for e in range(indptr[u], indptr[u + 1]):
            v = indices[e]
            cand = min(width[u], weights[e])
            if cand > width[v]:
                width[v] = cand
                heapq.heappush(heap, (-cand, int(v)))
    return width


def _advance_widest(
    graph: CSRGraph, frontier: np.ndarray, key: np.ndarray
) -> Tuple[np.ndarray, int]:
    """Max-min relaxation of the frontier's out-edges (key space).

    Returns (improved endpoints with duplicates, total edges == X^(2)).
    """
    starts = graph.indptr[frontier]
    counts = graph.indptr[frontier + 1] - starts
    x2 = int(counts.sum())
    if x2 == 0:
        return _EMPTY, 0
    offsets = np.repeat(starts, counts) + ragged_arange(counts)
    v = graph.indices[offsets].astype(np.int64)
    w = graph.weights[offsets]
    ku = np.repeat(key[frontier], counts)
    cand = np.maximum(ku, -w)  # key = -width; bottleneck = max of keys
    old = key[v]
    np.minimum.at(key, v, cand)
    return v[cand < old], x2


def _run_widest(
    graph: CSRGraph,
    source: int,
    delta: float,
    controller: SetpointController | None,
    max_iterations: int,
) -> Tuple[SSSPResult, RunTrace]:
    n = graph.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} nodes")
    if graph.num_edges and graph.weights.min() <= 0:
        raise ValueError("widest path requires positive edge weights")

    key = np.full(n, np.inf)
    key[source] = -np.inf
    advanced_at = np.full(n, np.inf)
    frontier = np.array([source], dtype=np.int64)
    far = _EMPTY

    # the key floor: no reachable vertex can have key below -max weight
    key_floor = -float(graph.weights.max()) if graph.num_edges else 0.0
    lower, split = key_floor, key_floor + delta

    algorithm = "adaptive-widest" if controller else "nearfar-widest"
    trace = RunTrace(algorithm=algorithm, graph_name=graph.name, source=source)
    iterations = 0
    relaxations = 0

    while frontier.size:
        iterations += 1
        x1 = int(frontier.size)
        if controller:
            controller.begin_iteration(x1)

        advanced_at[frontier] = key[frontier]
        improved, x2 = _advance_widest(graph, frontier, key)
        relaxations += x2
        if controller:
            controller.observe_advance(x1, x2)

        unique_improved = np.unique(improved) if improved.size else _EMPTY
        x3 = int(unique_improved.size)

        mask = key[unique_improved] < split
        near = unique_improved[mask]
        far_add = unique_improved[~mask]
        if far_add.size:
            far = np.concatenate([far, far_add])
        x4 = int(near.size)

        delta_now = delta
        moved_from_far = 0
        if controller:
            decision = controller.plan(
                x4,
                window_lower=lower,
                window_split=split,
                far_total=int(far.size),
                far_partition_size=int(far.size),
                far_partition_upper=split + 4.0 * controller.delta,
            )
            delta_now = decision.delta
            new_split = lower + delta_now
            if new_split > split and far.size:
                far = np.unique(far)
                live = far[key[far] < advanced_at[far]]
                pull = live[key[live] < new_split]
                if pull.size:
                    near = np.union1d(near, pull)
                    moved_from_far = int(pull.size)
                far = live[key[live] >= new_split]
            elif new_split < split and near.size:
                keep = key[near] < new_split
                postponed = near[~keep]
                if postponed.size:
                    far = np.concatenate([far, postponed])
                near = near[keep]
            split = new_split

        frontier = near
        drains = 0
        if frontier.size == 0 and far.size:
            far = np.unique(far)
            live = far[key[far] < advanced_at[far]]
            if live.size:
                drains = 1
                k_live = key[live]
                lower = split
                split = max(split + delta_now, float(k_live.min()) + delta_now)
                inside = k_live < split
                frontier = live[inside]
                far = live[~inside]
            else:
                far = _EMPTY
            if controller:
                controller.invalidate_pending()

        trace.append(
            IterationRecord(
                k=iterations - 1,
                x1=x1,
                x2=x2,
                x3=x3,
                x4=x4,
                delta=delta_now,
                split=split,
                far_size=int(far.size),
                drains=drains,
                moved_from_far=moved_from_far,
                d_estimate=controller.d if controller else float("nan"),
                alpha_estimate=controller.alpha if controller else float("nan"),
            )
        )
        if max_iterations and iterations >= max_iterations:
            break

    # back to width space: width = -key (+inf source, -inf unreachable)
    width = -key
    result = SSSPResult(
        dist=width,  # "dist" carries the widths for this primitive
        source=source,
        iterations=iterations,
        relaxations=relaxations,
        algorithm=algorithm,
        extra={"primitive": "widest-path", "delta": delta},
    )
    return result, trace


def _default_delta(graph: CSRGraph) -> float:
    if graph.num_edges == 0:
        return 1.0
    span = float(graph.weights.max() - graph.weights.min())
    return max(span / 10.0, 1e-9)


def widest_path(
    graph: CSRGraph, source: int, delta: float | None = None
) -> Tuple[SSSPResult, RunTrace]:
    """Fixed-delta near+far widest path (the baseline analogue)."""
    d = delta if delta is not None else _default_delta(graph)
    if d <= 0:
        raise ValueError("delta must be positive")
    return _run_widest(graph, source, d, controller=None, max_iterations=0)


def adaptive_widest_path(
    graph: CSRGraph, source: int, params: WidestPathParams
) -> Tuple[SSSPResult, RunTrace, SetpointController]:
    """Self-tuning widest path: the unchanged SSSP controller steers it."""
    delta0 = (
        params.initial_delta
        if params.initial_delta is not None
        else _default_delta(graph)
    )
    controller = SetpointController(
        ControllerConfig(setpoint=params.setpoint),
        delta0,
        initial_d=max(graph.average_degree, 1.0),
    )
    result, trace = _run_widest(
        graph, source, delta0, controller, params.max_iterations
    )
    return result, trace, controller
