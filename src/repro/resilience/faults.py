"""Deterministic fault injection for the query service.

A :class:`FaultPlan` decides, purely from a seed and a task sequence
number, whether a task is sabotaged and how.  Because the decision is
a function of ``(seed, index)`` — not of wall clock, thread timing or
call order within an index — the same plan replays the same faults in
tests, in CI and at the ``repro faults`` command line, in thread and
process pools alike.

Fault kinds (``FaultPlan.kinds``):

* ``"transient"`` — raise :class:`InjectedTransientError` before the
  task body runs (a blip the retry layer should absorb);
* ``"crash"`` — raise :class:`InjectedCrashError` (a simulated worker
  crash: classified transient, because a resubmitted task lands on a
  healthy worker);
* ``"hang"`` — sleep ``hang_seconds`` before running the task body, so
  a pool with a shorter per-task timeout sees a hung task;
* ``"corrupt"`` — run the task body, then hand back a *corrupted*
  result (negated distances on an SSSP result, a junk string
  otherwise) that result validation must catch;
* ``"poolbreak"`` — ``os._exit`` the worker process (process pools
  only: it exercises ``BrokenProcessPool`` recovery; in a thread pool
  it degrades to a :class:`InjectedCrashError`, since exiting the
  thread would exit the server).

Everything here is picklable on purpose: process-mode workers receive
the :class:`FaultSpec` inside the task payload (see
:func:`repro.service.pool._run_faulted_on_worker_graph`).

:class:`DivergentController` is the controller-level fault: a proxy
that behaves like the wrapped :class:`~repro.core.controller.SetpointController`
for ``after`` decisions and then emits non-finite deltas — the input
the :mod:`repro.resilience.guard` watchdog exists to survive.
"""

from __future__ import annotations

import math
import os
import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrashError",
    "InjectedTransientError",
    "apply_fault",
    "DivergentController",
]

FAULT_KINDS = ("transient", "crash", "hang", "corrupt", "poolbreak")


class InjectedTransientError(RuntimeError):
    """A deliberately injected transient failure (retry should absorb it)."""


class InjectedCrashError(RuntimeError):
    """A deliberately injected worker crash (simulated, in-band)."""


@dataclass(frozen=True)
class FaultSpec:
    """One concrete sabotage decision for one task."""

    kind: str
    hang_seconds: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (have {', '.join(FAULT_KINDS)})"
            )
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of task sabotage.

    ``decide(i)`` answers "what happens to the i-th submitted task":
    ``None`` (run clean) or a :class:`FaultSpec`.  ``rate`` is the
    per-task fault probability; ``kinds`` the pool the sabotage is
    drawn from, uniformly.
    """

    rate: float
    seed: int = 0
    kinds: Tuple[str, ...] = ("transient", "crash", "hang")
    hang_seconds: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if not self.kinds:
            raise ValueError("kinds must not be empty")
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} (have {', '.join(FAULT_KINDS)})"
                )
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be >= 0")

    def decide(self, index: int) -> Optional[FaultSpec]:
        """The fault for task ``index`` (deterministic in seed and index)."""
        rng = random.Random(self.seed * 1_000_003 + index)
        if rng.random() >= self.rate:
            return None
        return FaultSpec(kind=rng.choice(self.kinds), hang_seconds=self.hang_seconds)

    def count(self, tasks: int) -> int:
        """How many of the first ``tasks`` submissions get sabotaged."""
        return sum(1 for i in range(tasks) if self.decide(i) is not None)

    @classmethod
    def parse_kinds(cls, spec: str) -> Tuple[str, ...]:
        """``"crash,hang"`` -> ``("crash", "hang")``, validated."""
        kinds = tuple(k.strip() for k in spec.split(",") if k.strip())
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} (have {', '.join(FAULT_KINDS)})"
                )
        return kinds


def _corrupt(result: object) -> object:
    """Damage a task result in a way validation must detect."""
    dist = getattr(result, "dist", None)
    if dist is not None:
        try:
            import numpy as np

            bad = np.where(np.isfinite(dist), -(dist + 1.0), dist)
            return type(result)(
                dist=bad,
                source=result.source,
                iterations=result.iterations,
                relaxations=result.relaxations,
                algorithm=result.algorithm,
                extra=dict(result.extra or {}, corrupted=True),
            )
        except Exception:
            pass
    return "corrupted-result"


def apply_fault(fault: Optional[FaultSpec], call: Callable[[], object], *,
                in_process_worker: bool = False) -> object:
    """Run ``call`` under ``fault`` (``None`` = run clean).

    ``in_process_worker`` tells ``poolbreak`` whether it may really
    kill the hosting process; thread workers downgrade it to an
    in-band crash so the server itself survives.
    """
    if fault is None:
        return call()
    if fault.kind == "transient":
        raise InjectedTransientError("injected transient fault")
    if fault.kind == "crash":
        raise InjectedCrashError("injected worker crash")
    if fault.kind == "poolbreak":
        if in_process_worker:
            os._exit(13)  # a real worker death: the pool sees BrokenProcessPool
        raise InjectedCrashError("injected worker crash (poolbreak on threads)")
    if fault.kind == "hang":
        time.sleep(fault.hang_seconds)
        return call()
    # corrupt
    return _corrupt(call())


class DivergentController:
    """A controller proxy that goes insane after ``after`` decisions.

    Wraps a real :class:`~repro.core.controller.SetpointController`
    and delegates everything, except that :meth:`plan` starts emitting
    deltas from ``schedule`` once the wrapped controller has made
    ``after`` decisions.  The default schedule is NaN forever — the
    canonical "SGD blew up" failure.  Pass e.g.
    ``schedule=itertools.cycle([1e-12, 1e12])`` for violent
    oscillation instead.

    Swap it onto a stepper to force a divergence::

        stepper = AdaptiveNearFarStepper(graph, source, params)
        stepper.controller = DivergentController(stepper.controller, after=3)
    """

    def __init__(self, controller, *, after: int = 3, schedule=None):
        self._controller = controller
        self._after = after
        self._schedule = schedule
        self._decisions = 0
        self._last_poison: Optional[float] = None

    def __getattr__(self, name):
        return getattr(self._controller, name)

    @property
    def delta(self) -> float:
        # repeat the latest poisoned value rather than advancing the
        # schedule: only plan() consumes it, so the sequence of planned
        # deltas is exactly the schedule regardless of how often other
        # code reads .delta
        if self._decisions > self._after:
            if self._last_poison is None:
                self._last_poison = self._next_poison()
            return self._last_poison
        return self._controller.delta

    def _next_poison(self) -> float:
        value = math.nan if self._schedule is None else next(self._schedule)
        self._last_poison = value
        return value

    def plan(self, x4, **kwargs):
        from repro.core.controller import DeltaDecision

        self._decisions += 1
        if self._decisions <= self._after:
            return self._controller.plan(x4, **kwargs)
        bad = self._next_poison()
        return DeltaDecision(
            delta=bad,
            delta_change=bad - self._controller.delta,
            alpha_used=math.nan,
            target_frontier=math.nan,
            bootstrapped=False,
        )
