"""Deterministic fault injection for the query service.

A :class:`FaultPlan` decides, purely from a seed and a task sequence
number, whether a task is sabotaged and how.  Because the decision is
a function of ``(seed, index)`` — not of wall clock, thread timing or
call order within an index — the same plan replays the same faults in
tests, in CI and at the ``repro faults`` command line, in thread and
process pools alike.

Fault kinds (``FaultPlan.kinds``):

* ``"transient"`` — raise :class:`InjectedTransientError` before the
  task body runs (a blip the retry layer should absorb);
* ``"crash"`` — raise :class:`InjectedCrashError` (a simulated worker
  crash: classified transient, because a resubmitted task lands on a
  healthy worker);
* ``"hang"`` — sleep ``hang_seconds`` before running the task body, so
  a pool with a shorter per-task timeout sees a hung task;
* ``"corrupt"`` — run the task body, then hand back a *corrupted*
  result (negated distances on an SSSP result, a junk string
  otherwise) that result validation must catch;
* ``"poolbreak"`` — ``os._exit`` the worker process (process pools
  only: it exercises ``BrokenProcessPool`` recovery; in a thread pool
  it degrades to a :class:`InjectedCrashError`, since exiting the
  thread would exit the server).

Network-tier fault kinds (``NET_FAULT_KINDS``) extend the same plan
machinery above the pool, into :mod:`repro.net`.  They are *decided*
here but *interpreted* by the serving layer — :func:`apply_fault`
rejects them, because they sabotage infrastructure, not tasks:

* ``"shard_crash"`` — a shard dispatcher thread dies mid-cycle
  (raises :class:`InjectedShardCrash`, a ``BaseException`` on purpose:
  it must escape ``except Exception`` handlers the way a real
  interpreter-level death would);
* ``"dispatcher_hang"`` — the dispatcher stops making progress for
  ``hang_seconds`` (the supervisor's queue-age watchdog territory);
* ``"slow_shard"`` — every dispatch cycle pays ``slow_seconds`` extra
  latency (feeds the admission controller's EWMA deadline gate);
* ``"conn_drop"`` — the server closes a client connection abruptly
  after reading a request, before answering it.

Worker-process fault kinds (``WORKER_FAULT_KINDS``, a subset of
``NET_FAULT_KINDS``) are interpreted *inside* an out-of-process shard
worker (``repro shard-worker``), indexed by request frame:

* ``"worker_kill"`` — the worker SIGKILLs itself mid-request: the
  parent's waitpid sees a signal death, exactly like an OOM killer or
  a segfaulting kernel;
* ``"worker_oom"`` — the worker clamps its own address-space rlimit
  and then allocates until ``MemoryError``, dying with a distinct exit
  code (a realistic out-of-memory death, not a simulated one);
* ``"frame_corrupt"`` — the worker flips bytes in one response frame
  *after* computing its CRC, so the front-end's checksum verification
  must reject the frame and answer that request with a retryable
  error.

:class:`ScheduledFaultPlan` is the precision variant for drills: it
fires a chosen kind at explicit indices (``at=(3,)`` = sabotage the
third dispatch cycle) instead of rolling seeded dice per index.

Everything here is picklable on purpose: process-mode workers receive
the :class:`FaultSpec` inside the task payload (see
:func:`repro.service.pool._run_faulted_on_worker_graph`).

:class:`DivergentController` is the controller-level fault: a proxy
that behaves like the wrapped :class:`~repro.core.controller.SetpointController`
for ``after`` decisions and then emits non-finite deltas — the input
the :mod:`repro.resilience.guard` watchdog exists to survive.
"""

from __future__ import annotations

import math
import os
import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

__all__ = [
    "ALL_FAULT_KINDS",
    "FAULT_KINDS",
    "NET_FAULT_KINDS",
    "WORKER_FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrashError",
    "InjectedShardCrash",
    "InjectedTransientError",
    "ScheduledFaultPlan",
    "apply_fault",
    "plan_from_wire",
    "plan_to_wire",
    "DivergentController",
]

FAULT_KINDS = ("transient", "crash", "hang", "corrupt", "poolbreak")

# worker-process kinds: decided by the same machinery, shipped over the
# frame protocol and interpreted inside `repro shard-worker` processes
WORKER_FAULT_KINDS = ("worker_kill", "worker_oom", "frame_corrupt")

# network-tier kinds: decided by the same seeded machinery, interpreted
# by repro.net (shard dispatcher / TCP server / worker), never by
# apply_fault
NET_FAULT_KINDS = (
    "shard_crash", "dispatcher_hang", "slow_shard", "conn_drop"
) + WORKER_FAULT_KINDS

ALL_FAULT_KINDS = FAULT_KINDS + NET_FAULT_KINDS


class InjectedTransientError(RuntimeError):
    """A deliberately injected transient failure (retry should absorb it)."""


class InjectedCrashError(RuntimeError):
    """A deliberately injected worker crash (simulated, in-band)."""


class InjectedShardCrash(BaseException):
    """A deliberately injected shard-dispatcher death.

    Deliberately a ``BaseException``: a real dispatcher thread can die
    from things ``except Exception`` never sees (``SystemExit``,
    ``KeyboardInterrupt``, interpreter teardown), and the shard's
    pending-future cleanup must survive exactly that class of exit.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One concrete sabotage decision for one task."""

    kind: str
    hang_seconds: float = 0.25
    slow_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in ALL_FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} "
                f"(have {', '.join(ALL_FAULT_KINDS)})"
            )
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be >= 0")
        if self.slow_seconds < 0:
            raise ValueError("slow_seconds must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of task sabotage.

    ``decide(i)`` answers "what happens to the i-th submitted task":
    ``None`` (run clean) or a :class:`FaultSpec`.  ``rate`` is the
    per-task fault probability; ``kinds`` the pool the sabotage is
    drawn from, uniformly.
    """

    rate: float
    seed: int = 0
    kinds: Tuple[str, ...] = ("transient", "crash", "hang")
    hang_seconds: float = 0.25
    slow_seconds: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if not self.kinds:
            raise ValueError("kinds must not be empty")
        for kind in self.kinds:
            if kind not in ALL_FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} "
                    f"(have {', '.join(ALL_FAULT_KINDS)})"
                )
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be >= 0")
        if self.slow_seconds < 0:
            raise ValueError("slow_seconds must be >= 0")

    def decide(self, index: int) -> Optional[FaultSpec]:
        """The fault for task ``index`` (deterministic in seed and index)."""
        rng = random.Random(self.seed * 1_000_003 + index)
        if rng.random() >= self.rate:
            return None
        return FaultSpec(
            kind=rng.choice(self.kinds),
            hang_seconds=self.hang_seconds,
            slow_seconds=self.slow_seconds,
        )

    def count(self, tasks: int) -> int:
        """How many of the first ``tasks`` submissions get sabotaged."""
        return sum(1 for i in range(tasks) if self.decide(i) is not None)

    @classmethod
    def parse_kinds(cls, spec: str) -> Tuple[str, ...]:
        """``"crash,hang"`` -> ``("crash", "hang")``, validated."""
        kinds = tuple(k.strip() for k in spec.split(",") if k.strip())
        for kind in kinds:
            if kind not in ALL_FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} "
                    f"(have {', '.join(ALL_FAULT_KINDS)})"
                )
        return kinds


@dataclass(frozen=True)
class ScheduledFaultPlan:
    """A fault plan that fires at explicit indices, not by seeded dice.

    Drills want precision ("crash the dispatcher on its third cycle,
    once"), not probability.  ``decide(i)`` returns a
    :class:`FaultSpec` of ``kind`` exactly when ``i`` is in ``at``.
    The surface matches :class:`FaultPlan` where the serving layer
    cares (``decide`` / ``count`` / ``kinds``), so shard and server
    fault hooks accept either interchangeably.
    """

    at: Tuple[int, ...]
    kind: str = "shard_crash"
    hang_seconds: float = 0.25
    slow_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in ALL_FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} "
                f"(have {', '.join(ALL_FAULT_KINDS)})"
            )
        for index in self.at:
            if index < 0:
                raise ValueError("schedule indices must be >= 0")

    @property
    def kinds(self) -> Tuple[str, ...]:
        return (self.kind,)

    def decide(self, index: int) -> Optional[FaultSpec]:
        if index not in self.at:
            return None
        return FaultSpec(
            kind=self.kind,
            hang_seconds=self.hang_seconds,
            slow_seconds=self.slow_seconds,
        )

    def count(self, tasks: int) -> int:
        return sum(1 for i in self.at if i < tasks)


def plan_to_wire(plan) -> Optional[dict]:
    """A JSON-safe description of a fault plan (worker bootstrap).

    Out-of-process shard workers receive their fault plan inside the
    CONFIG frame; this is the encoding.  ``None`` stays ``None``.
    """
    if plan is None:
        return None
    if isinstance(plan, ScheduledFaultPlan):
        return {
            "type": "scheduled",
            "at": list(plan.at),
            "kind": plan.kind,
            "hang_seconds": plan.hang_seconds,
            "slow_seconds": plan.slow_seconds,
        }
    if isinstance(plan, FaultPlan):
        return {
            "type": "seeded",
            "rate": plan.rate,
            "seed": plan.seed,
            "kinds": list(plan.kinds),
            "hang_seconds": plan.hang_seconds,
            "slow_seconds": plan.slow_seconds,
        }
    raise TypeError(
        f"cannot serialize fault plan of type {type(plan).__name__}"
    )


def plan_from_wire(data: Optional[dict]):
    """Invert :func:`plan_to_wire`; validation re-runs in the plan."""
    if data is None:
        return None
    plan_type = data.get("type")
    if plan_type == "scheduled":
        return ScheduledFaultPlan(
            at=tuple(int(i) for i in data["at"]),
            kind=data["kind"],
            hang_seconds=float(data.get("hang_seconds", 0.25)),
            slow_seconds=float(data.get("slow_seconds", 0.05)),
        )
    if plan_type == "seeded":
        return FaultPlan(
            rate=float(data["rate"]),
            seed=int(data.get("seed", 0)),
            kinds=tuple(data["kinds"]),
            hang_seconds=float(data.get("hang_seconds", 0.25)),
            slow_seconds=float(data.get("slow_seconds", 0.05)),
        )
    raise ValueError(f"unknown fault plan wire type {plan_type!r}")


def _corrupt(result: object) -> object:
    """Damage a task result in a way validation must detect."""
    dist = getattr(result, "dist", None)
    if dist is not None:
        try:
            import numpy as np

            bad = np.where(np.isfinite(dist), -(dist + 1.0), dist)
            return type(result)(
                dist=bad,
                source=result.source,
                iterations=result.iterations,
                relaxations=result.relaxations,
                algorithm=result.algorithm,
                extra=dict(result.extra or {}, corrupted=True),
            )
        except Exception:
            pass
    return "corrupted-result"


def apply_fault(fault: Optional[FaultSpec], call: Callable[[], object], *,
                in_process_worker: bool = False) -> object:
    """Run ``call`` under ``fault`` (``None`` = run clean).

    ``in_process_worker`` tells ``poolbreak`` whether it may really
    kill the hosting process; thread workers downgrade it to an
    in-band crash so the server itself survives.
    """
    if fault is None:
        return call()
    if fault.kind in NET_FAULT_KINDS:
        raise ValueError(
            f"network-tier fault {fault.kind!r} cannot be applied to a "
            "pool task; it belongs to the repro.net shard/server hooks"
        )
    if fault.kind == "transient":
        raise InjectedTransientError("injected transient fault")
    if fault.kind == "crash":
        raise InjectedCrashError("injected worker crash")
    if fault.kind == "poolbreak":
        if in_process_worker:
            os._exit(13)  # a real worker death: the pool sees BrokenProcessPool
        raise InjectedCrashError("injected worker crash (poolbreak on threads)")
    if fault.kind == "hang":
        time.sleep(fault.hang_seconds)
        return call()
    # corrupt
    return _corrupt(call())


class DivergentController:
    """A controller proxy that goes insane after ``after`` decisions.

    Wraps a real :class:`~repro.core.controller.SetpointController`
    and delegates everything, except that :meth:`plan` starts emitting
    deltas from ``schedule`` once the wrapped controller has made
    ``after`` decisions.  The default schedule is NaN forever — the
    canonical "SGD blew up" failure.  Pass e.g.
    ``schedule=itertools.cycle([1e-12, 1e12])`` for violent
    oscillation instead.

    Swap it onto a stepper to force a divergence::

        stepper = AdaptiveNearFarStepper(graph, source, params)
        stepper.controller = DivergentController(stepper.controller, after=3)
    """

    def __init__(self, controller, *, after: int = 3, schedule=None):
        self._controller = controller
        self._after = after
        self._schedule = schedule
        self._decisions = 0
        self._last_poison: Optional[float] = None

    def __getattr__(self, name):
        return getattr(self._controller, name)

    @property
    def delta(self) -> float:
        # repeat the latest poisoned value rather than advancing the
        # schedule: only plan() consumes it, so the sequence of planned
        # deltas is exactly the schedule regardless of how often other
        # code reads .delta
        if self._decisions > self._after:
            if self._last_poison is None:
                self._last_poison = self._next_poison()
            return self._last_poison
        return self._controller.delta

    def _next_poison(self) -> float:
        value = math.nan if self._schedule is None else next(self._schedule)
        self._last_poison = value
        return value

    def plan(self, x4, **kwargs):
        from repro.core.controller import DeltaDecision

        self._decisions += 1
        if self._decisions <= self._after:
            return self._controller.plan(x4, **kwargs)
        bad = self._next_poison()
        return DeltaDecision(
            delta=bad,
            delta_change=bad - self._controller.delta,
            alpha_used=math.nan,
            target_frontier=math.nan,
            bootstrapped=False,
        )
