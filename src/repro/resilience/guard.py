"""Controller divergence watchdog (graceful degradation to near-far).

The set-point controller learns ``d`` and ``α`` by SGD (paper Eq. 6 /
Algorithm 1).  On well-behaved inputs it settles in a handful of
iterations; on adversarial degree distributions a learned model can
blow up — NaN deltas out of a degenerate α, runaway deltas from a
mis-scaled gradient, or limit-cycle oscillation where every update
slams the slew-rate limiter in alternating directions.

Correctness never depends on the controller (near+far is
label-correcting under any delta schedule), but *termination in
reasonable time* does: a NaN delta stalls the window, a runaway delta
degrades the run to Bellman-Ford-ish behaviour.  The
:class:`DivergenceGuard` watches every decision and tells the stepper
to **fall back to a static delta** — the last decision that still
looked sane — turning the rest of the run into plain near-far.  The
run completes with exact distances; only the self-tuning is lost.

Detection rules (any one trips the guard):

* **non-finite** — δ is NaN/±inf or not positive;
* **runaway** — δ left ``[initial/max_ratio, initial*max_ratio]``;
* **oscillation** — over the last ``window`` decisions the δ-change
  sign alternated every time *and* the mean |Δδ| exceeded
  ``oscillation_ratio`` × the mean δ (the controller is slamming its
  slew limiter back and forth), or the advance workload X^(2) did the
  equivalent with swings above ``oscillation_ratio`` × its mean.

Thresholds are deliberately conservative: a settling controller
under-shoots and corrects, which is two or three alternations, not
``window`` of them at full amplitude.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

__all__ = ["GuardConfig", "DivergenceGuard"]


@dataclass(frozen=True)
class GuardConfig:
    """Watchdog thresholds (see module docstring for the rules)."""

    window: int = 8
    max_ratio: float = 1e9
    oscillation_ratio: float = 1.5

    def __post_init__(self) -> None:
        if self.window < 3:
            raise ValueError("window must be >= 3")
        if self.max_ratio <= 1.0:
            raise ValueError("max_ratio must be > 1")
        if self.oscillation_ratio <= 0:
            raise ValueError("oscillation_ratio must be positive")


def _alternating_and_violent(values: Deque[float], ratio: float) -> bool:
    """Every consecutive diff flips sign and mean |diff| > ratio*mean|v|."""
    seq = list(values)
    diffs = [b - a for a, b in zip(seq, seq[1:])]
    if len(diffs) < 2 or any(d == 0.0 for d in diffs):
        return False
    if any((a > 0) == (b > 0) for a, b in zip(diffs, diffs[1:])):
        return False
    mean_level = sum(abs(v) for v in seq) / len(seq)
    if mean_level <= 0:
        return False
    mean_swing = sum(abs(d) for d in diffs) / len(diffs)
    return mean_swing > ratio * mean_level


class DivergenceGuard:
    """Observes (δ, X^(2)) per iteration; remembers the last good δ."""

    def __init__(self, initial_delta: float, config: GuardConfig | None = None):
        if not (math.isfinite(initial_delta) and initial_delta > 0):
            raise ValueError("initial_delta must be finite and positive")
        self.config = config or GuardConfig()
        self.initial_delta = initial_delta
        self.last_good_delta = initial_delta
        self.diverged = False
        self.reason: Optional[str] = None
        self._deltas: Deque[float] = deque(maxlen=self.config.window)
        self._x2s: Deque[float] = deque(maxlen=self.config.window)

    def observe(self, delta: float, x2: float) -> bool:
        """Feed one decision; returns True the moment divergence is seen.

        After tripping, the guard latches: further observations keep
        returning True and ``last_good_delta`` stays frozen.
        """
        if self.diverged:
            return True
        cfg = self.config
        if not (math.isfinite(delta) and delta > 0):
            return self._trip(f"non-finite delta {delta!r}")
        if delta > self.initial_delta * cfg.max_ratio or (
            delta < self.initial_delta / cfg.max_ratio
        ):
            return self._trip(
                f"runaway delta {delta:.3g} "
                f"(initial {self.initial_delta:.3g}, ratio limit {cfg.max_ratio:g})"
            )
        self._deltas.append(float(delta))
        self._x2s.append(float(x2))
        if len(self._deltas) == cfg.window:
            if _alternating_and_violent(self._deltas, cfg.oscillation_ratio):
                return self._trip("oscillating delta (alternating slew-limit steps)")
            if _alternating_and_violent(self._x2s, cfg.oscillation_ratio):
                return self._trip("oscillating advance workload X^(2)")
        self.last_good_delta = float(delta)
        return False

    def _trip(self, reason: str) -> bool:
        self.diverged = True
        self.reason = reason
        return True
