"""Retry policy: exponential backoff, jitter, and an error classifier.

The query engine retries a failed task only when the failure looks
*transient* — a crashed worker, a timeout, a broken process pool, an
injected blip — and gives up immediately on *permanent* errors (bad
parameters, unknown algorithms) where a retry would just repeat the
rejection more slowly.

Backoff is exponential with deterministic jitter: delays for attempt
``a`` are ``base * multiplier**(a-1)``, capped at ``max_delay``, then
spread by ``±jitter`` using a RNG seeded from ``(seed, key)`` so two
runs of the same plan back off identically (and two concurrent queries
with different keys do not thunder in lockstep).

Result validation lives here too: :func:`validate_result` is the
engine's defence against *corrupted* results (a fault kind the
injection harness produces deliberately, and flaky hardware produces
accidentally).  A corrupt result raises :class:`CorruptResultError`,
which classifies as transient — rerunning the task is exactly the
right response.
"""

from __future__ import annotations

import random
import zlib
from concurrent.futures import BrokenExecutor, CancelledError
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass

__all__ = [
    "CorruptResultError",
    "RestartPolicy",
    "RetryPolicy",
    "classify_error",
    "validate_result",
]


class CorruptResultError(RuntimeError):
    """A task returned, but its result fails sanity validation."""


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry transient failures.

    ``max_attempts`` counts the first try: 3 means one run plus up to
    two retries.  ``max_attempts=1`` disables retrying.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, attempt: int, key: object = None) -> float:
        """Backoff before retry number ``attempt`` (1 = first retry).

        Deterministic in ``(seed, key, attempt)``; ``key`` is whatever
        identifies the work being retried (the engine passes the cache
        key) so distinct queries de-synchronise.
        """
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        delay = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter and delay > 0:
            # crc32, not hash(): str hashing is salted per process and
            # would make the jitter irreproducible across runs
            material = repr((self.seed, key, attempt)).encode()
            rng = random.Random(zlib.crc32(material))
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


@dataclass(frozen=True)
class RestartPolicy:
    """How often and how patiently to restart a dead component.

    The supervision analogue of :class:`RetryPolicy`: ``budget`` caps
    how many restarts one component may consume before the supervisor
    declares it permanently failed, and :meth:`delay` spaces the
    attempts with the same capped exponential backoff and
    deterministic jitter the retry layer uses (so two supervised
    deployments with the same seed restart on the same schedule).
    """

    budget: int = 5
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ValueError("budget must be >= 0")
        # delegate the remaining validation to RetryPolicy's rules
        self._backoff  # noqa: B018 — constructs, which validates

    @property
    def _backoff(self) -> RetryPolicy:
        return RetryPolicy(
            max_attempts=max(1, self.budget),
            base_delay=self.base_delay,
            max_delay=self.max_delay,
            multiplier=self.multiplier,
            jitter=self.jitter,
            seed=self.seed,
        )

    def delay(self, restart: int, key: object = None) -> float:
        """Backoff before restart number ``restart`` (1 = first restart)."""
        return self._backoff.delay(restart, key)

    def exhausted(self, restarts: int) -> bool:
        """True once ``restarts`` attempts have consumed the budget."""
        return restarts >= self.budget

    def max_recovery_seconds(self) -> float:
        """Upper bound on the total backoff a full budget can spend.

        Jitter-inclusive (worst case ``1 + jitter`` per delay) — the
        chaos drill uses this as its "recovered within the restart
        budget" deadline.
        """
        total = sum(
            min(self.base_delay * self.multiplier ** (k - 1), self.max_delay)
            for k in range(1, self.budget + 1)
        )
        return total * (1.0 + self.jitter)


def classify_error(exc: BaseException) -> str:
    """``"transient"`` (worth retrying) or ``"permanent"`` (give up).

    Transient: timeouts, broken/crashed workers, cancelled futures,
    OS-level hiccups, corrupt results, and anything carrying a truthy
    ``transient`` attribute (the injected fault exceptions do).
    Permanent: validation-style errors — ``ValueError``, ``KeyError``,
    ``TypeError`` — where the same input will fail the same way again.
    """
    if getattr(exc, "transient", False):
        return "transient"
    from repro.resilience.faults import InjectedCrashError, InjectedTransientError

    if isinstance(
        exc,
        (
            TimeoutError,
            FutureTimeoutError,  # its own class before Python 3.11
            BrokenExecutor,
            CancelledError,
            ConnectionError,
            InjectedCrashError,
            InjectedTransientError,
            CorruptResultError,
            MemoryError,
        ),
    ):
        return "transient"
    if isinstance(exc, OSError):
        return "transient"
    return "permanent"


def validate_result(result: object, *, num_nodes: int, source: int) -> None:
    """Sanity-check an SSSP result before it is cached or served.

    Raises :class:`CorruptResultError` when the result is not a
    distance vector of the right shape, the source distance is not 0,
    or any distance is negative or NaN — all impossible outcomes of a
    correct run on non-negative weights, all cheap to check, and all
    exactly what the ``corrupt`` fault kind produces.
    """
    import numpy as np

    dist = getattr(result, "dist", None)
    if dist is None:
        raise CorruptResultError(
            f"task returned {type(result).__name__}, not an SSSP result"
        )
    dist = np.asarray(dist)
    if dist.shape != (num_nodes,):
        raise CorruptResultError(
            f"distance vector has shape {dist.shape}, expected ({num_nodes},)"
        )
    if not float(dist[source]) == 0.0:
        raise CorruptResultError(
            f"distance to source is {dist[source]!r}, expected 0"
        )
    finite = dist[np.isfinite(dist)]
    if finite.size and float(finite.min()) < 0.0:
        raise CorruptResultError("negative distance in result")
    if np.isnan(dist).any():
        raise CorruptResultError("NaN distance in result")
