"""Resilience: fault injection, retries, circuit breaking, guardrails.

The query service (:mod:`repro.service`) answers SSSP queries from a
worker pool; this package is its failure story, plus the controller's:

* :mod:`~repro.resilience.faults` — a seeded, deterministic
  :class:`FaultPlan` that sabotages pool tasks (crashes, hangs,
  corrupted results, transients, real process deaths) for tests, CI
  and the ``repro faults`` chaos command;
* :mod:`~repro.resilience.retry` — exponential backoff with
  deterministic jitter, a transient/permanent error classifier, and
  result sanity validation (corrupt results are caught, classified
  transient, and re-run);
* :mod:`~repro.resilience.breaker` — circuit breakers per
  ``(graph, algorithm)`` so one poisoned corridor fails fast instead
  of monopolising the pool with retry storms;
* :mod:`~repro.resilience.guard` — the controller divergence watchdog
  that degrades a blown-up adaptive run to plain near-far with the
  last-good static delta (exact distances, minus the self-tuning).

The README's *Resilience* section documents the knobs, the ``health``
op wire schema and the fallback semantics.
"""

from repro.resilience.breaker import BreakerBoard, BreakerConfig, CircuitBreaker
from repro.resilience.faults import (
    ALL_FAULT_KINDS,
    FAULT_KINDS,
    NET_FAULT_KINDS,
    WORKER_FAULT_KINDS,
    DivergentController,
    FaultPlan,
    FaultSpec,
    InjectedCrashError,
    InjectedShardCrash,
    InjectedTransientError,
    ScheduledFaultPlan,
    apply_fault,
    plan_from_wire,
    plan_to_wire,
)
from repro.resilience.guard import DivergenceGuard, GuardConfig
from repro.resilience.retry import (
    CorruptResultError,
    RestartPolicy,
    RetryPolicy,
    classify_error,
    validate_result,
)

__all__ = [
    "ALL_FAULT_KINDS",
    "BreakerBoard",
    "BreakerConfig",
    "CircuitBreaker",
    "CorruptResultError",
    "DivergenceGuard",
    "DivergentController",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "GuardConfig",
    "InjectedCrashError",
    "InjectedShardCrash",
    "InjectedTransientError",
    "NET_FAULT_KINDS",
    "RestartPolicy",
    "RetryPolicy",
    "ScheduledFaultPlan",
    "WORKER_FAULT_KINDS",
    "apply_fault",
    "classify_error",
    "plan_from_wire",
    "plan_to_wire",
    "validate_result",
]
