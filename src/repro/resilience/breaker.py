"""Circuit breakers, one per (graph, algorithm) corridor.

A poisoned graph — adversarial weights that hang the adaptive stepper,
a file that deserialises into garbage — must not be allowed to eat the
pool one retry storm at a time.  The engine keys a breaker on
``(graph_id, algorithm)``: after ``failure_threshold`` *consecutive*
failures the breaker **opens** and further queries on that corridor
fail fast (no pool submission, no retries).  After ``reset_seconds``
it **half-opens** and lets exactly one probe query through: success
closes the breaker, failure re-opens it and restarts the timer.

The clock is injectable so tests drive the timer by hand instead of
sleeping.  State transitions are published as
``service.breaker.opened`` / ``.closed`` counters and, when an event
sink is active, ``breaker_open`` / ``breaker_close`` events.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro import obs

__all__ = ["BreakerConfig", "CircuitBreaker", "BreakerBoard"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    """Breaker tuning. ``failure_threshold=0`` disables tripping."""

    failure_threshold: int = 5
    reset_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 0:
            raise ValueError("failure_threshold must be >= 0")
        if self.reset_seconds <= 0:
            raise ValueError("reset_seconds must be positive")


class CircuitBreaker:
    """Closed -> open -> half-open -> closed, the classic state machine."""

    def __init__(
        self,
        config: BreakerConfig,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probing = False
        self.opens = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        # lock held by caller
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.config.reset_seconds
        ):
            self._state = HALF_OPEN
            self._probing = False
        return self._state

    def allow(self) -> bool:
        """May a request proceed right now?

        In ``half-open`` exactly one caller gets ``True`` (the probe);
        the rest wait for its verdict.
        """
        with self._lock:
            state = self._effective_state()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probing = False
            if self._state != CLOSED:
                self._state = CLOSED
                self._opened_at = None

    def record_failure(self) -> bool:
        """Count a failure; returns True when this one opened the breaker."""
        with self._lock:
            self._consecutive_failures += 1
            self._probing = False
            threshold = self.config.failure_threshold
            state = self._effective_state()
            should_open = threshold > 0 and (
                state == HALF_OPEN or self._consecutive_failures >= threshold
            )
            if should_open and state != OPEN:
                self._state = OPEN
                self._opened_at = self._clock()
                self.opens += 1
                return True
            if should_open:  # already open: keep the timer fresh
                self._opened_at = self._clock()
            return False

    def snapshot(self) -> dict:
        with self._lock:
            state = self._effective_state()
            return {
                "state": state,
                "consecutive_failures": self._consecutive_failures,
                "opens": self.opens,
                "open_for_seconds": (
                    round(self._clock() - self._opened_at, 3)
                    if self._state == OPEN and self._opened_at is not None
                    else None
                ),
            }


class BreakerBoard:
    """The engine's breakers, keyed on ``(graph_id, algorithm)``."""

    def __init__(
        self,
        config: BreakerConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or BreakerConfig()
        self._clock = clock
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}
        self._lock = threading.Lock()
        registry = obs.get_registry()
        self._m_opened = registry.counter("service.breaker.opened")
        self._m_closed = registry.counter("service.breaker.closed")
        self._m_rejections = registry.counter("service.breaker.rejections")
        self._events = obs.get_events()

    def get(self, graph_id: str, algorithm: str) -> CircuitBreaker:
        key = (graph_id, algorithm)
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(self.config, clock=self._clock)
                self._breakers[key] = breaker
            return breaker

    def allow(self, graph_id: str, algorithm: str) -> bool:
        allowed = self.get(graph_id, algorithm).allow()
        if not allowed:
            self._m_rejections.inc()
        return allowed

    def record_success(self, graph_id: str, algorithm: str) -> None:
        breaker = self.get(graph_id, algorithm)
        was_open = breaker.state != CLOSED
        breaker.record_success()
        if was_open:
            self._m_closed.inc()
            if self._events.enabled:
                self._events.emit(
                    {
                        "type": "breaker_close",
                        "graph": graph_id,
                        "algorithm": algorithm,
                    }
                )

    def record_failure(self, graph_id: str, algorithm: str) -> None:
        if self.get(graph_id, algorithm).record_failure():
            self._m_opened.inc()
            if self._events.enabled:
                self._events.emit(
                    {
                        "type": "breaker_open",
                        "graph": graph_id,
                        "algorithm": algorithm,
                        "failures": self.get(graph_id, algorithm)
                        .snapshot()["consecutive_failures"],
                    }
                )

    def snapshot(self) -> List[dict]:
        """All breakers, sorted by key, JSON-ready (the ``health`` op)."""
        with self._lock:
            items = sorted(self._breakers.items())
        return [
            {"graph": graph, "algorithm": algorithm, **breaker.snapshot()}
            for (graph, algorithm), breaker in items
        ]

    def open_count(self) -> int:
        with self._lock:
            breakers = list(self._breakers.values())
        return sum(1 for b in breakers if b.state == OPEN)
