"""F3 — Figure 3: Cal (road network) performance versus delta.

The paper shows, on Cal, how the static delta shapes the frontier-size
series and the resulting runtime: "A small delta results in sub-par
parallelism, and consequently, longer running time.  As delta
increases, the peak parallelism ... grows proportionally, resulting in
a reduced number of iterations."

``run_fig3`` returns, per swept delta: iteration count, peak/mean
frontier size, total (redundant) work, and simulated runtime on the
TK1 — plus the raw frontier-size series for a small/medium/large delta
triple (the three curves of the paper's plot).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.report import banner, format_series, format_table
from repro.experiments.runner import pick_source, run_baseline
from repro.gpusim.device import JETSON_TK1
from repro.gpusim.dvfs import FixedDVFS
from repro.gpusim.executor import simulate_run
from repro.sssp.nearfar import suggest_delta

__all__ = ["Fig3Result", "run_fig3", "main"]


@dataclass(frozen=True)
class Fig3Result:
    rows: List[dict]
    series: Dict[str, np.ndarray]  # label -> frontier-size (X^(2)) series


def run_fig3(config: ExperimentConfig | None = None) -> Fig3Result:
    config = config or default_config()
    graph = config.dataset("cal")
    source = pick_source(graph)
    base = suggest_delta(graph)
    policy = FixedDVFS.max_performance(JETSON_TK1)

    rows: List[dict] = []
    series: Dict[str, np.ndarray] = {}
    mults = config.delta_multipliers
    picked = {mults[0], mults[len(mults) // 2], mults[-1]}
    for mult in mults:
        delta = base * mult
        result, trace = run_baseline(graph, source, delta)
        run = simulate_run(trace, JETSON_TK1, policy)
        par = trace.parallelism
        rows.append(
            {
                "delta": round(delta, 4),
                "iterations": result.iterations,
                "peak frontier": int(par.max()) if par.size else 0,
                "mean frontier": round(float(par.mean()), 1) if par.size else 0,
                "relaxations": result.relaxations,
                "sim time (ms)": round(run.total_seconds * 1e3, 3),
                "energy (J)": round(run.total_energy_j, 4),
            }
        )
        if mult in picked:
            series[f"delta={delta:.3g}"] = par
    return Fig3Result(rows=rows, series=series)


def main(config: ExperimentConfig | None = None) -> str:
    res = run_fig3(config)
    chunks = [banner("Figure 3: Cal performance versus delta"), format_table(res.rows), ""]
    for label, s in res.series.items():
        chunks.append(format_series(f"frontier size {label}", s))
    text = "\n".join(chunks)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
