"""Plain-text rendering of experiment results.

The harness prints the same rows and series the paper's tables and
figures report; these helpers keep the formatting uniform (fixed-width
ASCII tables, sparkline-style series, section banners).
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

import numpy as np

__all__ = ["banner", "format_table", "format_series", "sparkline"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def banner(title: str, width: int = 78) -> str:
    """A section banner: ``=== title ===`` padded to ``width``."""
    pad = max(width - len(title) - 8, 0)
    return f"=== {title} ===" + "=" * pad


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]]) -> str:
    """Render dict rows as an aligned ASCII table (keys of the first row
    define the column order)."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    table: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        table.append([_cell(row.get(c, "")) for c in columns])
    widths = [max(len(r[i]) for r in table) for i in range(len(columns))]
    lines = []
    header = "  ".join(t.ljust(w) for t, w in zip(table[0], widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in table[1:]:
        lines.append("  ".join(t.rjust(w) for t, w in zip(r, widths)))
    return "\n".join(lines)


def sparkline(values: Iterable[float], width: int = 64) -> str:
    """Compress a series into a unicode block sparkline of ``width`` chars."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return ""
    if arr.size > width:
        # bucket-average down to width
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.asarray(
            [arr[a:b].mean() if b > a else 0.0 for a, b in zip(edges[:-1], edges[1:])]
        )
    lo, hi = float(arr.min()), float(arr.max())
    if hi <= lo:
        return _BLOCKS[1] * arr.size
    levels = ((arr - lo) / (hi - lo) * (len(_BLOCKS) - 2) + 1).astype(int)
    return "".join(_BLOCKS[i] for i in levels)


def format_series(
    label: str, values: Iterable[float], width: int = 64
) -> str:
    """One labelled sparkline row with min/max annotations."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return f"{label}: (empty)"
    return (
        f"{label:<28s} {sparkline(arr, width)}  "
        f"[min {_cell(float(arr.min()))}, max {_cell(float(arr.max()))}, "
        f"n={arr.size}]"
    )
