"""F5 — Figure 5: efficacy of parallelism control.

The paper, on the Cal road network, compares the distribution of
available parallelism across iterations for the self-tuning algorithm
at three set-points against the time-minimising baseline.  Claims:

* at each set-point the controller keeps the *median* parallelism
  close to ``P`` with most mass near the median;
* the baseline has a much lower median and much higher variance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.report import banner, format_table
from repro.experiments.runner import (
    find_time_minimizing_delta,
    pick_source,
    run_adaptive,
    run_baseline,
    scaled_setpoints,
)
from repro.gpusim.device import JETSON_TK1
from repro.instrument.stats import DistributionSummary, iqr_fraction_near, summarize

__all__ = ["Fig5Row", "run_fig5", "main"]


@dataclass(frozen=True)
class Fig5Row:
    label: str
    setpoint: float | None  # None = baseline
    summary: DistributionSummary
    mass_near_target: float  # fraction of iterations within P*(1 +- 0.5)

    def as_row(self) -> dict:
        return {
            "configuration": self.label,
            "P": round(self.setpoint, 0) if self.setpoint else "-",
            "median": round(self.summary.median, 1),
            "p25": round(self.summary.p25, 1),
            "p75": round(self.summary.p75, 1),
            "mean": round(self.summary.mean, 1),
            "cv": round(self.summary.cv, 3),
            "mass near P": round(self.mass_near_target, 3) if self.setpoint else "-",
        }


def run_fig5(
    config: ExperimentConfig | None = None, dataset: str = "cal"
) -> List[Fig5Row]:
    config = config or default_config()
    graph = config.dataset(dataset)
    source = pick_source(graph)

    best_delta, _ = find_time_minimizing_delta(
        graph, source, JETSON_TK1, config.delta_multipliers
    )
    _, base_trace = run_baseline(graph, source, best_delta)
    rows = [
        Fig5Row(
            label=f"Near+Far (delta={best_delta:.3g})",
            setpoint=None,
            summary=summarize(base_trace.parallelism),
            mass_near_target=0.0,
        )
    ]
    for setpoint in scaled_setpoints(dataset, config.scale):
        _, trace = run_adaptive(graph, source, setpoint)
        par = trace.parallelism
        rows.append(
            Fig5Row(
                label=f"self-tuning P={setpoint:.0f}",
                setpoint=setpoint,
                summary=summarize(par),
                mass_near_target=iqr_fraction_near(par, setpoint, tolerance=0.5),
            )
        )
    return rows


def main(config: ExperimentConfig | None = None, dataset: str = "cal") -> str:
    rows = run_fig5(config, dataset)
    text = "\n".join(
        [
            banner(f"Figure 5: efficacy of parallelism control ({dataset})"),
            format_table([r.as_row() for r in rows]),
        ]
    )
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
