"""A4 — source robustness of the parallelism control.

Figure 5 is measured from a single source; a fair question is whether
the controller's tracking depends on where the run starts (a hub
source front-loads parallelism; a peripheral one ramps slowly).  This
experiment repeats the Figure-5 measurement over a batch of sampled
sources and reports the pooled parallelism distribution per
configuration — if the controller is doing its job, the pooled median
still sits at P and the baseline still spreads.

A second drill attacks the controller itself: mid-run its decisions
are replaced with NaN deltas (:class:`~repro.resilience.DivergentController`)
and the run must complete through the divergence guard's static-delta
fallback with distances still identical to Dijkstra — the failure
mode the :mod:`repro.resilience` layer exists to contain.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core import AdaptiveParams, adaptive_sssp
from repro.core.stepwise import AdaptiveNearFarStepper
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.report import banner, format_table
from repro.experiments.runner import (
    find_time_minimizing_delta,
    run_source_batch,
    scaled_setpoints,
)
from repro.gpusim.device import JETSON_TK1
from repro.instrument.stats import iqr_fraction_near
from repro.resilience import DivergentController
from repro.sssp.batch import pooled_parallelism, sample_sources
from repro.sssp.dijkstra import dijkstra
from repro.sssp.nearfar import nearfar_sssp

__all__ = ["run_robustness", "run_divergence_drill", "main"]


def run_robustness(
    config: ExperimentConfig | None = None,
    *,
    num_sources: int = 5,
    max_workers: int | None = None,
) -> Dict[str, List[dict]]:
    config = config or default_config()
    out: Dict[str, List[dict]] = {}
    for name, graph in config.datasets().items():
        sources = sample_sources(graph, num_sources, seed=config.seed)
        probe = int(sources[0])
        best_delta, _ = find_time_minimizing_delta(
            graph, probe, JETSON_TK1, config.delta_multipliers
        )

        rows: List[dict] = []
        base = run_source_batch(
            graph,
            sources,
            lambda g, s: nearfar_sssp(g, s, delta=best_delta),
            label=f"near+far delta={best_delta:.3g}",
            max_workers=max_workers,
        )
        row = base.as_row()
        row["mass near P"] = "-"
        rows.append(row)

        setpoint = scaled_setpoints(name, config.scale)[1]

        def tuned_runner(g, s):
            result, trace, _ = adaptive_sssp(
                g, s, AdaptiveParams(setpoint=setpoint)
            )
            return result, trace

        tuned = run_source_batch(
            graph,
            sources,
            tuned_runner,
            label=f"self-tuning P={setpoint:.0f}",
            max_workers=max_workers,
        )
        row = tuned.as_row()
        row["mass near P"] = round(
            iqr_fraction_near(pooled_parallelism(tuned.traces), setpoint, 0.5), 3
        )
        rows.append(row)
        out[name] = rows
    return out


def run_divergence_drill(
    config: ExperimentConfig | None = None, *, after: int = 3
) -> List[dict]:
    """Force a NaN-emitting controller on each dataset; one row per run.

    The guard must trip, the run must finish on the frozen last-good
    delta, and the distances must still match Dijkstra exactly.
    """
    config = config or default_config()
    rows: List[dict] = []
    for name, graph in config.datasets().items():
        source = int(sample_sources(graph, 1, seed=config.seed)[0])
        setpoint = scaled_setpoints(name, config.scale)[1]
        stepper = AdaptiveNearFarStepper(
            graph, source, AdaptiveParams(setpoint=setpoint)
        )
        stepper.controller = DivergentController(stepper.controller, after=after)
        result = stepper.run()
        reference = dijkstra(graph, source)
        exact = bool(
            np.array_equal(
                np.isfinite(result.dist), np.isfinite(reference.dist)
            )
            and np.allclose(
                result.dist[np.isfinite(reference.dist)],
                reference.dist[np.isfinite(reference.dist)],
                rtol=1e-9,
                atol=1e-6,
            )
        )
        rows.append(
            {
                "graph": name,
                "fallback": result.extra["controller_fallback"],
                "reason": result.extra["fallback_reason"],
                "fallback delta": round(result.extra["final_delta"], 4),
                "exact vs dijkstra": exact,
            }
        )
    return rows


def main(config: ExperimentConfig | None = None) -> str:
    data = run_robustness(config)
    chunks = [banner("Source robustness of parallelism control (batched Fig. 5)")]
    for name, rows in data.items():
        chunks += [f"-- {name} --", format_table(rows)]
    chunks += [
        banner("Controller divergence drill (NaN deltas after 3 decisions)"),
        format_table(run_divergence_drill(config)),
    ]
    text = "\n".join(chunks)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
