"""A1 — ablation study of the controller's design choices.

Not a paper artifact: DESIGN.md calls for ablation benches on the
design decisions the paper motivates but does not isolate.  Four
variants run at the middle set-point on both datasets:

* **full** — the paper's controller as described;
* **no-bootstrap** — Eq. 8 disabled: the learned α is trusted from
  iteration one (the paper warns this makes "the algorithm unstable
  during initial iterations");
* **flat-queue** — the Section-4.6 recursive partitioning replaced by
  a flat far queue (every range query scans everything);
* **fixed-sgd** — Algorithm 1's adaptive learning rate replaced by
  damped-Newton steps with a constant rate.

Reported per variant: set-point tracking quality (median distance of
the steady-state parallelism from P, and CV), algorithmic work, far
queue traffic, and simulated time/energy on the TK1.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core import AdaptiveParams, adaptive_sssp
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.report import banner, format_table
from repro.experiments.runner import pick_source, scaled_setpoints
from repro.gpusim.device import JETSON_TK1
from repro.gpusim.dvfs import FixedDVFS
from repro.gpusim.executor import simulate_run

__all__ = ["ABLATION_VARIANTS", "run_ablations", "main"]

ABLATION_VARIANTS: Dict[str, dict] = {
    "full": {},
    "no-bootstrap": {"use_bootstrap": False},
    "flat-queue": {"use_partitions": False},
    "fixed-sgd": {"sgd_mode": "fixed"},
}


def _tracking_error(parallelism: np.ndarray, setpoint: float) -> float:
    """Median relative distance of steady-state X^(2) from P."""
    if parallelism.size == 0:
        return float("nan")
    steady = parallelism[parallelism.size // 5 :]
    if steady.size == 0:
        steady = parallelism
    return float(np.median(np.abs(steady - setpoint)) / setpoint)


def run_ablations(config: ExperimentConfig | None = None) -> Dict[str, List[dict]]:
    config = config or default_config()
    policy = FixedDVFS.max_performance(JETSON_TK1)
    out: Dict[str, List[dict]] = {}
    for name, graph in config.datasets().items():
        source = pick_source(graph)
        setpoint = scaled_setpoints(name, config.scale)[1]
        rows: List[dict] = []
        for variant, overrides in ABLATION_VARIANTS.items():
            result, trace, controller = adaptive_sssp(
                graph,
                source,
                AdaptiveParams(setpoint=setpoint, **overrides),
            )
            run = simulate_run(trace, JETSON_TK1, policy)
            far_traffic = int(
                trace.column("moved_from_far").sum()
                + trace.column("moved_to_far").sum()
            )
            rows.append(
                {
                    "variant": variant,
                    "P": round(setpoint, 0),
                    "iterations": result.iterations,
                    "tracking err": round(_tracking_error(trace.parallelism, setpoint), 3),
                    "cv": round(trace.parallelism_cv, 3),
                    "relaxations": result.relaxations,
                    "far traffic": far_traffic,
                    "sim time (ms)": round(run.total_seconds * 1e3, 3),
                    "energy (J)": round(run.total_energy_j, 4),
                }
            )
        out[name] = rows
    return out


def main(config: ExperimentConfig | None = None) -> str:
    data = run_ablations(config)
    chunks = [banner("Ablations: controller design choices")]
    for name, rows in data.items():
        chunks += [f"-- {name} --", format_table(rows)]
    text = "\n".join(chunks)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
