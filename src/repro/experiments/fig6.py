"""F6/F7 — Figures 6-7: performance versus power trade-off.

The paper's central result.  For each dataset and device, it compares:

* the **baseline** near+far at its time-minimising delta under the
  board's automatic DVFS — the (1, 1) reference point;
* the baseline at explicit core/memory frequency settings ("c/m"
  star markers);
* the **self-tuning** algorithm at three set-points, under the
  automatic policy and under each explicit frequency setting.

Every configuration is reported as (speedup, relative power) against
the reference, i.e. the exact axes of Figures 6 and 7.  Claims:

* on Cal, self-tuning points exist that are simultaneously faster and
  lower-power than the baseline (above the x = y diagonal);
* DVFS alone trades performance for power along one curve; composing
  it with the algorithmic knob reaches combinations DVFS cannot;
* the middle set-point tends to peak speedup (too much parallelism
  buys redundant work).

:func:`run_tradeoff` is shared by fig6 (TK1) and fig7 (TX1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.report import banner, format_table
from repro.experiments.runner import (
    find_time_minimizing_delta,
    frequency_settings,
    pick_source,
    run_adaptive,
    run_baseline,
    scaled_setpoints,
)
from repro.gpusim.device import DeviceSpec, get_device
from repro.gpusim.dvfs import FixedDVFS, default_governor
from repro.gpusim.executor import simulate_run

__all__ = ["TradeoffPoint", "run_tradeoff", "run_fig6", "main"]


@dataclass(frozen=True)
class TradeoffPoint:
    """One marker of the paper's scatter plots."""

    algorithm: str  # "baseline" | "self-tuning"
    dvfs: str  # "auto" or "c/m"
    setpoint: float | None
    speedup: float  # baseline-auto time / this time
    relative_power: float  # this avg power / baseline-auto avg power
    time_ms: float
    avg_power_w: float
    energy_j: float

    @property
    def energy_win(self) -> bool:
        """Above the x = y diagonal: speedup exceeds the power cost."""
        return self.speedup > self.relative_power

    def as_row(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "dvfs": self.dvfs,
            "P": round(self.setpoint, 0) if self.setpoint else "-",
            "speedup": round(self.speedup, 3),
            "rel power": round(self.relative_power, 3),
            "time (ms)": round(self.time_ms, 3),
            "power (W)": round(self.avg_power_w, 3),
            "energy (J)": round(self.energy_j, 4),
            "energy win": "yes" if self.energy_win else "no",
        }


def run_tradeoff(
    device: DeviceSpec,
    config: ExperimentConfig | None = None,
) -> Dict[str, List[TradeoffPoint]]:
    """The full Figure 6/7 matrix for one device: dataset -> points."""
    config = config or default_config()
    out: Dict[str, List[TradeoffPoint]] = {}

    for name, graph in config.datasets().items():
        source = pick_source(graph)
        best_delta, _ = find_time_minimizing_delta(
            graph, source, device, config.delta_multipliers
        )
        _, base_trace = run_baseline(graph, source, best_delta)

        # reference: baseline under the board's automatic policy
        ref = simulate_run(base_trace, device, default_governor(device))
        ref_time, ref_power = ref.total_seconds, ref.average_power_w
        points: List[TradeoffPoint] = [
            TradeoffPoint(
                algorithm="baseline",
                dvfs="auto",
                setpoint=None,
                speedup=1.0,
                relative_power=1.0,
                time_ms=ref_time * 1e3,
                avg_power_w=ref_power,
                energy_j=ref.total_energy_j,
            )
        ]

        settings = frequency_settings(device)

        # baseline at explicit frequencies
        for core, mem in settings:
            run = simulate_run(base_trace, device, FixedDVFS(device, core, mem))
            points.append(
                TradeoffPoint(
                    algorithm="baseline",
                    dvfs=f"{core}/{mem}",
                    setpoint=None,
                    speedup=ref_time / run.total_seconds,
                    relative_power=run.average_power_w / ref_power,
                    time_ms=run.total_seconds * 1e3,
                    avg_power_w=run.average_power_w,
                    energy_j=run.total_energy_j,
                )
            )

        # self-tuning at each set-point x {auto + explicit settings}
        for setpoint in scaled_setpoints(name, config.scale):
            _, trace = run_adaptive(graph, source, setpoint)
            for dvfs_label, policy in [("auto", default_governor(device))] + [
                (f"{c}/{m}", FixedDVFS(device, c, m)) for c, m in settings
            ]:
                run = simulate_run(trace, device, policy)
                points.append(
                    TradeoffPoint(
                        algorithm="self-tuning",
                        dvfs=dvfs_label,
                        setpoint=setpoint,
                        speedup=ref_time / run.total_seconds,
                        relative_power=run.average_power_w / ref_power,
                        time_ms=run.total_seconds * 1e3,
                        avg_power_w=run.average_power_w,
                        energy_j=run.total_energy_j,
                    )
                )
        out[name] = points
    return out


def run_fig6(config: ExperimentConfig | None = None) -> Dict[str, List[TradeoffPoint]]:
    """Figure 6: the trade-off matrix on the TK1."""
    return run_tradeoff(get_device("tk1"), config)


def main(
    config: ExperimentConfig | None = None, device_name: str = "tk1"
) -> str:
    device = get_device(device_name)
    data = run_tradeoff(device, config)
    fig = "6" if "tk1" in device.name else "7"
    chunks = [banner(f"Figure {fig}: performance versus power ({device.name})")]
    for name, points in data.items():
        chunks.append(f"-- {name} --")
        chunks.append(format_table([p.as_row() for p in points]))
    text = "\n".join(chunks)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
