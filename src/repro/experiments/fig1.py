"""F1 — Figure 1: concurrency profiles, baseline vs self-tuning.

The paper's Figure 1 shows, for a scale-free input, the per-iteration
available parallelism of (a) the baseline Gunrock SSSP and (b) the
proposed self-tuning algorithm, each with a rotated density inset.
The claim: the controller produces "a higher and more consistent
average over a smaller dynamic range".

``run_fig1`` returns both profiles plus the three shape metrics the
claim turns on (mean, coefficient of variation, dynamic range).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.report import banner, format_series, format_table
from repro.experiments.runner import (
    find_time_minimizing_delta,
    pick_source,
    run_adaptive,
    run_baseline,
    scaled_setpoints,
)
from repro.gpusim.device import JETSON_TK1
from repro.instrument.profile import ParallelismProfile, profile_from_trace

__all__ = ["Fig1Result", "run_fig1", "main"]


@dataclass(frozen=True)
class Fig1Result:
    dataset: str
    baseline: ParallelismProfile
    selftuning: ParallelismProfile
    setpoint: float
    baseline_delta: float

    def comparison_rows(self) -> list[dict]:
        rows = []
        for profile in (self.baseline, self.selftuning):
            steady = profile.steady_state()
            rows.append(
                {
                    "profile": profile.label,
                    "iterations": profile.num_iterations,
                    "mean par": round(profile.summary.mean, 1),
                    "median par": round(profile.summary.median, 1),
                    "cv": round(profile.summary.cv, 3),
                    "steady cv": round(steady.summary.cv, 3),
                    "dyn range": round(profile.dynamic_range, 1),
                }
            )
        return rows


def run_fig1(
    config: ExperimentConfig | None = None, dataset: str = "wiki"
) -> Fig1Result:
    """Profiles for the baseline (time-minimising delta) vs self-tuning.

    The paper's Figure 1 uses the scale-free network; ``dataset='cal'``
    produces the road-network counterpart.
    """
    config = config or default_config()
    graph = config.dataset(dataset)
    source = pick_source(graph)

    best_delta, _ = find_time_minimizing_delta(
        graph, source, JETSON_TK1, config.delta_multipliers
    )
    _, base_trace = run_baseline(graph, source, best_delta)

    setpoint = scaled_setpoints(dataset, config.scale)[1]  # the middle P
    _, tuned_trace = run_adaptive(graph, source, setpoint)

    return Fig1Result(
        dataset=dataset,
        baseline=profile_from_trace(base_trace, "baseline near+far"),
        selftuning=profile_from_trace(tuned_trace, f"self-tuning P={setpoint:.0f}"),
        setpoint=setpoint,
        baseline_delta=best_delta,
    )


def main(config: ExperimentConfig | None = None, dataset: str = "wiki") -> str:
    res = run_fig1(config, dataset)
    out = [
        banner(f"Figure 1: concurrency profiles ({res.dataset})"),
        format_series("(a) baseline parallelism", res.baseline.series),
        format_series("(b) self-tuning parallelism", res.selftuning.series),
        "",
        format_table(res.comparison_rows()),
    ]
    text = "\n".join(out)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
