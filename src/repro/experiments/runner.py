"""Shared experiment plumbing: sources, delta search, run matrices."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core import AdaptiveParams, adaptive_sssp
from repro.core.setpoint import PAPER_SETPOINTS
from repro.gpusim.device import DeviceSpec
from repro.gpusim.dvfs import DVFSPolicy, FixedDVFS
from repro.gpusim.executor import PlatformRun, simulate_run
from repro.graph.csr import CSRGraph
from repro.instrument.trace import RunTrace
from repro.sssp.batch import BatchRun, Runner, batch_run
from repro.sssp.nearfar import nearfar_sssp, suggest_delta
from repro.sssp.result import SSSPResult

__all__ = [
    "pick_source",
    "run_baseline",
    "run_adaptive",
    "run_source_batch",
    "find_time_minimizing_delta",
    "frequency_settings",
    "scaled_setpoints",
]


def pick_source(graph: CSRGraph) -> int:
    """A deterministic, non-degenerate source: the max-out-degree vertex.

    (The paper does not specify its sources; picking the hub makes the
    run reach the giant component on every dataset and is reproducible.)
    """
    if graph.num_nodes == 0:
        raise ValueError("cannot pick a source in an empty graph")
    return int(np.argmax(np.diff(graph.indptr)))


def run_baseline(
    graph: CSRGraph, source: int, delta: float
) -> Tuple[SSSPResult, RunTrace]:
    """One fixed-delta near+far run."""
    return nearfar_sssp(graph, source, delta=delta)


def run_adaptive(
    graph: CSRGraph, source: int, setpoint: float, **kwargs
) -> Tuple[SSSPResult, RunTrace]:
    """One self-tuning run at the given set-point (controller dropped)."""
    result, trace, _ = adaptive_sssp(
        graph, source, AdaptiveParams(setpoint=setpoint, **kwargs)
    )
    return result, trace


def run_source_batch(
    graph: CSRGraph,
    sources,
    runner: Runner,
    *,
    label: str = "batch",
    max_workers: int | None = None,
) -> BatchRun:
    """A multi-source batch on the service executor pool.

    Experiment runners are closures (they capture deltas and
    set-points), so this always uses thread mode; the NumPy stages of
    independent runs overlap while results stay in source order —
    identical to the serial path.  ``max_workers=1`` degenerates to
    the serial loop with no pool at all.
    """
    if max_workers is not None and max_workers <= 1:
        return batch_run(graph, sources, runner, label=label)
    from repro.service.pool import default_max_workers

    workers = max_workers or min(4, default_max_workers())
    return batch_run(
        graph,
        sources,
        runner,
        label=label,
        parallel=True,
        max_workers=workers,
        mode="thread",
    )


def find_time_minimizing_delta(
    graph: CSRGraph,
    source: int,
    device: DeviceSpec,
    multipliers: Tuple[float, ...] = (0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128),
) -> Tuple[float, Dict[float, PlatformRun]]:
    """The paper's baseline policy: the delta that minimises execution time.

    Sweeps ``multiplier * average_weight`` and simulates each run on
    ``device`` at maximum performance; returns the best delta and the
    full sweep (which Figs. 2-3 reuse).
    """
    base = suggest_delta(graph)
    policy = FixedDVFS.max_performance(device)
    sweep: Dict[float, PlatformRun] = {}
    best_delta, best_time = None, np.inf
    for mult in multipliers:
        delta = base * mult
        _, trace = run_baseline(graph, source, delta)
        run = simulate_run(trace, device, policy)
        sweep[delta] = run
        if run.total_seconds < best_time:
            best_delta, best_time = delta, run.total_seconds
    assert best_delta is not None
    return best_delta, sweep


def frequency_settings(device: DeviceSpec) -> List[Tuple[int, int]]:
    """The explicit c/m operating points used in Figs. 6-7.

    High / mid / low combinations drawn from the device's tables
    (the TK1 high point is the paper's "852/924").
    """
    cores, mems = device.core_freqs_mhz, device.mem_freqs_mhz

    def near(table: Tuple[int, ...], fraction: float) -> int:
        return table[int(round(fraction * (len(table) - 1)))]

    return [
        (cores[-1], mems[-1]),  # both high
        (near(cores, 0.6), near(mems, 0.5)),  # mid
        (near(cores, 0.25), near(mems, 0.25)),  # both low
    ]


def _setpoint_factor(dataset: str, scale: float) -> float:
    """Calibration from the paper's full-scale P values to ``scale``.

    Two effects compose:

    * *size scaling* — a planar road network's frontier is a wavefront
      whose width grows like the perimeter (~sqrt of the node count),
      while a scale-free network's bursts grow with the edge count
      (~linear in nodes);
    * *substrate calibration* (road network only) — on the simulated
      device the time-optimal occupancy sits near the natural
      wavefront parallelism, whereas the authors' physical TK1/TX1
      rewarded several-fold oversubscription; the constant 1/8 places
      the middle of the paper's {10k, 20k, 40k} ladder at the
      simulator's sweet spot, preserving the paper's "peak speedup at
      the middle P" shape.  EXPERIMENTS.md discusses this fidelity gap.
    """
    if dataset == "cal":
        return (scale ** 0.5) / 8.0
    return scale


def scaled_setpoints(dataset: str, scale: float, minimum: float = 100.0) -> List[float]:
    """The paper's set-points calibrated to the synthetic dataset size.

    The paper used P in {10k, 20k, 40k} on the 1.9M-node Cal and quotes
    P = 600k on Wiki; see :func:`_setpoint_factor` for the mapping.
    """
    if dataset not in PAPER_SETPOINTS:
        raise ValueError(f"unknown dataset {dataset!r}")
    factor = _setpoint_factor(dataset, scale)
    return [max(minimum, p * factor) for p in PAPER_SETPOINTS[dataset]]
