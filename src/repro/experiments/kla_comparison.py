"""A2 — comparison against KLA's constant-k asynchrony.

The paper's related-work claim: KLA "assumes a single optimal and
universal value of k, in contrast to our iteration-by-iteration tuning
of our analogous parameter (delta)".  This experiment makes the
contrast concrete: KLA at a sweep of constant k values versus the
near+far baseline (best static delta) versus the self-tuning
controller, on both datasets, measured in supersteps/iterations,
total relaxations (redundant work) and simulated time/energy.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core import AdaptiveParams, adaptive_sssp
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.report import banner, format_table
from repro.experiments.runner import (
    find_time_minimizing_delta,
    pick_source,
    scaled_setpoints,
)
from repro.gpusim.device import JETSON_TK1
from repro.gpusim.dvfs import FixedDVFS
from repro.gpusim.executor import simulate_run
from repro.sssp.kla import kla_sssp
from repro.sssp.nearfar import nearfar_sssp

__all__ = ["run_kla_comparison", "main", "KLA_K_VALUES"]

KLA_K_VALUES = (1, 2, 4, 8, 16)


def run_kla_comparison(
    config: ExperimentConfig | None = None,
) -> Dict[str, List[dict]]:
    config = config or default_config()
    policy = FixedDVFS.max_performance(JETSON_TK1)
    out: Dict[str, List[dict]] = {}
    for name, graph in config.datasets().items():
        source = pick_source(graph)
        rows: List[dict] = []

        for k in KLA_K_VALUES:
            result, trace = kla_sssp(graph, source, k)
            run = simulate_run(trace, JETSON_TK1, policy)
            rows.append(
                {
                    "algorithm": f"KLA k={k}",
                    "syncs": result.iterations,
                    "iterations": result.extra["levels"],
                    "relaxations": result.relaxations,
                    "sim time (ms)": round(run.total_seconds * 1e3, 3),
                    "energy (J)": round(run.total_energy_j, 4),
                }
            )

        best_delta, _ = find_time_minimizing_delta(
            graph, source, JETSON_TK1, config.delta_multipliers
        )
        result, trace = nearfar_sssp(graph, source, delta=best_delta)
        run = simulate_run(trace, JETSON_TK1, policy)
        rows.append(
            {
                "algorithm": f"near+far delta={best_delta:.3g}",
                "syncs": result.iterations,
                "iterations": result.iterations,
                "relaxations": result.relaxations,
                "sim time (ms)": round(run.total_seconds * 1e3, 3),
                "energy (J)": round(run.total_energy_j, 4),
            }
        )

        setpoint = scaled_setpoints(name, config.scale)[1]
        result, trace, _ = adaptive_sssp(
            graph, source, AdaptiveParams(setpoint=setpoint)
        )
        run = simulate_run(trace, JETSON_TK1, policy)
        rows.append(
            {
                "algorithm": f"self-tuning P={setpoint:.0f}",
                "syncs": result.iterations,
                "iterations": result.iterations,
                "relaxations": result.relaxations,
                "sim time (ms)": round(run.total_seconds * 1e3, 3),
                "energy (J)": round(run.total_energy_j, 4),
            }
        )
        out[name] = rows
    return out


def main(config: ExperimentConfig | None = None) -> str:
    data = run_kla_comparison(config)
    chunks = [banner("KLA constant-k versus delta tuning (related work)")]
    for name, rows in data.items():
        chunks += [f"-- {name} --", format_table(rows)]
    text = "\n".join(chunks)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
