"""F8 — Figure 8: variation in average power with the set-point P.

The paper sweeps P under the board's default DVFS mode and shows that
average power correlates with P — the basis for its claim that a
future controller could servo on measured power directly.

``run_fig8`` sweeps a geometric ladder of set-points on both datasets
and reports the simulated average power (plus a PowerMon-sampled
cross-check, since on this substrate we *can* attach the power meter
the paper wished for).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.report import banner, format_table
from repro.experiments.runner import pick_source, run_adaptive, scaled_setpoints
from repro.gpusim.device import DeviceSpec, get_device
from repro.gpusim.dvfs import default_governor
from repro.gpusim.executor import simulate_run
from repro.gpusim.powermon import sample_run

__all__ = ["run_fig8", "main"]


def _setpoint_ladder(dataset: str, scale: float, points: int = 6) -> List[float]:
    """A geometric P ladder spanning below/above the paper's set-points."""
    anchors = scaled_setpoints(dataset, scale)
    lo, hi = anchors[0] / 2.0, anchors[-1] * 2.0
    return list(np.geomspace(lo, hi, points))


def run_fig8(
    config: ExperimentConfig | None = None,
    device: DeviceSpec | None = None,
) -> Dict[str, List[dict]]:
    config = config or default_config()
    device = device or get_device("tk1")
    out: Dict[str, List[dict]] = {}
    for name, graph in config.datasets().items():
        source = pick_source(graph)
        rows: List[dict] = []
        for setpoint in _setpoint_ladder(name, config.scale):
            _, trace = run_adaptive(graph, source, setpoint)
            run = simulate_run(trace, device, default_governor(device))
            pm = sample_run(run, seed=config.seed)
            rows.append(
                {
                    "P": round(setpoint, 0),
                    "avg parallelism": round(trace.average_parallelism, 1),
                    "avg power (W)": round(run.average_power_w, 3),
                    "powermon avg (W)": round(pm.average_power_w, 3)
                    if pm.num_samples
                    else "-",
                    "time (ms)": round(run.total_seconds * 1e3, 3),
                    "energy (J)": round(run.total_energy_j, 4),
                }
            )
        out[name] = rows
    return out


def main(config: ExperimentConfig | None = None) -> str:
    data = run_fig8(config)
    chunks = [banner("Figure 8: average power versus set-point P (default DVFS)")]
    for name, rows in data.items():
        chunks.append(f"-- {name} --")
        chunks.append(format_table(rows))
    text = "\n".join(chunks)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
