"""S5.2 — controller runtime overhead (and instrumentation overhead).

The paper reports the controller costs roughly 50 us (Wiki) to 200 us
(Cal) per second of runtime — 0.005% to 0.02%.  We report both views
this substrate offers:

* the **measured** wall-clock time the Python controller spent per
  run, normalised per second of wall-clock algorithm time.  Both
  numbers come from the same :class:`repro.obs.spans.SpanRecorder`
  clock: the experiment times the whole run in a span, and the
  controller times itself with its own recorder.
* the **simulated** platform view: the modelled per-iteration CPU
  overhead as a fraction of simulated device time.

On the down-scaled default datasets the simulated fraction is higher
than the paper's (kernel times shrink with the graph, the per-iteration
controller cost does not); EXPERIMENTS.md discusses the scaling.

:func:`run_instrumentation_overhead` additionally quantifies the cost
of the observability layer itself on the fixed-delta hot path: it
times ``nearfar_sssp`` with the hooks disabled (the default null
registry) and enabled (live registry + in-memory event sink), and
estimates the per-run cost of the disabled hooks directly by timing
the null-handle calls the run would make.  That estimate is the
"no-op by default" guarantee: it must stay far below 5% of the run's
wall time.
"""

from __future__ import annotations

import time
from typing import List

from repro.core import AdaptiveParams, adaptive_sssp
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.report import banner, format_table
from repro.experiments.runner import pick_source, scaled_setpoints
from repro.gpusim.device import get_device
from repro.gpusim.executor import simulate_run
from repro.obs import ListSink, MetricsRegistry, SpanRecorder, use

__all__ = [
    "run_overhead",
    "run_instrumentation_overhead",
    "estimate_noop_hook_seconds",
    "main",
]


def run_overhead(config: ExperimentConfig | None = None) -> List[dict]:
    config = config or default_config()
    device = get_device("tk1")
    rows: List[dict] = []
    for name, graph in config.datasets().items():
        source = pick_source(graph)
        setpoint = scaled_setpoints(name, config.scale)[1]
        spans = SpanRecorder()
        with spans.span("adaptive_sssp"):
            _, trace, controller = adaptive_sssp(
                graph, source, AdaptiveParams(setpoint=setpoint)
            )
        wall = spans.total("adaptive_sssp")
        run = simulate_run(trace, device)
        ctrl_wall = controller.seconds
        rows.append(
            {
                "dataset": name,
                "iterations": len(trace),
                "wall time (s)": round(wall, 4),
                "controller wall (s)": round(ctrl_wall, 6),
                "us per second (wall)": round(1e6 * ctrl_wall / wall, 1)
                if wall > 0
                else "-",
                "sim overhead frac": round(run.controller_overhead_fraction, 5),
            }
        )
    return rows


def estimate_noop_hook_seconds(iterations: int, hooks_per_iteration: int = 10) -> float:
    """Wall-clock cost of the *disabled* hooks for a run of ``iterations``.

    Times the exact calls an instrumented iteration makes against the
    null registry (counter incs + histogram observes) and scales by the
    iteration count.  This is the honest form of the "<5% regression
    with the registry disabled" claim: the only thing the disabled
    instrumentation adds to the seed hot path is these calls.
    """
    from repro.obs.registry import NULL_REGISTRY

    counter = NULL_REGISTRY.counter("x")
    hist = NULL_REGISTRY.histogram("x")
    calls = max(iterations * hooks_per_iteration, 1)
    t0 = time.perf_counter()
    for _ in range(calls):
        counter.inc(1)
        hist.observe(1)
    elapsed = time.perf_counter() - t0
    # each loop round did one counter + one histogram call = 2 hooks
    return elapsed / 2.0


def run_instrumentation_overhead(
    config: ExperimentConfig | None = None, repeats: int = 3
) -> List[dict]:
    """Fixed-delta ``nearfar_sssp`` wall time: hooks off vs hooks on."""
    from repro.sssp.nearfar import nearfar_sssp

    config = config or default_config()
    rows: List[dict] = []
    for name, graph in config.datasets().items():
        source = pick_source(graph)

        def _run() -> int:
            result, _ = nearfar_sssp(graph, source, collect_trace=False)
            return result.iterations

        spans = SpanRecorder()
        iterations = 0
        for _ in range(repeats):  # hooks off: the default null context
            with spans.span("off"):
                iterations = _run()
        for _ in range(repeats):  # hooks on: live registry + event sink
            with use(registry=MetricsRegistry(), events=ListSink()):
                with spans.span("on"):
                    _run()
        off = spans.total("off") / repeats
        on = spans.total("on") / repeats
        noop = estimate_noop_hook_seconds(iterations)
        rows.append(
            {
                "dataset": name,
                "iterations": iterations,
                "hooks off (s)": round(off, 4),
                "hooks on (s)": round(on, 4),
                "on/off": round(on / off, 3) if off > 0 else "-",
                "noop hook cost (s)": round(noop, 6),
                "noop frac": round(noop / off, 5) if off > 0 else "-",
            }
        )
    return rows


def main(config: ExperimentConfig | None = None) -> str:
    text = "\n".join(
        [
            banner("Section 5.2: controller runtime overhead"),
            format_table(run_overhead(config)),
            "",
            banner("Observability: instrumentation overhead (fixed-delta near+far)"),
            format_table(run_instrumentation_overhead(config)),
        ]
    )
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
