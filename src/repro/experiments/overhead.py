"""S5.2 — controller runtime overhead.

The paper reports the controller costs roughly 50 us (Wiki) to 200 us
(Cal) per second of runtime — 0.005% to 0.02%.  We report both views
this substrate offers:

* the **measured** wall-clock time the Python controller spent per
  run (from ``time.perf_counter`` around every controller call),
  normalised per second of wall-clock algorithm time; and
* the **simulated** platform view: the modelled per-iteration CPU
  overhead as a fraction of simulated device time.

On the down-scaled default datasets the simulated fraction is higher
than the paper's (kernel times shrink with the graph, the per-iteration
controller cost does not); EXPERIMENTS.md discusses the scaling.
"""

from __future__ import annotations

import time
from typing import List

from repro.core import AdaptiveParams, adaptive_sssp
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.report import banner, format_table
from repro.experiments.runner import pick_source, scaled_setpoints
from repro.gpusim.device import get_device
from repro.gpusim.executor import simulate_run

__all__ = ["run_overhead", "main"]


def run_overhead(config: ExperimentConfig | None = None) -> List[dict]:
    config = config or default_config()
    device = get_device("tk1")
    rows: List[dict] = []
    for name, graph in config.datasets().items():
        source = pick_source(graph)
        setpoint = scaled_setpoints(name, config.scale)[1]
        t0 = time.perf_counter()
        _, trace, controller = adaptive_sssp(
            graph, source, AdaptiveParams(setpoint=setpoint)
        )
        wall = time.perf_counter() - t0
        run = simulate_run(trace, device)
        ctrl_wall = controller.seconds
        rows.append(
            {
                "dataset": name,
                "iterations": len(trace),
                "wall time (s)": round(wall, 4),
                "controller wall (s)": round(ctrl_wall, 6),
                "us per second (wall)": round(1e6 * ctrl_wall / wall, 1)
                if wall > 0
                else "-",
                "sim overhead frac": round(run.controller_overhead_fraction, 5),
            }
        )
    return rows


def main(config: ExperimentConfig | None = None) -> str:
    text = "\n".join(
        [
            banner("Section 5.2: controller runtime overhead"),
            format_table(run_overhead(config)),
        ]
    )
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
