"""T1 — Table 1: data set characteristics.

Prints the synthetic stand-ins' node/edge/degree numbers next to the
paper's originals, so a reader can check the structural substitution
at a glance.
"""

from __future__ import annotations

from typing import List

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.report import banner, format_table
from repro.graph.datasets import PAPER_TABLE1
from repro.graph.properties import graph_stats

__all__ = ["run_table1", "main"]


def run_table1(config: ExperimentConfig | None = None) -> List[dict]:
    """Rows: one per dataset, ours + the paper's original for reference."""
    config = config or default_config()
    rows: List[dict] = []
    for key, graph in config.datasets().items():
        stats = graph_stats(graph, seed=config.seed)
        paper = PAPER_TABLE1[key.capitalize()]
        rows.append(
            {
                "Input graph": f"{key} (ours: {graph.name})",
                "Nodes": stats.num_nodes,
                "Edges": stats.num_edges,
                "Max degree": stats.max_degree,
                "Avg degree": round(stats.average_degree, 2),
                "Est. diameter": stats.estimated_diameter,
                "Paper nodes": paper["nodes"],
                "Paper edges": paper["edges"],
                "Paper max deg": paper["max_degree"] or "-",
            }
        )
    return rows


def main(config: ExperimentConfig | None = None) -> str:
    rows = run_table1(config)
    out = [banner("Table 1: data set characteristics"), format_table(rows)]
    text = "\n".join(out)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
