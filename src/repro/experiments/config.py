"""Experiment configuration shared by all figures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.graph.csr import CSRGraph
from repro.graph.datasets import bench_scale, cal_like, wiki_like

__all__ = ["ExperimentConfig", "default_config"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs for the harness.

    ``scale`` shrinks the Table-1 datasets (1.0 ~= the paper's sizes;
    the default keeps the full harness to minutes on a laptop).  Set
    the ``REPRO_SCALE`` environment variable to override.
    """

    scale: float = field(default_factory=bench_scale)
    seed: int = 7
    # delta multipliers swept when searching the time-minimising delta
    delta_multipliers: Tuple[float, ...] = (0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128)

    def datasets(self) -> Dict[str, CSRGraph]:
        """The two Table-1 stand-ins at this config's scale."""
        return {
            "cal": cal_like(self.scale, seed=self.seed),
            "wiki": wiki_like(self.scale, seed=self.seed + 4),
        }

    def dataset(self, name: str) -> CSRGraph:
        try:
            return self.datasets()[name]
        except KeyError:
            raise ValueError(f"unknown dataset {name!r}; options: cal, wiki") from None


def default_config(scale: float | None = None) -> ExperimentConfig:
    """The config the benchmarks use (scale from REPRO_SCALE when unset)."""
    if scale is None:
        return ExperimentConfig()
    return ExperimentConfig(scale=scale)
