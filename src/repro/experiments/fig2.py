"""F2 — Figure 2: delta versus parallelism.

The paper sweeps the static delta of the baseline near+far algorithm
and plots average parallelism (mean ``X^(2)`` over iterations) for both
datasets.  Claim: "For small values of delta ... parallelism is small.
As delta increases, the parallelism increases."
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.report import banner, format_table
from repro.experiments.runner import pick_source, run_baseline
from repro.sssp.nearfar import suggest_delta

__all__ = ["run_fig2", "main"]


def run_fig2(config: ExperimentConfig | None = None) -> Dict[str, List[dict]]:
    """For each dataset: rows of (delta, average parallelism, iterations)."""
    config = config or default_config()
    out: Dict[str, List[dict]] = {}
    for name, graph in config.datasets().items():
        source = pick_source(graph)
        base = suggest_delta(graph)
        rows: List[dict] = []
        for mult in config.delta_multipliers:
            delta = base * mult
            result, trace = run_baseline(graph, source, delta)
            rows.append(
                {
                    "delta": round(delta, 4),
                    "delta/avg_w": mult,
                    "avg parallelism": round(trace.average_parallelism, 1),
                    "median parallelism": round(float(np.median(trace.parallelism)), 1),
                    "iterations": result.iterations,
                }
            )
        out[name] = rows
    return out


def main(config: ExperimentConfig | None = None) -> str:
    data = run_fig2(config)
    chunks = [banner("Figure 2: delta versus parallelism")]
    for name, rows in data.items():
        chunks.append(f"-- {name} --")
        chunks.append(format_table(rows))
    text = "\n".join(chunks)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
