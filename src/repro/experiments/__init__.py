"""Per-figure experiment harness.

One module per artifact of the paper's evaluation:

========  ====================================================  ==================
Exp id    Paper artifact                                        Module
========  ====================================================  ==================
T1        Table 1 — dataset characteristics                     ``table1``
F1        Fig. 1 — concurrency profiles + density               ``fig1``
F2        Fig. 2 — delta vs parallelism                         ``fig2``
F3        Fig. 3 — Cal performance vs delta                     ``fig3``
F5        Fig. 5 — parallelism distributions at set-points      ``fig5``
F6        Fig. 6 — TK1 speedup vs relative power                ``fig6``
F7        Fig. 7 — TX1 speedup vs relative power                ``fig7``
F8        Fig. 8 — average power vs set-point                   ``fig8``
S5.2      controller overhead                                   ``overhead``
A1        ablations of controller design choices (DESIGN §6)   ``ablations``
A2        KLA constant-k comparison (related work)              ``kla_comparison``
A3        controller transient dynamics                         ``dynamics``
A4        source robustness (batched Fig. 5)                    ``robustness``
P1        power-target control (the paper's §6 future work)     ``power_target``
========  ====================================================  ==================

Every module exposes a ``run_*`` function returning structured data and
a ``main()`` that prints the same rows/series the paper reports.  The
CLI (``python -m repro experiment <id>``) wraps them all.
"""

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.runner import (
    find_time_minimizing_delta,
    frequency_settings,
    pick_source,
    run_adaptive,
    run_baseline,
    scaled_setpoints,
)

__all__ = [
    "ExperimentConfig",
    "default_config",
    "find_time_minimizing_delta",
    "frequency_settings",
    "pick_source",
    "run_adaptive",
    "run_baseline",
    "scaled_setpoints",
]
