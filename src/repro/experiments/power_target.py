"""P1 — power-target control (the paper's §6 future work).

"In principle, a user might specify a power limit instead of P, and
the controller could then adjust itself in response to direct power
observations.  While that is not possible on the Jetson evaluation
platforms, Figure 8 shows that there is some correlation between
average power and P…"

On the simulated substrate direct power observation *is* possible, so
this experiment closes the loop: sweep watt budgets on both datasets
and report how closely the measured steady-state power lands on each
budget, plus the set-point the servo converged to and the run cost.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core import AdaptiveParams, adaptive_sssp
from repro.cosim import PowerTargetParams, power_target_sssp
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.report import banner, format_table
from repro.experiments.runner import pick_source
from repro.gpusim.device import DeviceSpec, get_device
from repro.gpusim.dvfs import default_governor
from repro.gpusim.executor import simulate_run
from repro.graph.csr import CSRGraph

__all__ = ["run_power_target", "main"]


def _achievable_ceiling(
    graph: CSRGraph, source: int, device: DeviceSpec
) -> float:
    """Probe the workload's achievable average power on this device.

    A watt budget above what the input can sustain is unreachable —
    the servo would peg P at its cap.  Run the plain self-tuning
    algorithm at an oversized set-point and take that run's average
    power as the ceiling for budget placement.
    """
    _, trace, _ = adaptive_sssp(
        graph, source, AdaptiveParams(setpoint=4.0 * device.saturation_items)
    )
    run = simulate_run(trace, device, default_governor(device))
    return run.average_power_w


def run_power_target(
    config: ExperimentConfig | None = None,
    device: DeviceSpec | None = None,
) -> Dict[str, List[dict]]:
    config = config or default_config()
    device = device or get_device("tk1")
    out: Dict[str, List[dict]] = {}
    for name, graph in config.datasets().items():
        source = pick_source(graph)
        floor = device.static_power_w
        ceiling = _achievable_ceiling(graph, source, device)
        span = max(ceiling - floor, 0.1)
        budgets = [floor + f * span for f in (0.3, 0.5, 0.7, 0.9)]
        rows: List[dict] = []
        for budget in budgets:
            res = power_target_sssp(
                graph,
                source,
                device,
                PowerTargetParams(target_watts=budget, initial_setpoint=500.0),
            )
            steady = res.steady_state_power()
            rows.append(
                {
                    "budget (W)": round(budget, 2),
                    "steady power (W)": round(steady, 2),
                    "error": round((steady - budget) / budget, 3),
                    "final P": round(res.final_setpoint, 0),
                    "iterations": res.result.iterations,
                    "time (ms)": round(res.platform.total_seconds * 1e3, 2),
                    "energy (J)": round(res.platform.total_energy_j, 4),
                }
            )
        out[name] = rows
    return out


def main(config: ExperimentConfig | None = None) -> str:
    data = run_power_target(config)
    chunks = [banner("Power-target control (paper §6 future work)")]
    for name, rows in data.items():
        chunks += [f"-- {name} --", format_table(rows)]
    text = "\n".join(chunks)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
