"""F7 — Figure 7: performance versus power on the TX1.

Same matrix as Figure 6 (see :mod:`repro.experiments.fig6`) on the
newer Maxwell board.  The paper's TX1-specific observations: points
cluster more as P varies (better stock DVFS, lower overall GPU
utilisation), and self-tuning does not always beat DVFS on power but
still buys extra speedup at equal system power.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig6 import TradeoffPoint, main as _main, run_tradeoff
from repro.gpusim.device import get_device

__all__ = ["run_fig7", "main"]


def run_fig7(config: ExperimentConfig | None = None) -> Dict[str, List[TradeoffPoint]]:
    """Figure 7: the trade-off matrix on the TX1."""
    return run_tradeoff(get_device("tx1"), config)


def main(config: ExperimentConfig | None = None) -> str:
    return _main(config, device_name="tx1")


if __name__ == "__main__":  # pragma: no cover
    main()
