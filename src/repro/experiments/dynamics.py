"""A3 — controller transient dynamics.

Supplementary to Figure 5: how *fast* does the controller converge?
The paper claims α settles "after about 5 iterations"; this experiment
measures the settling iteration of both learned parameters and of the
parallelism band on each dataset, at each scaled set-point.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core import AdaptiveParams, adaptive_sssp
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.report import banner, format_table
from repro.experiments.runner import pick_source, scaled_setpoints
from repro.instrument.convergence import analyze_controller

__all__ = ["run_dynamics", "main"]


def run_dynamics(config: ExperimentConfig | None = None) -> Dict[str, List[dict]]:
    config = config or default_config()
    out: Dict[str, List[dict]] = {}
    for name, graph in config.datasets().items():
        source = pick_source(graph)
        rows: List[dict] = []
        for setpoint in scaled_setpoints(name, config.scale):
            _, trace, _ = adaptive_sssp(
                graph, source, AdaptiveParams(setpoint=setpoint)
            )
            dyn = analyze_controller(trace, setpoint)
            row = {"P": round(setpoint, 0)}
            row.update(dyn.as_row())
            rows.append(row)
        out[name] = rows
    return out


def main(config: ExperimentConfig | None = None) -> str:
    data = run_dynamics(config)
    chunks = [banner("Controller transient dynamics (supplement to Fig. 5)")]
    for name, rows in data.items():
        chunks += [f"-- {name} --", format_table(rows)]
    text = "\n".join(chunks)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
