"""Controller convergence diagnostics.

The paper states the BISECT-MODEL "converged to an acceptable value of
α after about 5 iterations" and that the parallelism distribution
tightens "especially after the initial convergence phase has passed".
These helpers quantify both from a run trace: settling iterations for
the learned parameters and for the parallelism band, plus overshoot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.instrument.trace import RunTrace

__all__ = ["settling_iteration", "ControllerDynamics", "analyze_controller"]


def settling_iteration(
    series: np.ndarray,
    target: float | None = None,
    band: float = 0.25,
) -> int:
    """First index from which the series stays inside the band forever.

    The band is ``target * (1 ± band)``; ``target`` defaults to the
    series' final value.  Returns ``len(series)`` if it never settles
    (including when the target is ~0, where a relative band is
    meaningless).
    """
    x = np.asarray(series, dtype=np.float64)
    if x.size == 0:
        return 0
    t = float(x[-1]) if target is None else float(target)
    if not np.isfinite(t) or abs(t) < 1e-12:
        return int(x.size)
    lo, hi = sorted((t * (1 - band), t * (1 + band)))
    inside = (x >= lo) & (x <= hi)
    # last violation determines the settling point
    violations = np.flatnonzero(~inside)
    if violations.size == 0:
        return 0
    settle = int(violations[-1]) + 1
    return settle if settle < x.size else int(x.size)


@dataclass(frozen=True)
class ControllerDynamics:
    """Transient-response summary of one self-tuning run."""

    iterations: int
    d_settling: int  # iterations until d stays within ±25% of final
    alpha_settling: int  # same for alpha
    parallelism_entry: int  # first iteration inside the P ± 50% band
    parallelism_overshoot: float  # max X^(2) / P
    steady_tracking_error: float  # median |X^(2) − P| / P after entry

    def as_row(self) -> dict:
        return {
            "iterations": self.iterations,
            "d settle": self.d_settling,
            "alpha settle": self.alpha_settling,
            "par entry": self.parallelism_entry,
            "overshoot": round(self.parallelism_overshoot, 2),
            "steady err": round(self.steady_tracking_error, 3),
        }


def analyze_controller(trace: RunTrace, setpoint: float) -> ControllerDynamics:
    """Transient response of the controller in ``trace`` against ``setpoint``."""
    if setpoint <= 0:
        raise ValueError("setpoint must be positive")
    par = trace.parallelism
    n = int(par.size)
    if n == 0:
        return ControllerDynamics(0, 0, 0, 0, 0.0, float("nan"))

    d_series = trace.column("d_estimate")
    a_series = trace.column("alpha_estimate")
    d_settle = settling_iteration(d_series) if np.isfinite(d_series).all() else n
    a_settle = settling_iteration(a_series) if np.isfinite(a_series).all() else n

    inside = np.flatnonzero(
        (par >= 0.5 * setpoint) & (par <= 1.5 * setpoint)
    )
    entry = int(inside[0]) if inside.size else n
    overshoot = float(par.max() / setpoint) if n else 0.0
    steady = par[entry:]
    err = (
        float(np.median(np.abs(steady - setpoint)) / setpoint)
        if steady.size
        else float("nan")
    )
    return ControllerDynamics(
        iterations=n,
        d_settling=d_settle,
        alpha_settling=a_settle,
        parallelism_entry=entry,
        parallelism_overshoot=overshoot,
        steady_tracking_error=err,
    )
