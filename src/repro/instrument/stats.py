"""Distribution summaries and density histograms.

The paper characterises parallelism as a distribution (the rotated
"Density" insets of Figure 1 and the box-plot-like Figure 5).  These
helpers compute the numbers those plots are drawn from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DistributionSummary", "summarize", "density_histogram", "iqr_fraction_near"]


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number summary + moments of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    @property
    def iqr(self) -> float:
        return self.p75 - self.p25

    @property
    def cv(self) -> float:
        """Coefficient of variation (std/mean); 0 for a zero-mean sample."""
        return self.std / self.mean if self.mean else 0.0

    def as_row(self) -> dict:
        return {
            "n": self.count,
            "mean": round(self.mean, 1),
            "std": round(self.std, 1),
            "min": round(self.minimum, 1),
            "p25": round(self.p25, 1),
            "median": round(self.median, 1),
            "p75": round(self.p75, 1),
            "max": round(self.maximum, 1),
            "cv": round(self.cv, 3),
        }


def summarize(sample: np.ndarray) -> DistributionSummary:
    """Five-number summary of ``sample`` (empty samples give all-zero)."""
    x = np.asarray(sample, dtype=np.float64)
    if x.size == 0:
        return DistributionSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return DistributionSummary(
        count=int(x.size),
        mean=float(x.mean()),
        std=float(x.std()),
        minimum=float(x.min()),
        p25=float(np.percentile(x, 25)),
        median=float(np.percentile(x, 50)),
        p75=float(np.percentile(x, 75)),
        maximum=float(x.max()),
    )


def density_histogram(
    sample: np.ndarray, bins: int = 32, log: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """(bin_edges, density) pair — the Figure 1 inset, as numbers.

    With ``log=True`` the bins are log-spaced, which is how a
    long-tailed parallelism distribution is best inspected.
    """
    x = np.asarray(sample, dtype=np.float64)
    if x.size == 0:
        edges = np.linspace(0.0, 1.0, bins + 1)
        return edges, np.zeros(bins)
    if log:
        positive = x[x > 0]
        if positive.size == 0:
            edges = np.linspace(0.0, 1.0, bins + 1)
            return edges, np.zeros(bins)
        lo, hi = positive.min(), positive.max()
        if lo == hi:
            hi = lo * 1.0001 + 1e-12
        edges = np.geomspace(lo, hi, bins + 1)
        density, _ = np.histogram(positive, bins=edges, density=True)
        return edges, density
    density, edges = np.histogram(x, bins=bins, density=True)
    return edges, density


def iqr_fraction_near(
    sample: np.ndarray, target: float, tolerance: float = 0.5
) -> float:
    """Fraction of the sample within ``target * (1 +- tolerance)``.

    Quantifies Figure 5's claim that "most of the distribution's mass
    [is] confined to a region near that median" at each set-point.
    """
    x = np.asarray(sample, dtype=np.float64)
    if x.size == 0 or target <= 0:
        return 0.0
    lo, hi = target * (1 - tolerance), target * (1 + tolerance)
    return float(((x >= lo) & (x <= hi)).mean())
