"""Measurement: per-iteration traces, distribution stats, parallelism profiles."""

from repro.instrument.profile import ParallelismProfile, profile_from_trace
from repro.instrument.stats import DistributionSummary, density_histogram, summarize
from repro.instrument.trace import IterationRecord, RunTrace

__all__ = [
    "DistributionSummary",
    "IterationRecord",
    "ParallelismProfile",
    "RunTrace",
    "density_histogram",
    "profile_from_trace",
    "summarize",
]
