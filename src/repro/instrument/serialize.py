"""Trace and result serialisation (JSON).

Reproducibility plumbing: persist a run's per-iteration trace (the
controller's entire observable world) and reload it later to re-replay
on different simulated devices without re-running the algorithm —
exactly how the harness separates the algorithm from the platform.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.instrument.trace import IterationRecord, RunTrace

__all__ = [
    "trace_to_dict",
    "trace_from_dict",
    "save_trace",
    "load_trace",
]

# v1: algorithm/graph_name/source + records
# v2: adds the run-level ``meta`` dict (setpoint, delta, …); v1 files
#     still load (meta defaults to empty).
# The *event* stream written by ``repro trace record`` is versioned
# separately: see repro.obs.events.EVENT_SCHEMA_VERSION.
_SCHEMA_VERSION = 2
_READABLE_SCHEMAS = (1, 2)


def _clean(value: Any) -> Any:
    """JSON-safe scalars (numpy ints/floats -> python; NaN kept as None)."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating, float)):
        v = float(value)
        return None if np.isnan(v) else v
    return value


def trace_to_dict(trace: RunTrace) -> dict:
    """A JSON-ready dict with every iteration record."""
    return {
        "schema": _SCHEMA_VERSION,
        "algorithm": trace.algorithm,
        "graph_name": trace.graph_name,
        "source": int(trace.source),
        "meta": {k: _clean(v) for k, v in trace.meta.items()},
        "records": [
            {k: _clean(v) for k, v in dataclasses.asdict(rec).items()}
            for rec in trace.records
        ],
    }


def trace_from_dict(payload: dict) -> RunTrace:
    """Inverse of :func:`trace_to_dict` (validates the schema version)."""
    schema = payload.get("schema")
    if schema not in _READABLE_SCHEMAS:
        raise ValueError(
            f"unsupported trace schema {schema!r} (expected one of "
            f"{_READABLE_SCHEMAS})"
        )
    trace = RunTrace(
        algorithm=payload["algorithm"],
        graph_name=payload["graph_name"],
        source=int(payload["source"]),
        meta=dict(payload.get("meta", {})),
    )
    field_names = {f.name for f in dataclasses.fields(IterationRecord)}
    for raw in payload["records"]:
        unknown = set(raw) - field_names
        if unknown:
            raise ValueError(f"unknown record fields: {sorted(unknown)}")
        kwargs = dict(raw)
        for key in ("d_estimate", "alpha_estimate"):
            if kwargs.get(key) is None:
                kwargs[key] = float("nan")
        trace.append(IterationRecord(**kwargs))
    return trace


def save_trace(trace: RunTrace, path: str | Path) -> Path:
    """Write a trace as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(trace_to_dict(trace)))
    return path


def load_trace(path: str | Path) -> RunTrace:
    """Read a trace written by :func:`save_trace`."""
    return trace_from_dict(json.loads(Path(path).read_text()))
