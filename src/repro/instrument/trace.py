"""Per-iteration execution traces.

Every frontier-based SSSP run in this package emits one
:class:`IterationRecord` per outer iteration ``k``, carrying the
paper's four stage-workload counters:

* ``x1`` — input frontier size (advance input),
* ``x2`` — advance output size, i.e. the total neighbour-list length of
  the frontier.  This is the paper's *available parallelism* metric
  ("Average parallelism is defined as the average frontier size
  (X_k^(2)) over all iterations").
* ``x3`` — filter output size (unique improved vertices),
* ``x4`` — frontier size entering bisect-far-queue / the rebalancer.

The trace is the contract between the algorithms and both the
controller (:mod:`repro.core`) and the platform simulator
(:mod:`repro.gpusim.executor`), which replays traces into
time/energy/power.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

import numpy as np

__all__ = ["IterationRecord", "RunTrace"]


@dataclass
class IterationRecord:
    """Stage workloads and knob state for one outer SSSP iteration."""

    k: int
    x1: int
    x2: int
    x3: int
    x4: int
    delta: float
    split: float
    far_size: int
    drains: int = 0
    moved_from_far: int = 0
    moved_to_far: int = 0
    # far-queue entries touched by range queries this iteration (pulled
    # and re-validated, whether or not they moved); the flat-queue
    # ablation shows up here
    far_scanned: int = 0
    # controller internals (NaN when the baseline runs without a controller)
    d_estimate: float = float("nan")
    alpha_estimate: float = float("nan")
    controller_seconds: float = 0.0

    @property
    def parallelism(self) -> int:
        """The paper's available-parallelism metric for this iteration."""
        return self.x2


@dataclass
class RunTrace:
    """All iteration records of one SSSP run, plus run-level metadata.

    ``meta`` carries run-level scalars the records cannot (the
    set-point of an adaptive run, the fixed delta of a baseline run,
    …); consumers such as ``repro trace diff`` use it to pick the
    right analysis target without re-deriving it from the records.
    """

    algorithm: str
    graph_name: str
    source: int
    records: List[IterationRecord] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def append(self, rec: IterationRecord) -> None:
        self.records.append(rec)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[IterationRecord]:
        return iter(self.records)

    # ------------------------------------------------------------------
    # column extraction
    # ------------------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """A column across iterations, e.g. ``trace.column('x2')``."""
        return np.asarray([getattr(r, name) for r in self.records], dtype=np.float64)

    @property
    def parallelism(self) -> np.ndarray:
        return self.column("x2")

    @property
    def deltas(self) -> np.ndarray:
        return self.column("delta")

    @property
    def num_iterations(self) -> int:
        return len(self.records)

    @property
    def total_edges_expanded(self) -> int:
        return int(self.column("x2").sum())

    @property
    def average_parallelism(self) -> float:
        """Mean X^(2) over iterations — the paper's Figure 2 y-axis."""
        if not self.records:
            return 0.0
        return float(self.parallelism.mean())

    @property
    def parallelism_cv(self) -> float:
        """Coefficient of variation of X^(2): the variability Fig. 1 shows."""
        p = self.parallelism
        if p.size == 0 or p.mean() == 0:
            return 0.0
        return float(p.std() / p.mean())

    @property
    def controller_seconds(self) -> float:
        return float(self.column("controller_seconds").sum())
