"""Parallelism profiles (Figure 1 of the paper, as data).

A :class:`ParallelismProfile` couples the per-iteration available
parallelism series with its distribution — exactly what Figure 1 plots
(series on the left, rotated density inset on the right).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.instrument.stats import DistributionSummary, density_histogram, summarize
from repro.instrument.trace import RunTrace

__all__ = ["ParallelismProfile", "profile_from_trace"]


@dataclass(frozen=True)
class ParallelismProfile:
    """Per-iteration parallelism series + distribution of one SSSP run."""

    label: str
    series: np.ndarray  # X^(2) per iteration
    summary: DistributionSummary
    density_edges: np.ndarray
    density: np.ndarray

    @property
    def num_iterations(self) -> int:
        return int(self.series.size)

    @property
    def dynamic_range(self) -> float:
        """max/max(1, min of positive values): the paper's "large dynamic range"."""
        positive = self.series[self.series > 0]
        if positive.size == 0:
            return 0.0
        return float(positive.max() / max(1.0, positive.min()))

    def steady_state(self, skip_fraction: float = 0.1) -> "ParallelismProfile":
        """Profile with the initial convergence phase dropped.

        The paper notes variability shrinks "especially after the
        initial convergence phase has passed"; this trims the first
        ``skip_fraction`` of iterations to measure that regime.
        """
        skip = int(self.series.size * skip_fraction)
        return make_profile(f"{self.label}[steady]", self.series[skip:])


def make_profile(label: str, series: np.ndarray, bins: int = 32) -> ParallelismProfile:
    series = np.asarray(series, dtype=np.float64)
    edges, density = density_histogram(series, bins=bins, log=True)
    return ParallelismProfile(
        label=label,
        series=series,
        summary=summarize(series),
        density_edges=edges,
        density=density,
    )


def profile_from_trace(trace: RunTrace, label: str | None = None) -> ParallelismProfile:
    """Build the Figure-1 profile from a run trace."""
    return make_profile(label or trace.algorithm, trace.parallelism)
