"""Replay an SSSP trace on a simulated device.

:func:`simulate_run` walks an algorithm's
:class:`~repro.instrument.trace.RunTrace`, launches each iteration's
four stage kernels on the device model, and integrates time, energy
and power.  Per kernel:

* compute time — an affine latency + throughput model (LogP-style)::

      t_c = cycles_per_item * (items + saturation_items / 2) / (cores * f_core)

  The ``saturation_items / 2`` term is the pipeline-fill cost every
  launch pays regardless of size: an under-filled launch is almost as
  slow as a half-saturated one, which is exactly why low-parallelism
  iterations waste time and energy (the board burns static power over
  that fixed latency no matter how little work it does), and why
  merging bands into fewer, fuller iterations — what the controller
  does — buys real time.

* memory time — ``t_m = items * bytes_per_item / bandwidth(f_mem)``.

* kernel time — ``launch_overhead + max(t_c, t_m)``.

* utilisation — ``min(1, items / saturation_items)`` for the core
  domain, achieved-bandwidth fraction for the memory domain; both feed
  the :class:`~repro.gpusim.power.PowerModel`.

Self-tuning runs additionally pay the CPU-side controller overhead per
iteration (§5.2 of the paper; the measured wall-clock overhead is kept
separately in the trace).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.gpusim.device import DeviceSpec
from repro.gpusim.dvfs import DVFSPolicy, FixedDVFS, FrequencySetting, default_governor
from repro.gpusim.kernels import KernelSpec, iteration_kernels
from repro.gpusim.power import PowerModel
from repro.instrument.trace import RunTrace
from repro.obs import context as obs

__all__ = [
    "KernelCost",
    "IterationCost",
    "PlatformRun",
    "cost_iteration",
    "simulate_run",
]


@dataclass(frozen=True)
class KernelCost:
    """Simulated cost of one kernel launch."""

    name: str
    items: int
    seconds: float
    compute_seconds: float
    memory_seconds: float
    utilization: float
    mem_utilization: float
    power_w: float

    @property
    def energy_j(self) -> float:
        return self.power_w * self.seconds


@dataclass(frozen=True)
class IterationCost:
    """Simulated cost of one SSSP iteration (four kernels + host work)."""

    k: int
    setting: FrequencySetting
    kernels: List[KernelCost]
    controller_seconds: float
    controller_power_w: float

    @property
    def seconds(self) -> float:
        return sum(kc.seconds for kc in self.kernels) + self.controller_seconds

    @property
    def energy_j(self) -> float:
        kernel_energy = sum(kc.energy_j for kc in self.kernels)
        return kernel_energy + self.controller_power_w * self.controller_seconds

    @property
    def power_w(self) -> float:
        s = self.seconds
        return self.energy_j / s if s > 0 else 0.0

    @property
    def utilization(self) -> float:
        """Time-weighted core utilisation (drives the DVFS governor)."""
        s = sum(kc.seconds for kc in self.kernels)
        if s <= 0:
            return 0.0
        return sum(kc.utilization * kc.seconds for kc in self.kernels) / s


@dataclass
class PlatformRun:
    """Aggregated result of replaying one trace on one device."""

    device: DeviceSpec
    policy_label: str
    algorithm: str
    graph_name: str
    iterations: List[IterationCost] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(it.seconds for it in self.iterations)

    @property
    def total_energy_j(self) -> float:
        return sum(it.energy_j for it in self.iterations)

    @property
    def average_power_w(self) -> float:
        t = self.total_seconds
        return self.total_energy_j / t if t > 0 else 0.0

    @property
    def controller_seconds(self) -> float:
        return sum(it.controller_seconds for it in self.iterations)

    @property
    def controller_overhead_fraction(self) -> float:
        t = self.total_seconds
        return self.controller_seconds / t if t > 0 else 0.0

    def power_series(self) -> tuple[np.ndarray, np.ndarray]:
        """(iteration end times, per-iteration average power)."""
        times = np.cumsum([it.seconds for it in self.iterations])
        power = np.asarray([it.power_w for it in self.iterations])
        return times, power

    def utilization_series(self) -> np.ndarray:
        return np.asarray([it.utilization for it in self.iterations])

    def summary(self) -> dict:
        return {
            "device": self.device.name,
            "dvfs": self.policy_label,
            "algorithm": self.algorithm,
            "graph": self.graph_name,
            "iterations": len(self.iterations),
            "time_ms": round(self.total_seconds * 1e3, 3),
            "energy_j": round(self.total_energy_j, 4),
            "avg_power_w": round(self.average_power_w, 3),
        }


def _kernel_cost(
    spec: KernelSpec,
    items: int,
    device: DeviceSpec,
    power: PowerModel,
    setting: FrequencySetting,
) -> KernelCost:
    f_core_hz = setting.core_mhz * 1e6
    sat = device.saturation_items

    # affine launch cost: pipeline fill (sat/2 item-equivalents) + items
    effective_items = float(items) + 0.5 * sat
    compute_s = spec.cycles_per_item * effective_items / (device.num_cores * f_core_hz)
    bandwidth = device.mem_bandwidth(setting.mem_mhz)
    memory_s = items * spec.bytes_per_item / bandwidth if items > 0 else 0.0
    busy_s = max(compute_s, memory_s)
    seconds = device.kernel_launch_overhead_s + busy_s

    utilization = min(1.0, items / sat) if items > 0 else 0.0
    # fraction of peak bandwidth actually achieved while busy
    mem_utilization = (
        min(1.0, (items * spec.bytes_per_item) / (busy_s * bandwidth))
        if busy_s > 0 and items > 0
        else 0.0
    )
    watts = power.total(utilization, mem_utilization, setting.core_mhz, setting.mem_mhz)
    return KernelCost(
        name=spec.name,
        items=items,
        seconds=seconds,
        compute_seconds=compute_s,
        memory_seconds=memory_s,
        utilization=utilization,
        mem_utilization=mem_utilization,
        power_w=watts,
    )


def cost_iteration(
    rec,
    device: DeviceSpec,
    power: PowerModel,
    setting: FrequencySetting,
    *,
    include_controller: bool = False,
) -> IterationCost:
    """Simulated cost of one iteration record at a fixed operating point.

    The building block :func:`simulate_run` uses per record; also the
    co-simulation hook for outer loops (:mod:`repro.cosim`) that need
    iteration costs *while* the algorithm runs.
    """
    kernels = [
        _kernel_cost(spec, items, device, power, setting)
        for spec, items in iteration_kernels(rec)
    ]
    return IterationCost(
        k=rec.k,
        setting=setting,
        kernels=kernels,
        controller_seconds=device.controller_overhead_s if include_controller else 0.0,
        # during host-side control the GPU idles at static power
        controller_power_w=power.idle_power,
    )


def simulate_run(
    trace: RunTrace,
    device: DeviceSpec,
    policy: DVFSPolicy | None = None,
    *,
    include_controller: bool | None = None,
) -> PlatformRun:
    """Replay ``trace`` on ``device`` under a DVFS policy.

    Parameters
    ----------
    policy:
        A :class:`~repro.gpusim.dvfs.DVFSPolicy`; defaults to the
        device's stock :class:`~repro.gpusim.dvfs.AutoGovernor` (the
        paper's "no additional explicit control" baseline mode).
    include_controller:
        Whether to charge the per-iteration CPU controller overhead.
        Defaults to auto-detection from the trace's algorithm name
        (any ``adaptive`` algorithm pays it).
    """
    if policy is None:
        policy = default_governor(device)
    policy.reset()
    if include_controller is None:
        include_controller = "adaptive" in trace.algorithm

    power = PowerModel(device)
    run = PlatformRun(
        device=device,
        policy_label=policy.label,
        algorithm=trace.algorithm,
        graph_name=trace.graph_name,
    )
    reg = obs.get_registry()
    for rec in trace:
        setting = policy.select(device)
        device.validate_setting(setting.core_mhz, setting.mem_mhz)
        it = cost_iteration(
            rec, device, power, setting, include_controller=include_controller
        )
        run.iterations.append(it)
        policy.observe(it.utilization, it.seconds)
        if reg.enabled:
            # per-stage simulated energy/time: the trajectory every
            # perf PR wants to watch
            for kc in it.kernels:
                reg.counter(f"gpusim.energy_j.{kc.name}").inc(kc.energy_j)
                reg.counter(f"gpusim.seconds.{kc.name}").inc(kc.seconds)
            if it.controller_seconds:
                reg.counter("gpusim.controller_seconds").inc(
                    it.controller_seconds
                )
                reg.counter("gpusim.controller_energy_j").inc(
                    it.controller_power_w * it.controller_seconds
                )
    if reg.enabled:
        reg.counter("gpusim.runs").inc()
        reg.counter("gpusim.total_energy_j").inc(run.total_energy_j)
        reg.counter("gpusim.total_seconds").inc(run.total_seconds)
    return run
