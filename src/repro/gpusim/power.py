"""CMOS-style board power model.

System power (the scope PowerMon measures) is modelled as

    P = P_static
      + P_core_max * u_core * (f/f_max) * (V(f)/V_max)^2
      + P_mem_max  * u_mem  * (f_m/f_m_max)

i.e. dynamic power ``~ C V^2 f`` scaled by utilisation in each domain.
``u_core`` is the fraction of the device's latency-hiding capacity the
kernel fills (small frontiers leave cores idle but still burn
``P_static`` — the paper's Section 1 inefficiency); ``u_mem`` is the
achieved fraction of peak bandwidth.

This is intentionally a *shape* model: calibrated to each preset's
published idle/busy envelope, not to per-instruction measurements.
DESIGN.md records why that is sufficient for the paper's claims.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import DeviceSpec

__all__ = ["PowerModel"]


@dataclass(frozen=True)
class PowerModel:
    """Power evaluator bound to one device."""

    device: DeviceSpec

    def core_dynamic(self, utilization: float, core_mhz: float) -> float:
        """Dynamic GPU-core power at the given utilisation and clock."""
        u = min(max(utilization, 0.0), 1.0)
        d = self.device
        f_ratio = core_mhz / d.max_core_mhz
        v_ratio = d.voltage(core_mhz) / d.v_max
        return d.max_core_dynamic_w * u * f_ratio * v_ratio * v_ratio

    def mem_dynamic(self, mem_utilization: float, mem_mhz: float) -> float:
        """Dynamic memory-system power."""
        u = min(max(mem_utilization, 0.0), 1.0)
        d = self.device
        return d.max_mem_dynamic_w * u * (mem_mhz / d.max_mem_mhz)

    def total(
        self,
        utilization: float,
        mem_utilization: float,
        core_mhz: float,
        mem_mhz: float,
    ) -> float:
        """Instantaneous board power in watts."""
        return (
            self.device.static_power_w
            + self.core_dynamic(utilization, core_mhz)
            + self.mem_dynamic(mem_utilization, mem_mhz)
        )

    @property
    def idle_power(self) -> float:
        return self.device.static_power_w

    @property
    def peak_power(self) -> float:
        return (
            self.device.static_power_w
            + self.device.max_core_dynamic_w
            + self.device.max_mem_dynamic_w
        )
