"""Efficiency metrics over simulated runs.

The quantities the energy-efficiency literature the paper cites
compares systems by:

* **EDP / ED²P** — energy-delay products (Choi et al.'s roofline-of-
  energy tradition): lower is better, with ED²P weighting latency
  harder;
* **relative points** — the (speedup, relative power) coordinates of
  Figures 6-7;
* **Pareto frontier** — which configurations are undominated in
  (time, energy): the "frontier extension" claim of the paper is that
  self-tuning points appear on the combined frontier that DVFS-only
  configurations cannot reach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.gpusim.executor import PlatformRun

__all__ = [
    "energy_delay_product",
    "energy_delay_squared",
    "RelativePoint",
    "relative_point",
    "pareto_front",
]


def energy_delay_product(run: PlatformRun) -> float:
    """EDP = energy x time (J·s); lower is better."""
    return run.total_energy_j * run.total_seconds


def energy_delay_squared(run: PlatformRun) -> float:
    """ED²P = energy x time² (J·s²); latency-weighted efficiency."""
    return run.total_energy_j * run.total_seconds**2


@dataclass(frozen=True)
class RelativePoint:
    """A configuration in Figure 6/7 coordinates."""

    label: str
    speedup: float
    relative_power: float
    relative_energy: float

    @property
    def energy_win(self) -> bool:
        return self.relative_energy < 1.0


def relative_point(
    run: PlatformRun, reference: PlatformRun, label: str = ""
) -> RelativePoint:
    """Express ``run`` relative to ``reference`` (the (1, 1) baseline)."""
    if reference.total_seconds <= 0 or reference.average_power_w <= 0:
        raise ValueError("reference run must have positive time and power")
    return RelativePoint(
        label=label,
        speedup=reference.total_seconds / run.total_seconds,
        relative_power=run.average_power_w / reference.average_power_w,
        relative_energy=run.total_energy_j / reference.total_energy_j,
    )


def pareto_front(
    points: Iterable[Tuple[float, ...]],
) -> List[int]:
    """Indices of the minimising Pareto-optimal points.

    A point dominates another if it is <= in every coordinate and < in
    at least one.  Returns indices into the input order, sorted by the
    first coordinate.  Duplicates of a frontier point are all kept.
    """
    pts: Sequence[Tuple[float, ...]] = list(points)
    if not pts:
        return []
    dims = len(pts[0])
    if any(len(p) != dims for p in pts):
        raise ValueError("all points must share a dimensionality")

    def dominates(a: Tuple[float, ...], b: Tuple[float, ...]) -> bool:
        return all(x <= y for x, y in zip(a, b)) and any(
            x < y for x, y in zip(a, b)
        )

    # identical points never dominate each other (no strict coordinate),
    # so duplicates of a frontier point all survive
    front = [
        i for i, p in enumerate(pts) if not any(dominates(q, p) for q in pts)
    ]
    return sorted(front, key=lambda i: pts[i][0])
