"""PowerMon-style sampled power traces.

The paper measures system power with the PowerMon board (Bedard et
al.): a DC current sensor in the 12 V input path streaming samples
over USB at up to 1 kHz per channel.  :func:`sample_run` produces the
equivalent measurement of a simulated :class:`~repro.gpusim.executor.PlatformRun`:
a fixed-rate sample train of the (piecewise-constant) board power with
optional sensor noise and quantisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.executor import PlatformRun

__all__ = ["PowerMonChannel", "PowerMonTrace", "sample_run"]


@dataclass(frozen=True)
class PowerMonChannel:
    """One measurement channel (rail voltage, sense resistor, ADC noise)."""

    rail_volts: float = 12.0
    sample_rate_hz: float = 1000.0
    noise_w: float = 0.05  # ADC + sense-resistor noise, 1 sigma
    quantum_w: float = 0.01  # ADC quantisation step

    def __post_init__(self) -> None:
        if self.rail_volts <= 0 or self.sample_rate_hz <= 0:
            raise ValueError("rail voltage and sample rate must be positive")
        if self.noise_w < 0 or self.quantum_w < 0:
            raise ValueError("noise and quantum must be non-negative")


@dataclass(frozen=True)
class PowerMonTrace:
    """A sampled power measurement."""

    times_s: np.ndarray
    watts: np.ndarray
    channel: PowerMonChannel

    @property
    def num_samples(self) -> int:
        return int(self.times_s.size)

    @property
    def average_power_w(self) -> float:
        if self.watts.size == 0:
            return 0.0
        return float(self.watts.mean())

    @property
    def peak_power_w(self) -> float:
        if self.watts.size == 0:
            return 0.0
        return float(self.watts.max())

    @property
    def energy_j(self) -> float:
        """Trapezoid-free energy estimate: mean power x duration."""
        if self.times_s.size == 0:
            return 0.0
        duration = float(self.times_s[-1])
        return self.average_power_w * duration

    def current_a(self) -> np.ndarray:
        """What the sense resistor actually sees: rail current."""
        return self.watts / self.channel.rail_volts


def sample_run(
    run: PlatformRun,
    channel: PowerMonChannel | None = None,
    *,
    seed: int = 0,
) -> PowerMonTrace:
    """Sample a simulated run's power waveform like a PowerMon would.

    The run's per-iteration average power is treated as a
    piecewise-constant waveform; samples land every
    ``1/sample_rate_hz`` seconds, with Gaussian sensor noise and ADC
    quantisation applied.  Runs shorter than one sample period yield a
    single sample at the average power (PowerMon cannot resolve them —
    the same limitation the real device has).
    """
    if channel is None:
        channel = PowerMonChannel()
    boundaries, power = run.power_series()
    total = run.total_seconds
    if total <= 0 or boundaries.size == 0:
        return PowerMonTrace(
            times_s=np.zeros(0), watts=np.zeros(0), channel=channel
        )

    period = 1.0 / channel.sample_rate_hz
    times = np.arange(period, total, period)
    if times.size == 0:
        times = np.asarray([total])
    idx = np.searchsorted(boundaries, times, side="left")
    idx = np.minimum(idx, power.size - 1)
    watts = power[idx].astype(np.float64)

    rng = np.random.default_rng(seed)
    if channel.noise_w > 0:
        watts = watts + rng.normal(0.0, channel.noise_w, size=watts.size)
    if channel.quantum_w > 0:
        watts = np.round(watts / channel.quantum_w) * channel.quantum_w
    watts = np.maximum(watts, 0.0)
    return PowerMonTrace(times_s=times, watts=watts, channel=channel)
