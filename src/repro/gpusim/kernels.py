"""Per-stage kernel cost models.

Each of the four near+far stages becomes one simulated GPU kernel per
iteration.  A :class:`KernelSpec` holds the per-work-item costs
(compute cycles and memory traffic); :func:`iteration_kernels` maps an
:class:`~repro.instrument.trace.IterationRecord` to the kernels it
launched and their work-item counts:

* **advance** — one item per *edge* of the frontier's neighbour list
  (``X^(2)``): read column index + weight + endpoint distance,
  atomic-min write.  The dominant, memory-heavy kernel.
* **filter** — one item per advance output entry (``X^(2)``): hash/
  bitmap lookup to drop duplicates.
* **bisect-frontier** — one item per filtered vertex (``X^(3)``):
  distance compare + scatter to near/far.
* **far-queue** (bisect-far-queue for the baseline, the rebalancer for
  the self-tuning variant) — items are the frontier pass-through
  (``X^(4)``) plus any vertices moved in either direction plus a full
  far-queue compaction scan whenever a drain happened.

The constants are order-of-magnitude CUDA costs (a global atomic is a
few tens of cycles; a CSR edge touches ~20 bytes).  Their absolute
values only set the time scale; the *relative* behaviour the paper's
figures turn on (memory-bound advance, fixed-latency floor for small
launches) comes from the roofline in :mod:`repro.gpusim.executor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.instrument.trace import IterationRecord

__all__ = ["KernelSpec", "STAGE_SPECS", "iteration_kernels"]


@dataclass(frozen=True)
class KernelSpec:
    """Cost of one work item in a stage kernel."""

    name: str
    cycles_per_item: float
    bytes_per_item: float

    def __post_init__(self) -> None:
        if self.cycles_per_item <= 0 or self.bytes_per_item < 0:
            raise ValueError("kernel cost constants must be positive")


STAGE_SPECS = {
    "advance": KernelSpec("advance", cycles_per_item=14.0, bytes_per_item=24.0),
    "filter": KernelSpec("filter", cycles_per_item=6.0, bytes_per_item=12.0),
    "bisect": KernelSpec("bisect", cycles_per_item=5.0, bytes_per_item=12.0),
    "farqueue": KernelSpec("farqueue", cycles_per_item=6.0, bytes_per_item=16.0),
}


def iteration_kernels(rec: IterationRecord) -> List[Tuple[KernelSpec, int]]:
    """The kernels one iteration launched, with their work-item counts.

    Every stage launches even when its input is empty (the host cannot
    know the frontier emptied without reading back), so each iteration
    pays four launch overheads — this fixed cost is what makes
    many-iteration (tiny-delta) runs slow, matching Figure 3.
    """
    far_items = rec.x4 + rec.moved_from_far + rec.moved_to_far
    if rec.far_scanned:
        # adaptive runs report the exact range-query traffic (pulled +
        # re-validated entries); the flat-queue ablation's full scans
        # surface here
        far_items += rec.far_scanned
    elif rec.drains:
        # baseline drains compact/scan the whole far queue; the scan
        # work is bounded by the queue itself
        far_items += rec.far_size + rec.moved_from_far
    return [
        (STAGE_SPECS["advance"], rec.x2),
        (STAGE_SPECS["filter"], rec.x2),
        (STAGE_SPECS["bisect"], rec.x3),
        (STAGE_SPECS["farqueue"], far_items),
    ]
