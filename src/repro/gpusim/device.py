"""Device specifications and the Jetson TK1/TX1 presets.

A :class:`DeviceSpec` captures everything the kernel-time and power
models need: core count, supported core/memory frequencies, memory bus
width, voltage range, calibrated power envelope, and launch/latency
constants.

The two presets mirror the paper's platforms:

* **Jetson TK1** — Kepler GK20A GPU, 192 CUDA cores, core clock up to
  852 MHz, LPDDR3 on a 64-bit bus up to 924 MHz (≈14.8 GB/s);
  system power roughly 4 W idle to 12 W busy.
* **Jetson TX1** — Maxwell GM20B GPU, 256 CUDA cores, core clock up to
  998 MHz, LPDDR4 on a 64-bit bus up to 1600 MHz (≈25.6 GB/s);
  faster and somewhat more efficient, with a better-behaved stock
  DVFS policy (the paper's §5.2 observation).

Frequency values are MHz and match the boards' published operating
points (rounded to integers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["DeviceSpec", "JETSON_TK1", "JETSON_TX1", "get_device"]


@dataclass(frozen=True)
class DeviceSpec:
    """An analytic model of an embedded CPU+GPU board.

    Power calibration fields give the *maximum* dynamic power of each
    domain (at top frequency, top voltage, 100% utilisation); the
    power model scales them down with frequency, voltage and
    utilisation.  ``static_power_w`` is the whole-board floor (CPU,
    rails, idle GPU) — the paper measures system-level power with
    PowerMon, so we model the same scope.
    """

    name: str
    num_cores: int
    core_freqs_mhz: Tuple[int, ...]
    mem_freqs_mhz: Tuple[int, ...]
    # memory bandwidth: bytes/s per MHz of memory clock (bus width x DDR)
    mem_bytes_per_mhz: float
    # voltage endpoints of the linear V(f) curve over the core range
    v_min: float
    v_max: float
    # calibrated power envelope (watts)
    static_power_w: float
    max_core_dynamic_w: float
    max_mem_dynamic_w: float
    # items in flight per core for full throughput (latency hiding)
    saturation_occupancy: float
    kernel_launch_overhead_s: float
    # CPU-side controller cost per iteration for self-tuning runs (§5.2)
    controller_overhead_s: float

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ValueError("num_cores must be positive")
        if not self.core_freqs_mhz or not self.mem_freqs_mhz:
            raise ValueError("frequency tables must be non-empty")
        if tuple(sorted(self.core_freqs_mhz)) != self.core_freqs_mhz:
            raise ValueError("core_freqs_mhz must be sorted ascending")
        if tuple(sorted(self.mem_freqs_mhz)) != self.mem_freqs_mhz:
            raise ValueError("mem_freqs_mhz must be sorted ascending")
        if min(self.core_freqs_mhz) <= 0 or min(self.mem_freqs_mhz) <= 0:
            raise ValueError("frequencies must be positive")
        if not 0 < self.v_min <= self.v_max:
            raise ValueError("need 0 < v_min <= v_max")
        if min(
            self.static_power_w, self.max_core_dynamic_w, self.max_mem_dynamic_w
        ) < 0:
            raise ValueError("power figures must be non-negative")
        if self.saturation_occupancy <= 0:
            raise ValueError("saturation_occupancy must be positive")

    # ------------------------------------------------------------------
    @property
    def max_core_mhz(self) -> int:
        return self.core_freqs_mhz[-1]

    @property
    def max_mem_mhz(self) -> int:
        return self.mem_freqs_mhz[-1]

    @property
    def saturation_items(self) -> float:
        """Work items needed in flight for full throughput."""
        return self.num_cores * self.saturation_occupancy

    def mem_bandwidth(self, mem_mhz: float) -> float:
        """Bytes per second at the given memory clock."""
        return self.mem_bytes_per_mhz * mem_mhz

    def voltage(self, core_mhz: float) -> float:
        """Linear V(f) over the supported core range (clamped)."""
        lo, hi = self.core_freqs_mhz[0], self.core_freqs_mhz[-1]
        if hi == lo:
            return self.v_max
        t = (core_mhz - lo) / (hi - lo)
        t = min(max(t, 0.0), 1.0)
        return self.v_min + t * (self.v_max - self.v_min)

    def validate_setting(self, core_mhz: int, mem_mhz: int) -> None:
        if core_mhz not in self.core_freqs_mhz:
            raise ValueError(
                f"{core_mhz} MHz is not a supported core frequency of "
                f"{self.name}; options: {self.core_freqs_mhz}"
            )
        if mem_mhz not in self.mem_freqs_mhz:
            raise ValueError(
                f"{mem_mhz} MHz is not a supported memory frequency of "
                f"{self.name}; options: {self.mem_freqs_mhz}"
            )


JETSON_TK1 = DeviceSpec(
    name="jetson-tk1",
    num_cores=192,
    core_freqs_mhz=(72, 180, 252, 396, 540, 612, 696, 756, 804, 852),
    mem_freqs_mhz=(204, 396, 600, 792, 924),
    mem_bytes_per_mhz=16.0e6,  # 64-bit LPDDR3, DDR: 16 B per MHz -> 14.8 GB/s @ 924
    v_min=0.85,
    v_max=1.25,
    static_power_w=4.0,
    max_core_dynamic_w=6.0,
    max_mem_dynamic_w=2.5,
    saturation_occupancy=16.0,
    kernel_launch_overhead_s=8e-6,
    controller_overhead_s=5e-7,
)

JETSON_TX1 = DeviceSpec(
    name="jetson-tx1",
    num_cores=256,
    core_freqs_mhz=(153, 230, 307, 460, 614, 768, 921, 998),
    mem_freqs_mhz=(408, 665, 800, 1065, 1331, 1600),
    mem_bytes_per_mhz=16.0e6,  # 64-bit LPDDR4 -> 25.6 GB/s @ 1600
    v_min=0.82,
    v_max=1.23,
    static_power_w=4.5,
    max_core_dynamic_w=8.0,
    max_mem_dynamic_w=3.0,
    saturation_occupancy=16.0,
    kernel_launch_overhead_s=6e-6,
    controller_overhead_s=4e-7,
)

_DEVICES = {d.name: d for d in (JETSON_TK1, JETSON_TX1)}
_ALIASES = {"tk1": "jetson-tk1", "tx1": "jetson-tx1"}


def get_device(name: str) -> DeviceSpec:
    """Look up a preset by name ('tk1', 'tx1', or the full name)."""
    key = _ALIASES.get(name.lower(), name.lower())
    try:
        return _DEVICES[key]
    except KeyError:
        raise ValueError(
            f"unknown device {name!r}; options: {sorted(_DEVICES) + sorted(_ALIASES)}"
        ) from None
