"""Simulated embedded CPU+GPU platform.

Substitutes for the paper's experimental apparatus (NVIDIA Jetson
TK1/TX1 + PowerMon board): an analytic SIMT device model with

* :mod:`~repro.gpusim.device` — device specs with core/memory frequency
  tables (TK1 Kepler and TX1 Maxwell presets);
* :mod:`~repro.gpusim.kernels` — per-stage kernel cost models (roofline:
  time = max(compute, memory) + launch overhead, with a fixed-latency
  floor for under-filled launches);
* :mod:`~repro.gpusim.power` — CMOS-style power model with a linear
  V(f) curve and utilisation-dependent dynamic power;
* :mod:`~repro.gpusim.dvfs` — fixed frequency settings (the paper's
  "c/m" points) and a reactive hardware-managed governor;
* :mod:`~repro.gpusim.executor` — replays an SSSP
  :class:`~repro.instrument.trace.RunTrace` into time, energy and
  power;
* :mod:`~repro.gpusim.powermon` — a PowerMon-style sampled power trace
  (1 kHz, system-level, with measurement noise).
"""

from repro.gpusim.device import JETSON_TK1, JETSON_TX1, DeviceSpec, get_device
from repro.gpusim.dvfs import AutoGovernor, DVFSPolicy, FixedDVFS, FrequencySetting
from repro.gpusim.executor import IterationCost, KernelCost, PlatformRun, simulate_run
from repro.gpusim.kernels import KernelSpec, STAGE_SPECS, iteration_kernels
from repro.gpusim.power import PowerModel
from repro.gpusim.powermon import PowerMonChannel, PowerMonTrace, sample_run

__all__ = [
    "AutoGovernor",
    "DVFSPolicy",
    "DeviceSpec",
    "FixedDVFS",
    "FrequencySetting",
    "IterationCost",
    "JETSON_TK1",
    "JETSON_TX1",
    "KernelCost",
    "KernelSpec",
    "PlatformRun",
    "PowerModel",
    "PowerMonChannel",
    "PowerMonTrace",
    "STAGE_SPECS",
    "get_device",
    "iteration_kernels",
    "sample_run",
    "simulate_run",
]
