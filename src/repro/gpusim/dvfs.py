"""DVFS: frequency settings and governors.

Mirrors the paper's two operating modes:

* *explicit settings* — the "c/m" points of Figures 6-7 (e.g.
  ``852/924`` = 852 MHz core, 924 MHz memory), via :class:`FixedDVFS`;
* *hardware-managed* — "the hardware uses its own automatic policy",
  via :class:`AutoGovernor`, a reactive utilisation-threshold governor
  of the interactive-governor family that embedded NVIDIA boards ship.

A crucial realism detail: hardware governors sample on a *fixed wall-
clock period* (tens of milliseconds), not per kernel.  An SSSP
iteration lasts tens of microseconds, so the stock governor reacts to
utilisation averaged over hundreds of iterations and always lags
bursts — it runs the baseline's brief high-parallelism spikes at
whatever frequency the preceding lull chose, and keeps the clock up
through lulls after a burst.  A *steady* load (what the self-tuning
controller produces) is exactly what such a governor handles well;
this interaction is half of the paper's Figures 6-7 story.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.gpusim.device import DeviceSpec

__all__ = [
    "FrequencySetting",
    "DVFSPolicy",
    "FixedDVFS",
    "AutoGovernor",
    "default_governor",
]


@dataclass(frozen=True)
class FrequencySetting:
    """A (core MHz, memory MHz) operating point."""

    core_mhz: int
    mem_mhz: int

    @property
    def label(self) -> str:
        """The paper's "c/m" notation."""
        return f"{self.core_mhz}/{self.mem_mhz}"


class DVFSPolicy(ABC):
    """Chooses the operating point; observes utilisation as time passes."""

    @abstractmethod
    def select(self, device: DeviceSpec) -> FrequencySetting:
        """The setting for the upcoming iteration."""

    def observe(self, utilization: float, seconds: float) -> None:
        """Feed back one iteration's core utilisation and duration."""

    def reset(self) -> None:
        """Forget adaptation state (start of a new run)."""

    @property
    def label(self) -> str:
        return type(self).__name__


class FixedDVFS(DVFSPolicy):
    """Pin both clocks — the paper's explicit c/m settings."""

    def __init__(self, device: DeviceSpec, core_mhz: int, mem_mhz: int):
        device.validate_setting(core_mhz, mem_mhz)
        self.setting = FrequencySetting(core_mhz, mem_mhz)

    @classmethod
    def max_performance(cls, device: DeviceSpec) -> "FixedDVFS":
        return cls(device, device.max_core_mhz, device.max_mem_mhz)

    @classmethod
    def min_power(cls, device: DeviceSpec) -> "FixedDVFS":
        return cls(device, device.core_freqs_mhz[0], device.mem_freqs_mhz[0])

    def select(self, device: DeviceSpec) -> FrequencySetting:
        return self.setting

    @property
    def label(self) -> str:
        return self.setting.label


class AutoGovernor(DVFSPolicy):
    """Sampled reactive utilisation-threshold governor (stock policy).

    Every ``period_s`` of simulated time it compares the time-weighted
    mean utilisation since the last decision against two thresholds and
    steps the core clock up or down (``responsiveness`` steps at a
    time).  The memory clock follows the core clock's relative position
    in its table.

    The TX1's stock governor is better tuned than the TK1's — the paper
    leans on that ("continued improvements in DVFS set points on the
    TX1") — captured by :func:`default_governor`.
    """

    def __init__(
        self,
        up_threshold: float = 0.70,
        down_threshold: float = 0.25,
        responsiveness: int = 1,
        start_fraction: float = 0.5,
        period_s: float = 0.010,
    ):
        if not 0 <= down_threshold < up_threshold <= 1:
            raise ValueError("need 0 <= down_threshold < up_threshold <= 1")
        if responsiveness < 1:
            raise ValueError("responsiveness must be >= 1")
        if not 0 <= start_fraction <= 1:
            raise ValueError("start_fraction must be in [0, 1]")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self.responsiveness = responsiveness
        self.start_fraction = start_fraction
        self.period_s = period_s
        self._index: int | None = None
        self._acc_util_time = 0.0
        self._acc_time = 0.0

    def reset(self) -> None:
        self._index = None
        self._acc_util_time = 0.0
        self._acc_time = 0.0

    def observe(self, utilization: float, seconds: float) -> None:
        self._acc_util_time += utilization * seconds
        self._acc_time += seconds

    def select(self, device: DeviceSpec) -> FrequencySetting:
        table = device.core_freqs_mhz
        if self._index is None:
            self._index = int(round(self.start_fraction * (len(table) - 1)))
        elif self._acc_time >= self.period_s:
            mean_util = self._acc_util_time / self._acc_time
            if mean_util > self.up_threshold:
                self._index = min(self._index + self.responsiveness, len(table) - 1)
            elif mean_util < self.down_threshold:
                self._index = max(self._index - self.responsiveness, 0)
            self._acc_util_time = 0.0
            self._acc_time = 0.0
        core = table[self._index]
        mem_table = device.mem_freqs_mhz
        mem_idx = int(round(self._index / max(len(table) - 1, 1) * (len(mem_table) - 1)))
        return FrequencySetting(core, mem_table[mem_idx])

    @property
    def label(self) -> str:
        return "auto"


def default_governor(device: DeviceSpec) -> AutoGovernor:
    """The stock governor tuning for a preset.

    The TX1 governor samples faster and steps harder (its stock DVFS is
    visibly better than the TK1's in the paper's results).
    """
    if "tx1" in device.name:
        return AutoGovernor(
            up_threshold=0.60,
            down_threshold=0.30,
            responsiveness=2,
            period_s=0.004,
        )
    return AutoGovernor()
