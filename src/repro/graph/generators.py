"""Synthetic graph generators.

Two families matter for the reproduction:

* :func:`grid_road_network` — a planar-ish lattice with perturbed node
  positions, randomly deleted edges and Euclidean weights.  High
  diameter, degree <= 4: the structural stand-in for the Cal road
  network (DIMACS Shortest Path Challenge).
* :func:`rmat` / :func:`barabasi_albert` — scale-free networks with a
  heavy-tailed degree distribution and small diameter: the stand-in for
  the wikipedia-20051105 hyperlink graph.

The remaining generators (Erdős–Rényi, path, star, complete) exist for
tests and pathological-case benchmarks.

All generators are deterministic given a seed and return
:class:`~repro.graph.csr.CSRGraph`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.weights import euclidean_weights, uniform_int_weights

__all__ = [
    "grid_road_network",
    "rmat",
    "barabasi_albert",
    "erdos_renyi",
    "path_graph",
    "star_graph",
    "complete_graph",
    "random_weighted_graph",
    "watts_strogatz",
]


def grid_road_network(
    rows: int,
    cols: int,
    *,
    seed: int = 0,
    drop_fraction: float = 0.08,
    diagonal_fraction: float = 0.05,
    coordinate_jitter: float = 0.25,
    weight_noise: float = 0.15,
    regional_variation: float = 4.0,
    regional_bumps: int = 6,
    name: str | None = None,
) -> CSRGraph:
    """A road-network-like graph on a jittered ``rows x cols`` lattice.

    Nodes sit at perturbed integer grid coordinates.  Each node connects
    to its right and down neighbour (both directions), a fraction of
    edges is deleted to create detours, and a small fraction of diagonal
    "shortcut" roads is added.  Weights are Euclidean lengths with
    multiplicative noise, matching travel-time semantics.

    ``regional_variation`` models the urban/rural heterogeneity of a
    real road network: a smooth spatial field (a few Gaussian bumps)
    scales travel times by up to that factor between the slowest and
    fastest regions.  This matters for the reproduction: a static
    delta-stepping delta is tuned for one weight scale, so regionally
    varying weights are precisely what the paper's per-iteration
    adaptive delta exploits on Cal.  Set it to 1.0 for a homogeneous
    lattice.

    The result has maximum out-degree <= 8, average degree around 2-2.5
    per direction, and diameter Theta(rows + cols) — the traits the
    paper attributes to Cal (high diameter, low degree).
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    if not 0.0 <= drop_fraction < 1.0:
        raise ValueError("drop_fraction must be in [0, 1)")
    if regional_variation < 1.0:
        raise ValueError("regional_variation must be >= 1")
    rng = np.random.default_rng(seed)
    n = rows * cols

    jj, ii = np.meshgrid(np.arange(cols), np.arange(rows))
    xy = np.stack([jj.ravel(), ii.ravel()], axis=1).astype(np.float64)
    if coordinate_jitter > 0:
        xy += rng.uniform(-coordinate_jitter, coordinate_jitter, size=xy.shape)

    node = np.arange(n).reshape(rows, cols)
    # horizontal edges u -> u+1 and vertical u -> u+cols
    h_src = node[:, :-1].ravel()
    h_dst = node[:, 1:].ravel()
    v_src = node[:-1, :].ravel()
    v_dst = node[1:, :].ravel()
    src = np.concatenate([h_src, v_src])
    dst = np.concatenate([h_dst, v_dst])

    keep = rng.random(src.size) >= drop_fraction
    src, dst = src[keep], dst[keep]

    if diagonal_fraction > 0 and rows > 1 and cols > 1:
        d_src = node[:-1, :-1].ravel()
        d_dst = node[1:, 1:].ravel()
        pick = rng.random(d_src.size) < diagonal_fraction
        src = np.concatenate([src, d_src[pick]])
        dst = np.concatenate([dst, d_dst[pick]])

    # roads are two-way
    src2 = np.concatenate([src, dst])
    dst2 = np.concatenate([dst, src])
    w = euclidean_weights(xy[src2], xy[dst2], rng=rng, noise=weight_noise)

    if regional_variation > 1.0 and regional_bumps > 0:
        # smooth urban/rural speed field: Gaussian bumps over the map
        centers = np.stack(
            [
                rng.uniform(0, cols, size=regional_bumps),
                rng.uniform(0, rows, size=regional_bumps),
            ],
            axis=1,
        )
        sigma = 0.25 * max(rows, cols)
        mid = 0.5 * (xy[src2] + xy[dst2])
        field = np.zeros(src2.size)
        for cx, cy in centers:
            d2 = (mid[:, 0] - cx) ** 2 + (mid[:, 1] - cy) ** 2
            field += np.exp(-d2 / (2 * sigma * sigma))
        field /= field.max() if field.max() > 0 else 1.0
        # field in [0, 1] -> multiplier in [1, regional_variation]
        w = w * (1.0 + (regional_variation - 1.0) * field)

    return CSRGraph.from_edges(
        n, src2, dst2, w, name=name or f"road-{rows}x{cols}", dedupe=True
    )


def rmat(
    scale: int,
    edge_factor: int = 12,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    weight_low: int = 1,
    weight_high: int = 99,
    name: str | None = None,
) -> CSRGraph:
    """Recursive-MATrix (Kronecker) scale-free graph, Graph500-style.

    Generates ``edge_factor * 2**scale`` directed edges over
    ``2**scale`` vertices by recursive quadrant sampling with
    probabilities ``(a, b, c, d=1-a-b-c)``.  Duplicate edges are
    collapsed (min weight).  Weights are uniform integers in
    ``[weight_low, weight_high]`` as the paper uses for Wiki.
    """
    if scale < 0 or scale > 30:
        raise ValueError("scale must be in [0, 30]")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("quadrant probabilities must be non-negative")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = edge_factor * n

    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # vectorised recursive quadrant choice: one random draw per bit level
    for _ in range(scale):
        r = rng.random(m)
        go_right = (r >= a + b) & (r < a + b + c) | (r >= a + b + c)
        # quadrants: a = (0,0), b = (0,1), c = (1,0), d = (1,1)
        src_bit = (r >= a + b).astype(np.int64)
        dst_bit = (((r >= a) & (r < a + b)) | (r >= a + b + c)).astype(np.int64)
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
        del go_right

    # permute vertex ids so the heavy vertices are not clustered at 0
    perm = rng.permutation(n)
    src = perm[src]
    dst = perm[dst]
    # drop self-loops: they never change SSSP distances
    keep = src != dst
    src, dst = src[keep], dst[keep]
    w = uniform_int_weights(src.size, rng, weight_low, weight_high)
    return CSRGraph.from_edges(
        n, src, dst, w, name=name or f"rmat-s{scale}", dedupe=True
    )


def barabasi_albert(
    n: int,
    attach: int = 4,
    *,
    seed: int = 0,
    weight_low: int = 1,
    weight_high: int = 99,
    name: str | None = None,
) -> CSRGraph:
    """Preferential-attachment scale-free graph (undirected, symmetrised).

    Each new vertex attaches to ``attach`` existing vertices chosen
    proportionally to degree (implemented with the repeated-endpoint
    urn trick, fully vectorised per arrival batch).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    attach = max(1, min(attach, max(1, n - 1)))
    rng = np.random.default_rng(seed)

    # seed clique of (attach + 1) vertices
    n0 = min(n, attach + 1)
    seed_src, seed_dst = np.meshgrid(np.arange(n0), np.arange(n0))
    mask = seed_src.ravel() != seed_dst.ravel()
    src_list = [seed_src.ravel()[mask].astype(np.int64)]
    dst_list = [seed_dst.ravel()[mask].astype(np.int64)]

    # urn of endpoints; each undirected edge contributes both endpoints
    urn = [np.repeat(np.arange(n0), n0 - 1).astype(np.int64)]
    urn_size = n0 * (n0 - 1)

    for v in range(n0, n):
        flat = np.concatenate(urn) if len(urn) > 1 else urn[0]
        urn = [flat]
        targets = flat[rng.integers(0, urn_size, size=attach)]
        targets = np.unique(targets)
        s = np.full(targets.size, v, dtype=np.int64)
        src_list.append(np.concatenate([s, targets]))
        dst_list.append(np.concatenate([targets, s]))
        urn.append(np.concatenate([s, targets]))
        urn_size += 2 * targets.size

    src = np.concatenate(src_list)
    dst = np.concatenate(dst_list)
    w = uniform_int_weights(src.size, rng, weight_low, weight_high)
    return CSRGraph.from_edges(
        n, src, dst, w, name=name or f"ba-{n}", dedupe=True
    )


def erdos_renyi(
    n: int,
    avg_degree: float,
    *,
    seed: int = 0,
    weight_low: int = 1,
    weight_high: int = 99,
    name: str | None = None,
) -> CSRGraph:
    """G(n, m)-style random digraph with ``round(n * avg_degree)`` edges."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if avg_degree < 0:
        raise ValueError("avg_degree must be non-negative")
    rng = np.random.default_rng(seed)
    m = int(round(n * avg_degree))
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    w = uniform_int_weights(src.size, rng, weight_low, weight_high)
    return CSRGraph.from_edges(
        n, src, dst, w, name=name or f"er-{n}", dedupe=True
    )


def path_graph(n: int, *, weight: float = 1.0, name: str | None = None) -> CSRGraph:
    """Directed path ``0 -> 1 -> ... -> n-1`` — zero parallelism worst case."""
    if n < 1:
        raise ValueError("n must be >= 1")
    src = np.arange(n - 1, dtype=np.int64)
    dst = src + 1
    w = np.full(n - 1, float(weight))
    return CSRGraph.from_edges(n, src, dst, w, name=name or f"path-{n}")


def star_graph(n: int, *, weight: float = 1.0, name: str | None = None) -> CSRGraph:
    """Star: centre 0 points at all others — one-shot maximal parallelism."""
    if n < 1:
        raise ValueError("n must be >= 1")
    src = np.zeros(n - 1, dtype=np.int64)
    dst = np.arange(1, n, dtype=np.int64)
    w = np.full(n - 1, float(weight))
    return CSRGraph.from_edges(n, src, dst, w, name=name or f"star-{n}")


def complete_graph(
    n: int,
    *,
    seed: int = 0,
    weight_low: int = 1,
    weight_high: int = 99,
    name: str | None = None,
) -> CSRGraph:
    """Complete digraph with random integer weights (dense stress case)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    s, d = np.meshgrid(np.arange(n), np.arange(n))
    mask = s.ravel() != d.ravel()
    src, dst = s.ravel()[mask], d.ravel()[mask]
    w = uniform_int_weights(src.size, rng, weight_low, weight_high)
    return CSRGraph.from_edges(n, src, dst, w, name=name or f"complete-{n}")


def random_weighted_graph(
    n: int,
    m: int,
    *,
    seed: int = 0,
    max_weight: float = 10.0,
    integer: bool = False,
) -> CSRGraph:
    """Unstructured random digraph used heavily by the property tests."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if m < 0:
        raise ValueError("m must be >= 0")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    if integer:
        w = rng.integers(1, max(2, int(max_weight)) + 1, size=m).astype(np.float64)
    else:
        w = rng.uniform(0.01, max_weight, size=m)
    return CSRGraph.from_edges(n, src, dst, w, name=f"rand-{n}-{m}", dedupe=True)


def watts_strogatz(
    n: int,
    neighbors: int = 4,
    rewire: float = 0.1,
    *,
    seed: int = 0,
    weight_low: int = 1,
    weight_high: int = 99,
    name: str | None = None,
) -> CSRGraph:
    """Watts-Strogatz small-world graph (symmetrised digraph).

    A ring lattice where each vertex connects to its ``neighbors``
    nearest ring neighbours (``neighbors`` must be even), with each
    edge's far endpoint rewired uniformly at random with probability
    ``rewire``.  Interpolates between the road-like regime
    (``rewire=0``: high diameter, regular degree) and the random-graph
    regime — a third structural family for controller stress tests.
    """
    if n < 3:
        raise ValueError("n must be >= 3")
    if neighbors < 2 or neighbors % 2 != 0 or neighbors >= n:
        raise ValueError("neighbors must be even, >= 2 and < n")
    if not 0.0 <= rewire <= 1.0:
        raise ValueError("rewire must be in [0, 1]")
    rng = np.random.default_rng(seed)

    base = np.arange(n, dtype=np.int64)
    src_list = []
    dst_list = []
    for hop in range(1, neighbors // 2 + 1):
        src_list.append(base)
        dst_list.append((base + hop) % n)
    src = np.concatenate(src_list)
    dst = np.concatenate(dst_list)

    flip = rng.random(src.size) < rewire
    random_targets = rng.integers(0, n, size=int(flip.sum()))
    dst = dst.copy()
    dst[flip] = random_targets
    keep = src != dst  # rewiring may create self-loops; drop them
    src, dst = src[keep], dst[keep]

    src2 = np.concatenate([src, dst])
    dst2 = np.concatenate([dst, src])
    w = uniform_int_weights(src2.size, rng, weight_low, weight_high)
    return CSRGraph.from_edges(
        n, src2, dst2, w, name=name or f"ws-{n}", dedupe=True
    )
