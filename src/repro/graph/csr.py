"""Compressed-sparse-row weighted digraph.

All SSSP algorithms in this package operate on :class:`CSRGraph`: an
immutable adjacency structure with ``int64`` row offsets, ``int32``
column indices and ``float64`` edge weights.  The layout mirrors what a
GPU graph library such as Gunrock uses, which matters here because the
paper's parallelism counters (``X_k^(1..4)``) are defined in terms of
CSR neighbour-list sizes.

The class is deliberately small: construction, validation, neighbour
slicing, degree queries, transpose and a handful of conversion helpers.
Everything analytical lives in :mod:`repro.graph.properties`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Tuple

import numpy as np

__all__ = ["CSRGraph"]


@dataclass(frozen=True)
class CSRGraph:
    """A weighted directed graph in CSR form.

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``num_nodes + 1``; the out-neighbours of
        vertex ``u`` occupy ``indices[indptr[u]:indptr[u + 1]]``.
    indices:
        ``int32`` array of length ``num_edges`` holding edge endpoints.
    weights:
        ``float64`` array of length ``num_edges`` holding edge weights.
        Weights must be non-negative for every SSSP algorithm except
        Bellman–Ford (which tolerates negative weights but not negative
        cycles).
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray
    name: str = field(default="graph", compare=False)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        indices = np.ascontiguousarray(self.indices, dtype=np.int32)
        weights = np.ascontiguousarray(self.weights, dtype=np.float64)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "weights", weights)
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ValueError` if the CSR arrays are inconsistent."""
        if self.indptr.ndim != 1 or self.indptr.size < 1:
            raise ValueError("indptr must be a 1-D array of length >= 1")
        if self.indptr[0] != 0:
            raise ValueError("indptr[0] must be 0")
        if self.indices.ndim != 1 or self.weights.ndim != 1:
            raise ValueError("indices and weights must be 1-D")
        if self.indices.size != self.weights.size:
            raise ValueError(
                f"indices ({self.indices.size}) and weights "
                f"({self.weights.size}) must have equal length"
            )
        if self.indptr[-1] != self.indices.size:
            raise ValueError(
                f"indptr[-1]={self.indptr[-1]} must equal "
                f"num_edges={self.indices.size}"
            )
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        n = self.num_nodes
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= n
        ):
            raise ValueError("edge endpoint out of range")
        if np.any(~np.isfinite(self.weights)):
            raise ValueError("edge weights must be finite")

    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        src: Iterable[int],
        dst: Iterable[int],
        weight: Iterable[float],
        *,
        name: str = "graph",
        dedupe: bool = False,
    ) -> "CSRGraph":
        """Build a CSR graph from parallel edge arrays.

        Parameters
        ----------
        num_nodes:
            Number of vertices; endpoints must lie in ``[0, num_nodes)``.
        src, dst, weight:
            Parallel arrays describing directed edges ``src -> dst``.
        dedupe:
            When true, parallel edges are collapsed keeping the minimum
            weight (the SSSP-preserving reduction).
        """
        src_a = np.asarray(list(src) if not isinstance(src, np.ndarray) else src)
        dst_a = np.asarray(list(dst) if not isinstance(dst, np.ndarray) else dst)
        w_a = np.asarray(
            list(weight) if not isinstance(weight, np.ndarray) else weight,
            dtype=np.float64,
        )
        if not (src_a.shape == dst_a.shape == w_a.shape):
            raise ValueError("src, dst and weight must have identical shapes")
        if num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        if src_a.size:
            if src_a.min() < 0 or src_a.max() >= num_nodes:
                raise ValueError("source endpoint out of range")
            if dst_a.min() < 0 or dst_a.max() >= num_nodes:
                raise ValueError("destination endpoint out of range")

        src_a = src_a.astype(np.int64, copy=False)
        dst_a = dst_a.astype(np.int64, copy=False)

        if dedupe and src_a.size:
            key = src_a * np.int64(num_nodes) + dst_a
            order = np.argsort(key, kind="stable")
            key_s, w_s = key[order], w_a[order]
            # minimum weight within each run of equal keys
            boundaries = np.flatnonzero(np.diff(key_s)) + 1
            starts = np.concatenate(([0], boundaries))
            w_min = np.minimum.reduceat(w_s, starts)
            key_u = key_s[starts]
            src_a = (key_u // num_nodes).astype(np.int64)
            dst_a = (key_u % num_nodes).astype(np.int64)
            w_a = w_min

        order = np.argsort(src_a, kind="stable")
        src_s, dst_s, w_s = src_a[order], dst_a[order], w_a[order]
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.add.at(indptr, src_s + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(
            indptr=indptr,
            indices=dst_s.astype(np.int32),
            weights=w_s,
            name=name,
        )

    @classmethod
    def empty(cls, num_nodes: int = 0, *, name: str = "empty") -> "CSRGraph":
        """An edgeless graph with ``num_nodes`` vertices."""
        return cls(
            indptr=np.zeros(num_nodes + 1, dtype=np.int64),
            indices=np.zeros(0, dtype=np.int32),
            weights=np.zeros(0, dtype=np.float64),
            name=name,
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return int(self.indptr.size - 1)

    @property
    def num_edges(self) -> int:
        return int(self.indices.size)

    def out_degree(self, u: int | np.ndarray | None = None) -> np.ndarray | int:
        """Out-degree of ``u`` (scalar), of an array of vertices, or of all."""
        degrees = np.diff(self.indptr)
        if u is None:
            return degrees
        if np.isscalar(u):
            return int(degrees[u])
        return degrees[np.asarray(u)]

    def neighbors(self, u: int) -> np.ndarray:
        """Out-neighbour vertex ids of ``u`` (a CSR view, do not mutate)."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def neighbor_weights(self, u: int) -> np.ndarray:
        """Weights parallel to :meth:`neighbors`."""
        return self.weights[self.indptr[u] : self.indptr[u + 1]]

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate ``(u, v, w)`` triples (slow; for tests and I/O only)."""
        src = np.repeat(
            np.arange(self.num_nodes, dtype=np.int64), np.diff(self.indptr)
        )
        for u, v, w in zip(src, self.indices, self.weights):
            yield int(u), int(v), float(w)

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(src, dst, weight)`` arrays (src is materialised)."""
        src = np.repeat(
            np.arange(self.num_nodes, dtype=np.int64), np.diff(self.indptr)
        )
        return src, self.indices.astype(np.int64), self.weights.copy()

    @property
    def max_degree(self) -> int:
        if self.num_nodes == 0:
            return 0
        return int(np.diff(self.indptr).max())

    @property
    def average_degree(self) -> float:
        if self.num_nodes == 0:
            return 0.0
        return self.num_edges / self.num_nodes

    @property
    def average_weight(self) -> float:
        """Mean edge weight; 1.0 for edgeless graphs (a safe delta seed)."""
        if self.num_edges == 0:
            return 1.0
        return float(self.weights.mean())

    def has_negative_weights(self) -> bool:
        return bool(self.num_edges and self.weights.min() < 0)

    def fingerprint(self) -> str:
        """A stable content hash of the graph (hex string).

        Covers the CSR arrays (values *and* dtypes) plus the name, so
        two graphs with identical topology but different weights — or
        the same arrays under a different name — fingerprint apart.
        The digest is what the query-service result cache keys on: a
        cached distance array must never be served for a graph whose
        weights have changed (see :mod:`repro.service.cache`).

        Computed once and memoised on the instance (the arrays are
        immutable by convention).
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        h = hashlib.sha256()
        h.update(b"csr-v1\x00")
        h.update(self.name.encode("utf-8"))
        h.update(b"\x00")
        for arr in (self.indptr, self.indices, self.weights):
            h.update(str(arr.dtype).encode("ascii"))
            h.update(np.ascontiguousarray(arr).tobytes())
        digest = h.hexdigest()
        object.__setattr__(self, "_fingerprint", digest)
        return digest

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def reverse(self) -> "CSRGraph":
        """The transpose graph (every edge reversed)."""
        src, dst, w = self.edge_arrays()
        return CSRGraph.from_edges(
            self.num_nodes, dst, src, w, name=f"{self.name}^T"
        )

    def to_undirected(self) -> "CSRGraph":
        """Symmetrise: add the reverse of every edge, deduping by min weight."""
        src, dst, w = self.edge_arrays()
        return CSRGraph.from_edges(
            self.num_nodes,
            np.concatenate([src, dst]),
            np.concatenate([dst, src]),
            np.concatenate([w, w]),
            name=f"{self.name}+sym",
            dedupe=True,
        )

    def with_weights(self, weights: np.ndarray, *, name: str | None = None) -> "CSRGraph":
        """Same topology, new weights."""
        return CSRGraph(
            indptr=self.indptr,
            indices=self.indices,
            weights=np.asarray(weights, dtype=np.float64),
            name=name or self.name,
        )

    def subgraph_mask(self, keep: np.ndarray, *, name: str | None = None) -> "CSRGraph":
        """Induced subgraph on ``keep`` (bool mask over vertices).

        Vertices are renumbered densely in original order.
        """
        keep = np.asarray(keep, dtype=bool)
        if keep.size != self.num_nodes:
            raise ValueError("mask size must equal num_nodes")
        new_id = np.full(self.num_nodes, -1, dtype=np.int64)
        new_id[keep] = np.arange(int(keep.sum()), dtype=np.int64)
        src, dst, w = self.edge_arrays()
        m = keep[src] & keep[dst]
        return CSRGraph.from_edges(
            int(keep.sum()),
            new_id[src[m]],
            new_id[dst[m]],
            w[m],
            name=name or f"{self.name}[sub]",
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, max_deg={self.max_degree})"
        )
