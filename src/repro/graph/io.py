"""Graph file formats.

The paper's inputs come as DIMACS Shortest Path Challenge ``.gr`` files
(Cal) and UF sparse-matrix-collection Matrix Market files (Wiki).  We
implement readers and writers for both, plus a trivial TSV edge list,
so that a user with the real datasets can run the harness on them
unchanged.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "read_dimacs",
    "write_dimacs",
    "read_matrix_market",
    "write_matrix_market",
    "read_edge_list",
    "write_edge_list",
    "load_graph",
]


def _open_text(path: str | Path, mode: str = "rt") -> TextIO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode)  # type: ignore[return-value]
    return open(path, mode)


# ----------------------------------------------------------------------
# DIMACS Shortest Path Challenge (.gr)
# ----------------------------------------------------------------------
def read_dimacs(path: str | Path) -> CSRGraph:
    """Read a DIMACS ``.gr`` file (``p sp N M`` header, ``a u v w`` arcs).

    DIMACS vertex ids are 1-based; we convert to 0-based.
    """
    n = m = None
    src: list[int] = []
    dst: list[int] = []
    w: list[float] = []
    with _open_text(path) as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) != 4 or parts[1] != "sp":
                    raise ValueError(f"bad DIMACS problem line: {line!r}")
                n, m = int(parts[2]), int(parts[3])
            elif parts[0] == "a":
                if len(parts) != 4:
                    raise ValueError(f"bad DIMACS arc line: {line!r}")
                src.append(int(parts[1]) - 1)
                dst.append(int(parts[2]) - 1)
                w.append(float(parts[3]))
            else:
                raise ValueError(f"unrecognised DIMACS line: {line!r}")
    if n is None:
        raise ValueError("missing DIMACS problem line")
    if m is not None and m != len(src):
        raise ValueError(f"header declares {m} arcs but file has {len(src)}")
    return CSRGraph.from_edges(
        n,
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        np.asarray(w, dtype=np.float64),
        name=Path(path).stem,
    )


def write_dimacs(graph: CSRGraph, path: str | Path, *, comment: str = "") -> None:
    """Write ``graph`` in DIMACS ``.gr`` format (1-based, integer-rounded ok)."""
    with _open_text(path, "wt") as fh:
        if comment:
            for ln in comment.splitlines():
                fh.write(f"c {ln}\n")
        fh.write(f"p sp {graph.num_nodes} {graph.num_edges}\n")
        src, dst, w = graph.edge_arrays()
        buf = io.StringIO()
        for u, v, ww in zip(src, dst, w):
            if float(ww).is_integer():
                buf.write(f"a {u + 1} {v + 1} {int(ww)}\n")
            else:
                buf.write(f"a {u + 1} {v + 1} {ww:.17g}\n")
        fh.write(buf.getvalue())


# ----------------------------------------------------------------------
# Matrix Market coordinate format
# ----------------------------------------------------------------------
def read_matrix_market(path: str | Path) -> CSRGraph:
    """Read a Matrix Market ``coordinate`` file as a digraph.

    ``pattern`` matrices get unit weights; ``symmetric`` matrices are
    expanded to both directions (general UF-collection convention).
    """
    with _open_text(path) as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError("missing MatrixMarket banner")
        tokens = header.split()
        if len(tokens) < 5 or tokens[1] != "matrix" or tokens[2] != "coordinate":
            raise ValueError(f"unsupported MatrixMarket header: {header!r}")
        field, symmetry = tokens[3], tokens[4]
        if field not in {"real", "integer", "pattern"}:
            raise ValueError(f"unsupported field type {field!r}")
        if symmetry not in {"general", "symmetric"}:
            raise ValueError(f"unsupported symmetry {symmetry!r}")

        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        rows, cols, nnz = (int(t) for t in line.split())
        if rows != cols:
            raise ValueError("graph adjacency matrices must be square")

        src = np.empty(nnz, dtype=np.int64)
        dst = np.empty(nnz, dtype=np.int64)
        w = np.ones(nnz, dtype=np.float64)
        for i in range(nnz):
            parts = fh.readline().split()
            src[i] = int(parts[0]) - 1
            dst[i] = int(parts[1]) - 1
            if field != "pattern":
                w[i] = float(parts[2])

    if symmetry == "symmetric":
        off = src != dst  # mirror all off-diagonal entries
        src, dst, w = (
            np.concatenate([src, dst[off]]),
            np.concatenate([dst, src[off]]),
            np.concatenate([w, w[off]]),
        )
    return CSRGraph.from_edges(rows, src, dst, w, name=Path(path).stem, dedupe=True)


def write_matrix_market(graph: CSRGraph, path: str | Path) -> None:
    """Write the adjacency matrix in Matrix Market general/real coordinate form."""
    src, dst, w = graph.edge_arrays()
    with _open_text(path, "wt") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        fh.write(f"% written by repro for graph {graph.name}\n")
        fh.write(f"{graph.num_nodes} {graph.num_nodes} {graph.num_edges}\n")
        buf = io.StringIO()
        for u, v, ww in zip(src, dst, w):
            buf.write(f"{u + 1} {v + 1} {ww:.17g}\n")
        fh.write(buf.getvalue())


# ----------------------------------------------------------------------
# TSV edge list
# ----------------------------------------------------------------------
def read_edge_list(path: str | Path, *, num_nodes: int | None = None) -> CSRGraph:
    """Read ``src<TAB>dst<TAB>weight`` lines (0-based ids; '#' comments)."""
    src: list[int] = []
    dst: list[int] = []
    w: list[float] = []
    with _open_text(path) as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) == 2:
                u, v, ww = int(parts[0]), int(parts[1]), 1.0
            elif len(parts) == 3:
                u, v, ww = int(parts[0]), int(parts[1]), float(parts[2])
            else:
                raise ValueError(f"bad edge-list line: {line!r}")
            src.append(u)
            dst.append(v)
            w.append(ww)
    if num_nodes is None:
        num_nodes = (max(max(src, default=-1), max(dst, default=-1)) + 1) if src else 0
    return CSRGraph.from_edges(
        num_nodes,
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        np.asarray(w, dtype=np.float64),
        name=Path(path).stem,
    )


def write_edge_list(graph: CSRGraph, path: str | Path) -> None:
    """Write ``src<TAB>dst<TAB>weight`` lines."""
    src, dst, w = graph.edge_arrays()
    with _open_text(path, "wt") as fh:
        fh.write(f"# {graph.name}: {graph.num_nodes} nodes {graph.num_edges} edges\n")
        buf = io.StringIO()
        for u, v, ww in zip(src, dst, w):
            buf.write(f"{u}\t{v}\t{ww:.17g}\n")
        fh.write(buf.getvalue())


def load_graph(path: str | Path) -> CSRGraph:
    """Dispatch on extension: ``.gr[.gz]`` DIMACS, ``.mtx[.gz]`` MatrixMarket, else TSV."""
    p = Path(path)
    suffixes = [s for s in p.suffixes if s != ".gz"]
    ext = suffixes[-1] if suffixes else ""
    if ext == ".gr":
        return read_dimacs(p)
    if ext == ".mtx":
        return read_matrix_market(p)
    if ext in {".tsv", ".txt", ".el"}:
        return read_edge_list(p)
    raise ValueError(f"cannot infer graph format from {p.name!r}")
