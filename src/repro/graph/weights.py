"""Edge-weight assignment schemes.

The paper assigns uniform random integer weights in ``[1, 99]`` to the
Wiki hyperlink network (which is unweighted in the UF collection) and
uses the DIMACS-provided travel-time weights for Cal.  This module
provides those schemes plus a few more used in tests and ablations.

All functions take an edge count (or a graph) and a seeded
:class:`numpy.random.Generator`, and return a ``float64`` weight array.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.graph.csr import CSRGraph

__all__ = [
    "uniform_int_weights",
    "uniform_float_weights",
    "exponential_weights",
    "unit_weights",
    "euclidean_weights",
    "assign_weights",
]


def uniform_int_weights(
    num_edges: int,
    rng: np.random.Generator,
    low: int = 1,
    high: int = 99,
) -> np.ndarray:
    """Uniform random integers in ``[low, high]`` (paper's Wiki scheme)."""
    if low > high:
        raise ValueError("low must be <= high")
    if low <= 0:
        raise ValueError("weights must stay positive for SSSP; low must be >= 1")
    return rng.integers(low, high + 1, size=num_edges).astype(np.float64)


def uniform_float_weights(
    num_edges: int,
    rng: np.random.Generator,
    low: float = 0.0,
    high: float = 1.0,
) -> np.ndarray:
    """Uniform floats in ``[low, high)``."""
    if low > high:
        raise ValueError("low must be <= high")
    return rng.uniform(low, high, size=num_edges)


def exponential_weights(
    num_edges: int,
    rng: np.random.Generator,
    scale: float = 1.0,
) -> np.ndarray:
    """Exponentially distributed weights (heavy-ish tail, all positive)."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    # Shift away from 0 so delta-stepping buckets stay finite in count.
    return rng.exponential(scale, size=num_edges) + 1e-6


def unit_weights(num_edges: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """All-ones weights (turns SSSP into BFS level computation)."""
    return np.ones(num_edges, dtype=np.float64)


def euclidean_weights(
    src_xy: np.ndarray,
    dst_xy: np.ndarray,
    rng: np.random.Generator | None = None,
    noise: float = 0.0,
) -> np.ndarray:
    """Euclidean distance between embedded endpoints (road-network scheme).

    Parameters
    ----------
    src_xy, dst_xy:
        ``(E, 2)`` coordinate arrays for edge endpoints.
    noise:
        Optional multiplicative jitter, ``weight *= U[1, 1 + noise]``,
        modelling that travel time is not exactly proportional to length.
    """
    src_xy = np.asarray(src_xy, dtype=np.float64)
    dst_xy = np.asarray(dst_xy, dtype=np.float64)
    if src_xy.shape != dst_xy.shape or src_xy.ndim != 2 or src_xy.shape[1] != 2:
        raise ValueError("coordinate arrays must both be (E, 2)")
    w = np.hypot(src_xy[:, 0] - dst_xy[:, 0], src_xy[:, 1] - dst_xy[:, 1])
    if noise > 0:
        if rng is None:
            raise ValueError("rng required when noise > 0")
        w = w * rng.uniform(1.0, 1.0 + noise, size=w.size)
    # Guard against coincident points producing zero-weight edges, which
    # make delta-stepping's bucket count unbounded in theory.
    return np.maximum(w, 1e-9)


def assign_weights(
    graph: "CSRGraph",
    scheme: str,
    rng: np.random.Generator,
    **kwargs,
) -> "CSRGraph":
    """Return a copy of ``graph`` with weights drawn from ``scheme``.

    ``scheme`` is one of ``uniform_int``, ``uniform_float``,
    ``exponential``, ``unit``.
    """
    dispatch = {
        "uniform_int": uniform_int_weights,
        "uniform_float": uniform_float_weights,
        "exponential": exponential_weights,
        "unit": unit_weights,
    }
    if scheme not in dispatch:
        raise ValueError(
            f"unknown weight scheme {scheme!r}; expected one of {sorted(dispatch)}"
        )
    if scheme == "unit":
        w = unit_weights(graph.num_edges)
    else:
        w = dispatch[scheme](graph.num_edges, rng, **kwargs)
    return graph.with_weights(w)
