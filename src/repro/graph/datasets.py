"""Stand-ins for the paper's input graphs (Table 1).

The paper evaluates on two UF-sparse-matrix-collection graphs that we
cannot download offline:

* **Cal** — a California road network from the DIMACS Shortest Path
  Challenge: 1 890 815 nodes, 4 630 444 edges, high diameter, low
  degree, travel-time weights.
* **Wiki** — wikipedia-20051105: 1 634 989 nodes, 19 735 890 edges,
  max degree 4970, low diameter, heavy-tailed degrees; the paper adds
  uniform random integer weights in [1, 99].

``cal_like`` and ``wiki_like`` generate synthetic graphs with the same
*structural traits* at a configurable scale (``scale=1.0`` approximates
the original sizes; benchmarks default to a smaller scale so the full
harness runs in minutes).  DESIGN.md documents why these substitutions
preserve the behaviour the paper's evaluation turns on.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

from repro.graph.csr import CSRGraph
from repro.graph.generators import grid_road_network, rmat

__all__ = ["DatasetSummary", "cal_like", "wiki_like", "bench_scale", "PAPER_TABLE1"]

# The paper's Table 1, used by the Table-1 bench for side-by-side output.
PAPER_TABLE1 = {
    "Cal": {"nodes": 1_890_815, "edges": 4_630_444, "max_degree": None},
    "Wiki": {"nodes": 1_634_989, "edges": 19_735_890, "max_degree": 4970},
}

# Original sizes that scale=1.0 approximates.
_CAL_NODES = 1_890_815
_WIKI_NODES = 1_634_989
_WIKI_EDGE_FACTOR = 12  # 19.7M edges / 1.63M nodes ≈ 12


@dataclass(frozen=True)
class DatasetSummary:
    """What a dataset factory produced, for experiment logs."""

    name: str
    scale: float
    num_nodes: int
    num_edges: int
    max_degree: int


def bench_scale(default: float = 0.02) -> float:
    """Scale factor for benchmark datasets.

    Override with the ``REPRO_SCALE`` environment variable (e.g.
    ``REPRO_SCALE=1.0`` to approximate the paper's full sizes).
    """
    raw = os.environ.get("REPRO_SCALE")
    if raw is None:
        return default
    value = float(raw)
    if not 0 < value <= 4:
        raise ValueError(f"REPRO_SCALE={value} out of sensible range (0, 4]")
    return value


def cal_like(scale: float = 0.02, *, seed: int = 7) -> CSRGraph:
    """Road-network stand-in for Cal at ``scale`` of the original node count.

    A jittered lattice sized so ``rows * cols ~= scale * 1 890 815``,
    with an aspect ratio of ~2:1 (California is long and thin, which
    stretches the diameter the way the real network's geometry does).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    target_nodes = max(16, int(scale * _CAL_NODES))
    cols = max(4, int(math.sqrt(target_nodes / 2.0)))
    rows = max(4, target_nodes // cols)
    g = grid_road_network(rows, cols, seed=seed, name=f"cal-like-{rows}x{cols}")
    return g


def wiki_like(scale: float = 0.02, *, seed: int = 11) -> CSRGraph:
    """Scale-free stand-in for Wiki at ``scale`` of the original node count.

    RMAT with Graph500 skew and edge factor 12, weights U{1..99} exactly
    as the paper assigns to the (unweighted) Wiki hyperlink network.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    target_nodes = max(16, int(scale * _WIKI_NODES))
    rmat_scale = max(4, int(round(math.log2(target_nodes))))
    g = rmat(
        rmat_scale,
        edge_factor=_WIKI_EDGE_FACTOR,
        seed=seed,
        name=f"wiki-like-s{rmat_scale}",
    )
    return g


def summarize(graph: CSRGraph, scale: float) -> DatasetSummary:
    """Build a :class:`DatasetSummary` for a generated dataset."""
    return DatasetSummary(
        name=graph.name,
        scale=scale,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        max_degree=graph.max_degree,
    )
