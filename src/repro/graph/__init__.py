"""Graph substrate: CSR digraphs, generators, weights, I/O, datasets.

This subpackage provides everything the SSSP algorithms consume:

* :class:`~repro.graph.csr.CSRGraph` — the compressed-sparse-row digraph
  all algorithms operate on.
* :mod:`~repro.graph.generators` — synthetic graph families (grid road
  networks, scale-free RMAT/preferential-attachment, Erdős–Rényi, and
  pathological shapes for testing).
* :mod:`~repro.graph.weights` — edge-weight assignment schemes.
* :mod:`~repro.graph.io` — DIMACS ``.gr``, Matrix Market, and TSV
  edge-list readers/writers.
* :mod:`~repro.graph.properties` — degree statistics, components, and
  diameter estimation used to validate the Table 1 stand-ins.
* :mod:`~repro.graph.datasets` — the ``cal_like`` / ``wiki_like``
  substitutes for the paper's Cal and Wiki inputs.
"""

from repro.graph.csr import CSRGraph
from repro.graph.datasets import DatasetSummary, cal_like, wiki_like
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    erdos_renyi,
    grid_road_network,
    path_graph,
    rmat,
    star_graph,
)
from repro.graph.properties import (
    GraphStats,
    degree_statistics,
    estimate_diameter,
    graph_stats,
    is_connected_from,
    reachable_count,
    weakly_connected_components,
)

__all__ = [
    "CSRGraph",
    "DatasetSummary",
    "GraphStats",
    "barabasi_albert",
    "cal_like",
    "complete_graph",
    "degree_statistics",
    "erdos_renyi",
    "estimate_diameter",
    "graph_stats",
    "grid_road_network",
    "is_connected_from",
    "path_graph",
    "reachable_count",
    "rmat",
    "star_graph",
    "weakly_connected_components",
    "wiki_like",
]
