"""Structural graph properties.

These back two things: validation that the synthetic Table 1 stand-ins
have the traits the paper attributes to the originals (Cal: high
diameter / low degree; Wiki: heavy tail / low diameter), and general
test assertions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "GraphStats",
    "degree_statistics",
    "graph_stats",
    "bfs_levels",
    "reachable_count",
    "is_connected_from",
    "estimate_diameter",
    "weakly_connected_components",
]


@dataclass(frozen=True)
class GraphStats:
    """Summary row matching the columns of the paper's Table 1 (+extras)."""

    name: str
    num_nodes: int
    num_edges: int
    max_degree: int
    average_degree: float
    degree_p99: float
    estimated_diameter: int
    average_weight: float

    def as_row(self) -> dict:
        return {
            "Input graph": self.name,
            "Nodes": self.num_nodes,
            "Edges": self.num_edges,
            "Max degree": self.max_degree,
            "Avg degree": round(self.average_degree, 2),
            "P99 degree": round(self.degree_p99, 1),
            "Est. diameter": self.estimated_diameter,
            "Avg weight": round(self.average_weight, 2),
        }


def degree_statistics(graph: CSRGraph) -> dict:
    """Out-degree distribution summary."""
    deg = np.diff(graph.indptr)
    if deg.size == 0:
        return {"max": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "zeros": 0}
    return {
        "max": int(deg.max()),
        "mean": float(deg.mean()),
        "p50": float(np.percentile(deg, 50)),
        "p99": float(np.percentile(deg, 99)),
        "zeros": int((deg == 0).sum()),
    }


def bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """Unweighted BFS hop counts from ``source`` (-1 for unreachable).

    Vectorised frontier expansion over CSR — the same advance machinery
    the SSSP kernels use, minus weights.
    """
    n = graph.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} nodes")
    level = np.full(n, -1, dtype=np.int64)
    level[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        starts = graph.indptr[frontier]
        ends = graph.indptr[frontier + 1]
        counts = ends - starts
        if counts.sum() == 0:
            break
        # gather all neighbour indices of the frontier in one shot
        offsets = np.repeat(starts, counts) + _ragged_arange(counts)
        neigh = graph.indices[offsets]
        fresh = neigh[level[neigh] < 0]
        if fresh.size == 0:
            break
        fresh = np.unique(fresh)
        level[fresh] = depth
        frontier = fresh
    return level


def _ragged_arange(counts: np.ndarray) -> np.ndarray:
    """Concatenated ``[arange(c) for c in counts]`` without a Python loop."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ids = np.arange(total, dtype=np.int64)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    return ids - np.repeat(starts, counts)


def reachable_count(graph: CSRGraph, source: int) -> int:
    """Number of vertices reachable from ``source`` (including itself)."""
    return int((bfs_levels(graph, source) >= 0).sum())


def is_connected_from(graph: CSRGraph, source: int) -> bool:
    """True if every vertex is reachable from ``source``."""
    return reachable_count(graph, source) == graph.num_nodes


def estimate_diameter(
    graph: CSRGraph, *, samples: int = 8, seed: int = 0
) -> int:
    """Lower-bound diameter estimate by double-sweep BFS from samples.

    Exact diameters are O(nm); the paper only needs "high" vs "low", so
    a sampled double sweep (max eccentricity seen) suffices.
    """
    n = graph.num_nodes
    if n == 0:
        return 0
    rng = np.random.default_rng(seed)
    best = 0
    starts = rng.integers(0, n, size=min(samples, n))
    for s in starts:
        lv = bfs_levels(graph, int(s))
        if (lv >= 0).sum() <= 1:
            continue
        far = int(np.argmax(lv))
        best = max(best, int(lv.max()))
        lv2 = bfs_levels(graph, far)
        best = max(best, int(lv2.max()))
    return best


def weakly_connected_components(graph: CSRGraph) -> np.ndarray:
    """Component label per vertex, via label propagation on the symmetrised graph.

    Uses pointer-jumping-style min-label propagation: O(m log n)
    vectorised iterations, no recursion.
    """
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    src, dst, _ = graph.edge_arrays()
    s = np.concatenate([src, dst])
    d = np.concatenate([dst, src])
    label = np.arange(n, dtype=np.int64)
    while True:
        new_label = label.copy()
        np.minimum.at(new_label, d, label[s])
        np.minimum.at(new_label, s, label[d])
        # pointer jumping: compress chains
        new_label = new_label[new_label]
        if np.array_equal(new_label, label):
            break
        label = new_label
    # densify labels
    _, dense = np.unique(label, return_inverse=True)
    return dense.astype(np.int64)


def graph_stats(graph: CSRGraph, *, diameter_samples: int = 4, seed: int = 0) -> GraphStats:
    """Compute the Table 1 summary row for ``graph``."""
    deg = degree_statistics(graph)
    return GraphStats(
        name=graph.name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        max_degree=deg["max"],
        average_degree=graph.average_degree,
        degree_p99=deg["p99"],
        estimated_diameter=estimate_diameter(
            graph, samples=diameter_samples, seed=seed
        ),
        average_weight=graph.average_weight,
    )
