"""SSSP algorithm zoo.

* :mod:`~repro.sssp.dijkstra` — binary-heap Dijkstra, the correctness
  oracle for every other algorithm.
* :mod:`~repro.sssp.bellman_ford` — vectorised Bellman–Ford, a second
  oracle which also detects negative cycles.
* :mod:`~repro.sssp.delta_stepping` — classic Meyer–Sanders
  delta-stepping with a bucket array.
* :mod:`~repro.sssp.nearfar` — the Gunrock-style near+far baseline
  (Davidson et al.) with the paper's four stages and ``X^(1..4)``
  workload counters; this is what the self-tuning algorithm in
  :mod:`repro.core` extends.
* :mod:`~repro.sssp.batch_kernels` — batched multi-source near+far:
  B queries in one pass over shared CSR arrays, composite
  ``query_id * n + v`` keys, per-query windows and termination.
* :mod:`~repro.sssp.frontier` — shared vectorised stage primitives.
"""

from repro.sssp.batch_kernels import BatchedNearFarParams, batched_nearfar_sssp
from repro.sssp.bellman_ford import NegativeCycleError, bellman_ford
from repro.sssp.delta_stepping import delta_stepping
from repro.sssp.dijkstra import dijkstra
from repro.sssp.kla import kla_sssp
from repro.sssp.nearfar import NearFarParams, nearfar_sssp, suggest_delta
from repro.sssp.result import SSSPResult, assert_distances_close, extract_path

__all__ = [
    "BatchedNearFarParams",
    "NearFarParams",
    "NegativeCycleError",
    "SSSPResult",
    "assert_distances_close",
    "batched_nearfar_sssp",
    "bellman_ford",
    "delta_stepping",
    "dijkstra",
    "extract_path",
    "kla_sssp",
    "nearfar_sssp",
    "suggest_delta",
]
