"""SSSP result container and validation helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "SSSPResult",
    "assert_distances_close",
    "extract_path",
    "verify_optimality",
]


@dataclass
class SSSPResult:
    """Distances (and optionally predecessors) from one source.

    Attributes
    ----------
    dist:
        ``float64`` array; ``inf`` marks unreachable vertices.
    pred:
        Optional predecessor array (``-1`` for source/unreachable).
    source:
        The source vertex.
    iterations:
        Outer-loop iterations the producing algorithm ran (0 for
        non-iterative algorithms like heap Dijkstra).
    relaxations:
        Total edge relaxations attempted — the work metric used to
        quantify the redundant work of large-delta configurations.
    algorithm:
        Name of the producing algorithm, for reports.
    """

    dist: np.ndarray
    source: int
    pred: Optional[np.ndarray] = None
    iterations: int = 0
    relaxations: int = 0
    algorithm: str = ""
    extra: dict = field(default_factory=dict)

    @property
    def num_reached(self) -> int:
        return int(np.isfinite(self.dist).sum())

    def finite_distances(self) -> np.ndarray:
        return self.dist[np.isfinite(self.dist)]


def assert_distances_close(
    a: SSSPResult | np.ndarray,
    b: SSSPResult | np.ndarray,
    *,
    rtol: float = 1e-9,
    atol: float = 1e-6,
) -> None:
    """Raise ``AssertionError`` unless two distance arrays agree.

    ``inf`` entries must match positionally; finite entries must agree
    within tolerance.
    """
    da = a.dist if isinstance(a, SSSPResult) else np.asarray(a)
    db = b.dist if isinstance(b, SSSPResult) else np.asarray(b)
    if da.shape != db.shape:
        raise AssertionError(f"shape mismatch: {da.shape} vs {db.shape}")
    fin_a, fin_b = np.isfinite(da), np.isfinite(db)
    if not np.array_equal(fin_a, fin_b):
        bad = np.flatnonzero(fin_a != fin_b)
        raise AssertionError(
            f"reachability mismatch at {bad[:10].tolist()} "
            f"({bad.size} vertices total)"
        )
    if not np.allclose(da[fin_a], db[fin_b], rtol=rtol, atol=atol):
        diff = np.abs(da[fin_a] - db[fin_b])
        raise AssertionError(
            f"distance mismatch: max abs diff {diff.max():.3e} "
            f"on {int((diff > atol).sum())} vertices"
        )


def extract_path(result: SSSPResult, target: int) -> List[int]:
    """Reconstruct the shortest path ``source -> target`` from predecessors.

    Returns ``[]`` if the target is unreachable.  Requires ``pred``.
    """
    if result.pred is None:
        raise ValueError("result has no predecessor array; rerun with pred=True")
    if not np.isfinite(result.dist[target]):
        return []
    path = [int(target)]
    guard = result.dist.size + 1
    v = int(target)
    while v != result.source:
        v = int(result.pred[v])
        if v < 0:
            raise ValueError(f"broken predecessor chain at vertex {path[-1]}")
        path.append(v)
        guard -= 1
        if guard == 0:
            raise ValueError("predecessor cycle detected")
    path.reverse()
    return path


def verify_optimality(
    graph: CSRGraph, result: SSSPResult, *, atol: float = 1e-6
) -> None:
    """Check the Bellman optimality conditions for ``result`` directly.

    For every edge (u, v, w): dist[v] <= dist[u] + w (no violated edge),
    and dist[source] == 0.  This validates a distance array without
    trusting any reference implementation.  It proves the distances are
    *feasible upper bounds that cannot be improved*; combined with
    reachability agreement this pins down the unique SSSP solution for
    non-negative weights.
    """
    d = result.dist
    if d[result.source] != 0:
        raise AssertionError(f"dist[source]={d[result.source]} (expected 0)")
    src, dst, w = graph.edge_arrays()
    lhs = d[dst]
    rhs = d[src] + w
    finite = np.isfinite(rhs)
    if np.any(lhs[finite] > rhs[finite] + atol):
        bad = np.flatnonzero(finite)[
            np.flatnonzero(lhs[finite] > rhs[finite] + atol)
        ]
        raise AssertionError(
            f"{bad.size} relaxable edges remain, e.g. edge #{int(bad[0])}"
        )
    # every finite-distance vertex other than the source must be *supported*
    # by some incoming edge achieving its distance
    support = np.zeros(d.size, dtype=bool)
    achieved = np.zeros(rhs.size, dtype=bool)
    both_finite = np.isfinite(rhs) & np.isfinite(lhs)
    achieved[both_finite] = np.abs(lhs[both_finite] - rhs[both_finite]) <= atol
    support[dst[achieved]] = True
    need = np.isfinite(d)
    need[result.source] = False
    if np.any(need & ~support):
        bad = np.flatnonzero(need & ~support)
        raise AssertionError(
            f"{bad.size} vertices have unsupported distances, e.g. {int(bad[0])}"
        )
