"""Binary-heap Dijkstra — the correctness oracle.

Deliberately simple and obviously-correct (lazy deletion heap); every
parallel algorithm in the package is property-tested against it.  Not
vectorised: its job is trust, not speed.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sssp.result import SSSPResult

__all__ = ["dijkstra"]


def dijkstra(graph: CSRGraph, source: int, *, with_pred: bool = False) -> SSSPResult:
    """Exact single-source shortest paths for non-negative weights.

    Raises ``ValueError`` on negative edge weights (use
    :func:`repro.sssp.bellman_ford.bellman_ford` for those).
    """
    n = graph.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} nodes")
    if graph.has_negative_weights():
        raise ValueError("Dijkstra requires non-negative edge weights")

    dist = np.full(n, np.inf)
    pred = np.full(n, -1, dtype=np.int64) if with_pred else None
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    relaxations = 0

    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    while heap:
        du, u = heapq.heappop(heap)
        if du > dist[u]:
            continue  # stale entry
        for e in range(indptr[u], indptr[u + 1]):
            v = indices[e]
            relaxations += 1
            cand = du + weights[e]
            if cand < dist[v]:
                dist[v] = cand
                if pred is not None:
                    pred[v] = u
                heapq.heappush(heap, (cand, int(v)))

    return SSSPResult(
        dist=dist,
        source=source,
        pred=pred,
        iterations=0,
        relaxations=relaxations,
        algorithm="dijkstra",
    )
