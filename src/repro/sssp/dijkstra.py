"""Binary-heap Dijkstra — the correctness oracle.

Deliberately simple and obviously-correct (lazy deletion heap); every
parallel algorithm in the package is property-tested against it.  The
settled order stays strictly sequential, but the per-edge relaxation
is degree-adaptive: a vertex whose adjacency list reaches
``_SLICE_THRESHOLD`` out-edges is relaxed as one CSR slice (a NumPy
gather + vectorised candidate/improvement computation), while
low-degree vertices take a tight Python loop over pre-converted lists.

Why not slice everything?  On road-like graphs (average degree ~4)
the fixed NumPy dispatch cost per pop is ~4x *slower* than the scalar
loop; on power-law graphs the hubs are exactly where slicing wins.
The hybrid is faster on both families, and the oracle backs the chaos
drills and the batched acceptance tests where it dominated runtime.
Both branches perform the identical ``du + w`` float64 additions and
keep sequential duplicate-edge semantics, so distances are unchanged
bit for bit versus the classic per-edge loop.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sssp.result import SSSPResult

__all__ = ["dijkstra"]

# Degree at which a NumPy CSR-slice relaxation beats the scalar loop
# (measured on cal_like/wiki_like; the crossover is broad, not sharp).
_SLICE_THRESHOLD = 32


def dijkstra(graph: CSRGraph, source: int, *, with_pred: bool = False) -> SSSPResult:
    """Exact single-source shortest paths for non-negative weights.

    Raises ``ValueError`` on negative edge weights (use
    :func:`repro.sssp.bellman_ford.bellman_ford` for those).
    """
    n = graph.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} nodes")
    if graph.has_negative_weights():
        raise ValueError("Dijkstra requires non-negative edge weights")

    dist = np.full(n, np.inf)  # NumPy mirror, used for vector gathers
    pred = np.full(n, -1, dtype=np.int64) if with_pred else None
    dist[source] = 0.0
    if graph.indptr[source] == graph.indptr[source + 1]:
        # isolated source: skip the O(m) list conversions entirely
        return SSSPResult(
            dist=dist,
            source=source,
            pred=pred,
            iterations=0,
            relaxations=0,
            algorithm="dijkstra",
        )
    dl = dist.tolist()  # Python-scalar copy for the tight loop
    heap: list[tuple[float, int]] = [(0.0, source)]
    push = heapq.heappush
    pop = heapq.heappop
    relaxations = 0

    indices, weights = graph.indices, graph.weights
    indptr_l = graph.indptr.tolist()
    indices_l = indices.tolist()
    weights_l = weights.tolist()
    while heap:
        du, u = pop(heap)
        if du > dl[u]:
            continue  # stale entry
        lo = indptr_l[u]
        hi = indptr_l[u + 1]
        deg = hi - lo
        relaxations += deg
        if deg < _SLICE_THRESHOLD:
            for e in range(lo, hi):
                v = indices_l[e]
                cand = du + weights_l[e]
                if cand < dl[v]:
                    dl[v] = cand
                    dist[v] = cand
                    if pred is not None:
                        pred[v] = u
                    push(heap, (cand, v))
        else:
            vs = indices[lo:hi]
            cand = du + weights[lo:hi]
            improved = cand < dist[vs]
            if improved.any():
                # re-check against dl so parallel edges to the same
                # target resolve exactly as the sequential loop does
                for c, v in zip(cand[improved].tolist(), vs[improved].tolist()):
                    if c < dl[v]:
                        dl[v] = c
                        dist[v] = c
                        if pred is not None:
                            pred[v] = u
                        push(heap, (c, v))

    return SSSPResult(
        dist=dist,
        source=source,
        pred=pred,
        iterations=0,
        relaxations=relaxations,
        algorithm="dijkstra",
    )
