"""The kernel-backend contract for the near+far hot path.

A :class:`KernelBackend` bundles the eight frontier-stage primitives —
four single-source, four batched — that :func:`repro.sssp.nearfar.
nearfar_sssp` and :func:`repro.sssp.batch_kernels.batched_nearfar_sssp`
call in their inner loops.  The reference semantics are the NumPy
functions in :mod:`repro.sssp.frontier`; every backend must reproduce
them **bit-for-bit**:

* ``advance`` relaxes with atomicMin semantics — candidates are
  computed from the *pre-stage* distance snapshot, commits happen in
  edge order, and the improved set compares each candidate against the
  endpoint's pre-stage distance;
* ``filter``/``batched_filter`` return the sorted unique survivors;
* ``bisect``/``drain`` partition by the current delta window.

Bit-identity is what makes backends interchangeable mid-deployment:
the acceptance tests pin distances byte-for-byte across backends on
every graph family, so a serving stack can flip
``REPRO_KERNEL_BACKEND`` without invalidating caches or baselines.
See ``docs/kernels.md`` for the full walkthrough and
:func:`repro.sssp.backends.register_backend` for how to plug in a new
implementation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sssp.frontier import AdvanceOutput, BatchedAdvanceOutput

__all__ = ["KernelBackend"]


class KernelBackend:
    """Abstract kernel set behind the near+far registry.

    Subclasses override any subset of the eight stage methods; the
    semantics of each are fixed by the like-named function in
    :mod:`repro.sssp.frontier` (the NumPy reference), and overrides
    must stay bit-identical to it.  ``name`` is the registry key and
    what gets stamped into trace meta, ``result.extra`` and
    ``service.query.*`` metric labels.
    """

    #: Registry key; also the value stamped into traces and metrics.
    name: str = "abstract"

    # ------------------------------------------------------------------
    # single-source stages
    # ------------------------------------------------------------------
    def advance(
        self, graph: CSRGraph, frontier: np.ndarray, dist: np.ndarray
    ) -> AdvanceOutput:
        """Relax every out-edge of ``frontier`` in place on ``dist``."""
        raise NotImplementedError

    def filter_frontier(self, improved: np.ndarray) -> np.ndarray:
        """Deduplicate advance output into the next frontier."""
        raise NotImplementedError

    def bisect(
        self, vertices: np.ndarray, dist: np.ndarray, split: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Split ``vertices`` into (near, far) by ``dist < split``."""
        raise NotImplementedError

    def drain_far_queue(
        self,
        far: np.ndarray,
        dist: np.ndarray,
        lower: float,
        split: float,
        delta: float,
    ) -> Tuple[np.ndarray, np.ndarray, float, float, int]:
        """Pull the next non-empty distance band from the far queue."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # batched (multi-source) stages
    # ------------------------------------------------------------------
    def batched_advance(
        self,
        graph: CSRGraph,
        frontier: np.ndarray,
        dist: np.ndarray,
        num_queries: int,
    ) -> BatchedAdvanceOutput:
        """Relax the out-edges of a flattened multi-query frontier."""
        raise NotImplementedError

    def batched_filter(self, improved: np.ndarray) -> np.ndarray:
        """Deduplicate improved composite keys across every query."""
        raise NotImplementedError

    def batched_bisect(
        self,
        keys: np.ndarray,
        dist: np.ndarray,
        splits: np.ndarray,
        n: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Split composite ``keys`` into (near, far) per-query."""
        raise NotImplementedError

    def batched_drain_far(
        self,
        far: np.ndarray,
        dist: np.ndarray,
        n: int,
        lower: np.ndarray,
        split: np.ndarray,
        delta: np.ndarray,
        need: np.ndarray,
        far_q: np.ndarray | None = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-query bisect-far-queue over a flattened far set."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
