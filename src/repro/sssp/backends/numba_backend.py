"""JIT-compiled kernel backend (numba), bit-identical to NumPy.

The two hottest stages — advance and filter — are rewritten as
``@njit`` kernels: the edge gather runs under ``parallel=True`` with a
``prange`` over frontier vertices (each writes a disjoint slice of the
edge-sized candidate arrays, so no synchronisation is needed), while
the distance *commit* loop stays serial in edge order.  That split is
what preserves bit-identity with the NumPy reference: a serial
min-commit visits edges in exactly the order ``np.minimum.at`` does,
so ties and float rounding resolve identically, and the improved set
compares each candidate against the same pre-stage snapshot the
reference gathers.  Bisect and drain are already single ufunc sweeps
with nothing left to compile, so they are inherited from
:class:`~repro.sssp.backends.numpy_backend.NumpyBackend`.

numba is an optional dependency: :func:`numba_available` probes for
it, constructing :class:`NumbaBackend` without it raises
:class:`BackendUnavailableError`, and the registry's
:func:`~repro.sssp.backends.resolve_backend` turns that into a
one-time warning plus a fallback to the numpy backend.  Compilation is
lazy — the first advance call pays the JIT cost (seconds), subsequent
calls run the cached machine code; benchmarks warm up with one
throwaway run.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sssp.backends.numpy_backend import NumpyBackend
from repro.sssp.frontier import AdvanceOutput, BatchedAdvanceOutput

__all__ = ["BackendUnavailableError", "NumbaBackend", "numba_available"]

_EMPTY = np.zeros(0, dtype=np.int64)

# compiled kernel table, built once per process on first use
_COMPILED: dict | None = None


class BackendUnavailableError(ImportError):
    """An optional backend's dependency could not be imported."""


def _load_numba():
    """Import and return the ``numba`` module (monkeypatch point).

    Tests patch this to simulate a missing wheel; keeping the import
    behind one seam means the fallback path is testable even on
    machines where numba is installed.
    """
    import numba

    return numba


def numba_available() -> bool:
    """True when the numba JIT can actually be imported here."""
    try:
        _load_numba()
    except ImportError:
        return False
    return True


def _build_kernels() -> dict:
    """Compile the JIT kernel set (lazily, once per process)."""
    numba = _load_numba()
    njit = numba.njit
    prange = numba.prange

    @njit(cache=True)
    def dedup_sorted(keys):
        # sort + adjacent-diff keep: np.unique's output without its
        # Python-level dispatch; identical values, identical order
        out = np.sort(keys)
        m = 1
        for i in range(1, out.size):
            if out[i] != out[i - 1]:
                out[m] = out[i]
                m += 1
        return out[:m].copy()

    @njit(parallel=True, cache=True)
    def advance(indptr, indices, weights, frontier, dist):
        f = frontier.size
        counts = np.empty(f, np.int64)
        for i in range(f):
            u = frontier[i]
            counts[i] = indptr[u + 1] - indptr[u]
        pos = np.empty(f + 1, np.int64)
        pos[0] = 0
        for i in range(f):
            pos[i + 1] = pos[i] + counts[i]
        x2 = pos[f]
        v = np.empty(x2, np.int64)
        cand = np.empty(x2, np.float64)
        # parallel gather: frontier vertices own disjoint output slices
        for i in prange(f):
            u = frontier[i]
            du = dist[u]
            base = pos[i]
            start = indptr[u]
            for j in range(counts[i]):
                e = start + j
                v[base + j] = indices[e]
                cand[base + j] = du + weights[e]
        old = np.empty(x2, np.float64)
        for e in prange(x2):
            old[e] = dist[v[e]]
        # serial commit in edge order == np.minimum.at semantics
        for e in range(x2):
            if cand[e] < dist[v[e]]:
                dist[v[e]] = cand[e]
        m = 0
        for e in range(x2):
            if cand[e] < old[e]:
                m += 1
        improved = np.empty(m, np.int64)
        k = 0
        for e in range(x2):
            if cand[e] < old[e]:
                improved[k] = v[e]
                k += 1
        return improved, x2

    @njit(parallel=True, cache=True)
    def batched_advance(indptr, indices, weights, frontier, dist, n, B):
        f = frontier.size
        counts = np.empty(f, np.int64)
        relax = np.zeros(B, np.int64)
        for i in range(f):
            u = frontier[i] % n
            c = indptr[u + 1] - indptr[u]
            counts[i] = c
            relax[frontier[i] // n] += c
        pos = np.empty(f + 1, np.int64)
        pos[0] = 0
        for i in range(f):
            pos[i + 1] = pos[i] + counts[i]
        x2 = pos[f]
        vkeys = np.empty(x2, np.int64)
        cand = np.empty(x2, np.float64)
        for i in prange(f):
            key = frontier[i]
            u = key % n
            qn = key - u  # q * n
            du = dist[key]
            base = pos[i]
            start = indptr[u]
            for j in range(counts[i]):
                e = start + j
                vkeys[base + j] = qn + indices[e]
                cand[base + j] = du + weights[e]
        old = np.empty(x2, np.float64)
        for e in prange(x2):
            old[e] = dist[vkeys[e]]
        for e in range(x2):
            if cand[e] < dist[vkeys[e]]:
                dist[vkeys[e]] = cand[e]
        m = 0
        for e in range(x2):
            if cand[e] < old[e]:
                m += 1
        improved = np.empty(m, np.int64)
        k = 0
        for e in range(x2):
            if cand[e] < old[e]:
                improved[k] = vkeys[e]
                k += 1
        return improved, x2, relax

    return {
        "dedup_sorted": dedup_sorted,
        "advance": advance,
        "batched_advance": batched_advance,
    }


def _kernels() -> dict:
    """The process-wide compiled kernel table, building it on demand."""
    global _COMPILED
    if _COMPILED is None:
        _COMPILED = _build_kernels()
    return _COMPILED


class NumbaBackend(NumpyBackend):
    """JIT advance/filter kernels; NumPy bisect/drain inherited.

    Construction verifies numba imports (raising
    :class:`BackendUnavailableError` otherwise) so backend resolution
    fails fast; actual compilation is deferred to the first kernel
    call.
    """

    name = "numba"

    def __init__(self) -> None:
        try:
            _load_numba()
        except ImportError as exc:
            raise BackendUnavailableError(
                f"numba backend unavailable: {exc}"
            ) from exc

    def advance(
        self, graph: CSRGraph, frontier: np.ndarray, dist: np.ndarray
    ) -> AdvanceOutput:
        """JIT relax of frontier out-edges, atomicMin commit order."""
        if frontier.size == 0:
            return AdvanceOutput(improved=_EMPTY, x2=0, relaxations=0)
        improved, x2 = _kernels()["advance"](
            graph.indptr, graph.indices, graph.weights, frontier, dist
        )
        return AdvanceOutput(improved=improved, x2=int(x2), relaxations=int(x2))

    def filter_frontier(self, improved: np.ndarray) -> np.ndarray:
        """JIT sort + adjacent-diff dedup (== ``np.unique`` output)."""
        if improved.size == 0:
            return _EMPTY
        return _kernels()["dedup_sorted"](improved)

    def batched_advance(
        self,
        graph: CSRGraph,
        frontier: np.ndarray,
        dist: np.ndarray,
        num_queries: int,
    ) -> BatchedAdvanceOutput:
        """JIT multi-query relax over composite keys, one sweep."""
        B = int(num_queries)
        if frontier.size == 0:
            return BatchedAdvanceOutput(
                improved=_EMPTY,
                x2=0,
                relaxations_per_query=np.zeros(B, dtype=np.int64),
            )
        improved, x2, relax = _kernels()["batched_advance"](
            graph.indptr,
            graph.indices,
            graph.weights,
            frontier,
            dist,
            graph.num_nodes,
            B,
        )
        return BatchedAdvanceOutput(
            improved=improved, x2=int(x2), relaxations_per_query=relax
        )

    def batched_filter(self, improved: np.ndarray) -> np.ndarray:
        """JIT dedup of composite keys (== :func:`batched_filter`)."""
        if improved.size == 0:
            return _EMPTY
        return _kernels()["dedup_sorted"](improved)
