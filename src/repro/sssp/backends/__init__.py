"""Kernel-backend registry for the near+far hot path.

The near+far inner loops (advance / filter / bisect / drain, single-
and multi-source) execute through a :class:`~repro.sssp.backends.base.
KernelBackend` picked at run time.  Two backends ship:

* ``numpy`` — the reference ufunc implementation, always available,
  the default;
* ``numba`` — JIT-compiled advance/filter kernels, bit-identical to
  numpy, falling back to numpy with a one-time warning when the numba
  wheel is not importable.

Selection precedence, resolved by :func:`resolve_backend`:

1. an explicit argument (``nearfar_sssp(..., backend="numba")``,
   ``--backend`` on the CLI, ``QueryEngine(backend=...)``);
2. the ``REPRO_KERNEL_BACKEND`` environment variable;
3. the ``numpy`` default.

Third-party backends plug in via :func:`register_backend`; the
contract they must honour (bit-identical distances) is documented on
:class:`~repro.sssp.backends.base.KernelBackend` and in
``docs/kernels.md``.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Dict, Tuple

from repro.sssp.backends.base import KernelBackend
from repro.sssp.backends.numba_backend import (
    BackendUnavailableError,
    NumbaBackend,
    numba_available,
)
from repro.sssp.backends.numpy_backend import NumpyBackend

__all__ = [
    "BackendUnavailableError",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "KernelBackend",
    "NumbaBackend",
    "NumpyBackend",
    "backend_available",
    "backend_names",
    "get_backend",
    "numba_available",
    "register_backend",
    "resolve_backend",
]

#: Environment variable consulted when no explicit backend is passed.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: The backend used when neither argument nor environment names one.
DEFAULT_BACKEND = "numpy"

# name -> zero-arg factory; instantiation may raise
# BackendUnavailableError when an optional dependency is missing
_REGISTRY: Dict[str, Callable[[], KernelBackend]] = {}

# resolved singletons (a fallen-back name caches its substitute)
_INSTANCES: Dict[str, KernelBackend] = {}

# backend names we already warned about falling back from
_WARNED: set = set()


def register_backend(name: str, factory: Callable[[], KernelBackend]) -> None:
    """Register (or replace) a backend factory under ``name``.

    ``factory`` is called lazily, at most once per process, the first
    time the name is resolved; it may raise
    :class:`BackendUnavailableError` to signal a missing optional
    dependency, which :func:`resolve_backend` converts into a numpy
    fallback.
    """
    if not name or not isinstance(name, str):
        raise ValueError("backend name must be a non-empty string")
    _REGISTRY[name] = factory
    _INSTANCES.pop(name, None)


def backend_names() -> Tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def backend_available(name: str) -> bool:
    """True when ``name`` is registered and its factory constructs.

    Distinguishes "registered but missing its optional dependency"
    (e.g. numba without the wheel — False) from "resolvable" (True);
    benchmarks use this to decide whether a compiled-speedup assertion
    is meaningful.
    """
    if name not in _REGISTRY:
        return False
    try:
        _instance(name)
    except BackendUnavailableError:
        return False
    return True


def _instance(name: str) -> KernelBackend:
    """Construct-or-fetch the singleton for a registered name."""
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = _REGISTRY[name]()
        _INSTANCES[name] = instance
    return instance


def get_backend(name: str) -> KernelBackend:
    """The backend registered under ``name``, without fallback.

    Raises ``ValueError`` naming the registered backends for an
    unknown name, and :class:`BackendUnavailableError` when the
    backend exists but its optional dependency does not — callers who
    want the graceful numpy fallback use :func:`resolve_backend`.
    """
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown kernel backend {name!r} "
            f"(registered: {', '.join(backend_names())})"
        )
    return _instance(name)


def resolve_backend(
    backend: str | KernelBackend | None = None,
) -> KernelBackend:
    """Resolve a backend request into a usable instance.

    Precedence: explicit ``backend`` argument (a name or an already-
    constructed :class:`KernelBackend`, passed through as-is) >
    ``REPRO_KERNEL_BACKEND`` environment variable > ``numpy``.  An
    unknown name raises ``ValueError`` listing the registered
    backends.  A known backend whose optional dependency is missing
    falls back to numpy, warning once per process per backend name —
    the returned instance's ``name`` is honestly ``"numpy"``, so
    traces and metrics record what actually ran.
    """
    if isinstance(backend, KernelBackend):
        return backend
    name = backend or os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown kernel backend {name!r} "
            f"(registered: {', '.join(backend_names())})"
        )
    try:
        return _instance(name)
    except BackendUnavailableError as exc:
        if name not in _WARNED:
            _WARNED.add(name)
            warnings.warn(
                f"kernel backend {name!r} is unavailable ({exc}); "
                f"falling back to {DEFAULT_BACKEND!r}",
                RuntimeWarning,
                stacklevel=2,
            )
        return _instance(DEFAULT_BACKEND)


def _reset_backend_state() -> None:
    """Drop cached instances and warning dedup (test isolation hook)."""
    _INSTANCES.clear()
    _WARNED.clear()


register_backend("numpy", NumpyBackend)
register_backend("numba", NumbaBackend)
