"""The default NumPy kernel backend.

A thin adapter over :mod:`repro.sssp.frontier` — the vectorised ufunc
implementations *are* the reference semantics every other backend must
match bit-for-bit, so this backend delegates rather than duplicating
them.  It has no dependencies beyond NumPy, compiles nothing, and is
always registered; it is the fallback target when an accelerated
backend's import fails.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sssp import frontier as _f
from repro.sssp.backends.base import KernelBackend
from repro.sssp.frontier import AdvanceOutput, BatchedAdvanceOutput

__all__ = ["NumpyBackend"]


class NumpyBackend(KernelBackend):
    """Pure-NumPy kernels: ufunc sweeps over the CSR arrays.

    Every method forwards to the like-named reference function in
    :mod:`repro.sssp.frontier`, so the backend is bit-identical to the
    pre-registry code path by construction.
    """

    name = "numpy"

    def advance(
        self, graph: CSRGraph, frontier: np.ndarray, dist: np.ndarray
    ) -> AdvanceOutput:
        """Relax frontier out-edges via ``np.minimum.at`` (atomicMin)."""
        return _f.advance(graph, frontier, dist)

    def filter_frontier(self, improved: np.ndarray) -> np.ndarray:
        """Deduplicate with ``np.unique``."""
        return _f.filter_frontier(improved)

    def bisect(
        self, vertices: np.ndarray, dist: np.ndarray, split: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Mask-partition vertices against the split value."""
        return _f.bisect(vertices, dist, split)

    def drain_far_queue(
        self,
        far: np.ndarray,
        dist: np.ndarray,
        lower: float,
        split: float,
        delta: float,
    ) -> Tuple[np.ndarray, np.ndarray, float, float, int]:
        """Advance the delta window over the far queue in one pass."""
        return _f.drain_far_queue(far, dist, lower, split, delta)

    def batched_advance(
        self,
        graph: CSRGraph,
        frontier: np.ndarray,
        dist: np.ndarray,
        num_queries: int,
    ) -> BatchedAdvanceOutput:
        """One fused gather + ``np.minimum.at`` sweep for all queries."""
        return _f.batched_advance(graph, frontier, dist, num_queries)

    def batched_filter(self, improved: np.ndarray) -> np.ndarray:
        """Sort + adjacent-diff dedup of composite keys."""
        return _f.batched_filter(improved)

    def batched_bisect(
        self,
        keys: np.ndarray,
        dist: np.ndarray,
        splits: np.ndarray,
        n: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Mask-partition composite keys against per-query splits."""
        return _f.batched_bisect(keys, dist, splits, n)

    def batched_drain_far(
        self,
        far: np.ndarray,
        dist: np.ndarray,
        n: int,
        lower: np.ndarray,
        split: np.ndarray,
        delta: np.ndarray,
        need: np.ndarray,
        far_q: np.ndarray | None = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised per-query window advance over the far set."""
        return _f.batched_drain_far(
            far, dist, n, lower, split, delta, need, far_q=far_q
        )
