"""Vectorised Bellman–Ford.

A second, structurally different oracle: round-based full-edge
relaxation with ``np.minimum.at``.  Also the only algorithm here that
handles negative weights, and it detects negative cycles reachable
from the source.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sssp.result import SSSPResult

__all__ = ["bellman_ford", "NegativeCycleError"]


class NegativeCycleError(ValueError):
    """Raised when a negative cycle is reachable from the source."""


def bellman_ford(graph: CSRGraph, source: int) -> SSSPResult:
    """Shortest paths by |V|-1 rounds of vectorised edge relaxation.

    Stops early once a round changes nothing.  One extra round detects
    negative cycles.
    """
    n = graph.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} nodes")

    src, dst, w = graph.edge_arrays()
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    relaxations = 0
    rounds = 0

    for _ in range(max(1, n - 1)):
        rounds += 1
        cand = dist[src] + w
        relaxations += int(src.size)
        new_dist = dist.copy()
        np.minimum.at(new_dist, dst, cand)
        converged = np.array_equal(new_dist, dist)  # inf == inf holds
        dist = new_dist
        if converged:
            break

    # negative-cycle check: one more round must be a fixed point
    if src.size:
        cand = dist[src] + w
        probe = dist.copy()
        np.minimum.at(probe, dst, cand)
        if not np.array_equal(probe, dist):
            raise NegativeCycleError("negative cycle reachable from source")

    return SSSPResult(
        dist=dist,
        source=source,
        iterations=rounds,
        relaxations=relaxations,
        algorithm="bellman-ford",
    )
