"""Batched multi-source near+far SSSP: B queries, one kernel pass.

:mod:`repro.sssp.nearfar` answers one ``(graph, source)`` pair per
pass; a serving stack wants many.  This module runs **B sources
simultaneously over the shared CSR arrays** — the request-batching
lever of an inference server applied to stepping SSSP.  The per-sweep
cost of a NumPy frontier stage is a fixed ufunc/dispatch overhead plus
work proportional to the frontier; fusing B queries into one sweep
pays the overhead once instead of B times, exactly the amortisation
argument of bucket fusion (Dong et al. 2021) and wider per-step
frontiers (Blelloch et al. 2016).

Layout
------
* distances live in one flat ``dist[B * n]`` array (the ``dist[B, n]``
  matrix, flattened);
* the frontier and the far queue hold **composite keys**
  ``query_id * n + v``, so every stage is a single ufunc sweep over
  all queries at once (:func:`~repro.sssp.frontier.batched_advance`
  relaxes with one ``np.minimum.at``);
* each query keeps its own ``[lower, split)`` delta window, advanced
  independently by :func:`~repro.sssp.frontier.batched_drain_far`;
* a finished query simply stops contributing keys — it drops out of
  the flattened frontier without blocking the rest of the batch.

With ``B = 1`` the sweep sequence is operation-for-operation identical
to :func:`~repro.sssp.nearfar.nearfar_sssp`, so batched distances are
byte-exact against the single-source path (pinned by
``tests/sssp/test_batch_kernels.py``).  Duplicate sources are allowed:
each query owns a disjoint key range, so they run independently and
return identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.obs import context as obs
from repro.obs.events import EVENT_SCHEMA_VERSION
from repro.sssp.backends import KernelBackend, resolve_backend
from repro.sssp.nearfar import suggest_delta
from repro.sssp.result import SSSPResult

__all__ = ["BatchedNearFarParams", "batched_nearfar_sssp"]

_EMPTY = np.zeros(0, dtype=np.int64)


@dataclass(frozen=True)
class BatchedNearFarParams:
    """Tuning parameters of the batched near+far engine.

    ``delta`` may be a scalar (shared by every query) or a length-B
    sequence (one window width per query).  ``max_sweeps`` bounds the
    number of global sweeps (0 = unlimited) as a safety valve for
    tests.
    """

    delta: float | Sequence[float] | None = None
    max_sweeps: int = 0

    def __post_init__(self) -> None:
        if self.max_sweeps < 0:
            raise ValueError("max_sweeps must be >= 0")

    def delta_array(self, graph: CSRGraph, num_queries: int) -> np.ndarray:
        """Resolve ``delta`` into a validated float64[B] array."""
        if self.delta is None:
            value = np.full(num_queries, suggest_delta(graph))
        else:
            value = np.asarray(self.delta, dtype=np.float64)
            if value.ndim == 0:
                value = np.full(num_queries, float(value))
            elif value.shape != (num_queries,):
                raise ValueError(
                    f"delta must be a scalar or length-{num_queries} "
                    f"sequence, got shape {value.shape}"
                )
        if np.any(~np.isfinite(value)) or np.any(value <= 0):
            raise ValueError("every delta must be finite and positive")
        return value


def batched_nearfar_sssp(
    graph: CSRGraph,
    sources: Sequence[int] | np.ndarray,
    params: BatchedNearFarParams | None = None,
    *,
    delta: float | Sequence[float] | None = None,
    backend: str | KernelBackend | None = None,
) -> List[SSSPResult]:
    """Run fixed-delta near+far from every source in one batched pass.

    Parameters
    ----------
    graph:
        Problem instance (non-negative weights required).
    sources:
        The B source vertices; duplicates are allowed and answered
        independently.
    params / delta:
        Either a full :class:`BatchedNearFarParams` or a bare ``delta``
        (mutually exclusive); defaults to
        :func:`~repro.sssp.nearfar.suggest_delta`.
    backend:
        Kernel backend name or instance for the batched stages (see
        :mod:`repro.sssp.backends`); defaults to the
        ``REPRO_KERNEL_BACKEND`` environment variable, then ``numpy``.

    Returns
    -------
    list of :class:`~repro.sssp.result.SSSPResult`, in source order,
    each with its own per-query iteration and relaxation counts (a
    query's iteration count is the number of sweeps in which it still
    had frontier work).  ``extra`` records ``delta``, ``batch_size``,
    ``batched=True`` and the resolved ``backend`` name.
    """
    if params is not None and delta is not None:
        raise ValueError("pass either params or delta, not both")
    if params is None:
        params = BatchedNearFarParams(delta=delta)
    kernels = resolve_backend(backend)

    sources = np.asarray(sources, dtype=np.int64)
    if sources.ndim != 1 or sources.size == 0:
        raise ValueError("sources must be a non-empty 1-D sequence")
    n = graph.num_nodes
    if np.any((sources < 0) | (sources >= n)):
        bad = sources[(sources < 0) | (sources >= n)]
        raise ValueError(f"source {int(bad[0])} out of range for {n} nodes")
    if graph.has_negative_weights():
        raise ValueError("near+far requires non-negative edge weights")

    B = int(sources.size)
    deltas = params.delta_array(graph, B)

    dist = np.full(B * n, np.inf)
    origin = np.arange(B, dtype=np.int64) * n + sources
    dist[origin] = 0.0
    frontier = origin  # strictly increasing in query id, one key each
    far = _EMPTY
    lower = np.zeros(B)
    split = deltas.copy()

    iterations = np.zeros(B, dtype=np.int64)
    relaxations = np.zeros(B, dtype=np.int64)
    sweeps = 0

    ctx = obs.current()
    reg, events = ctx.registry, ctx.events
    m_sweeps = reg.counter("sssp.batch.sweeps")
    m_active = reg.histogram("sssp.batch.active")
    m_frontier = reg.histogram("sssp.batch.frontier")
    m_relaxations = reg.counter("sssp.batch.relaxations")
    if events.enabled:
        events.emit(
            {
                "type": "batch_run_start",
                "v": EVENT_SCHEMA_VERSION,
                "algorithm": "nearfar-batch",
                "graph": graph.name,
                "batch_size": B,
                "sources": sources.tolist(),
                "backend": kernels.name,
            }
        )

    while frontier.size:
        sweeps += 1
        # queries with frontier work this sweep age by one iteration
        active = np.zeros(B, dtype=bool)
        active[frontier // n] = True
        iterations[active] += 1

        # stage 1+2: advance all queries' edges in one sweep, then filter
        adv = kernels.batched_advance(graph, frontier, dist, B)
        relaxations += adv.relaxations_per_query
        improved = kernels.batched_filter(adv.improved)

        # stage 3: bisect against each query's own window
        near, far_add = kernels.batched_bisect(improved, dist, split, n)
        if far_add.size:
            far = np.concatenate([far, far_add]) if far.size else far_add
        frontier = near

        # stage 4: per-query bisect-far-queue for starved queries only
        if far.size:
            has_near = np.zeros(B, dtype=bool)
            if frontier.size:
                has_near[frontier // n] = True
            fq = far // n
            has_far = np.zeros(B, dtype=bool)
            has_far[fq] = True
            need = ~has_near & has_far
            if need.any():
                pulled, far, lower, split, _ = kernels.batched_drain_far(
                    far, dist, n, lower, split, deltas, need, far_q=fq
                )
                if pulled.size:
                    frontier = (
                        np.concatenate([frontier, pulled])
                        if frontier.size
                        else pulled
                    )

        m_sweeps.inc()
        m_active.observe(int(active.sum()))
        m_frontier.observe(int(frontier.size))
        m_relaxations.inc(int(adv.relaxations_per_query.sum()))
        if params.max_sweeps and sweeps >= params.max_sweeps:
            break

    results = [
        SSSPResult(
            dist=dist[q * n : (q + 1) * n].copy(),
            source=int(sources[q]),
            iterations=int(iterations[q]),
            relaxations=int(relaxations[q]),
            algorithm="nearfar",
            extra={
                "delta": float(deltas[q]),
                "batch_size": B,
                "batched": True,
                "backend": kernels.name,
            },
        )
        for q in range(B)
    ]
    if events.enabled:
        events.emit(
            {
                "type": "batch_run_end",
                "batch_size": B,
                "sweeps": sweeps,
                "relaxations": int(relaxations.sum()),
                "reached": [r.num_reached for r in results],
            }
        )
    return results
