"""Baseline near+far SSSP (Davidson et al., as implemented in Gunrock).

The four-stage iteration structure of the paper's Section 3.1 with a
*fixed* delta, emitting the ``X^(1..4)`` workload counters into a
:class:`~repro.instrument.trace.RunTrace`.  This is the algorithm the
self-tuning controller of :mod:`repro.core` takes over.

The frontier is partitioned by a moving split value ``split = (i+1)*delta``
(``i`` = current phase): vertices whose tentative distance falls below
the split are *near* (processed next iteration), the rest are postponed
on the far queue.  When the near queue empties, bisect-far-queue
advances the window and pulls the next band from the far queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.instrument.trace import IterationRecord, RunTrace
from repro.obs import context as obs
from repro.obs.events import EVENT_SCHEMA_VERSION
from repro.sssp.backends import KernelBackend, resolve_backend
from repro.sssp.result import SSSPResult

__all__ = ["NearFarParams", "nearfar_sssp", "suggest_delta"]


@dataclass(frozen=True)
class NearFarParams:
    """Tuning parameters of the baseline near+far algorithm.

    ``delta`` is the static knob the paper replaces with a dynamic,
    controller-driven one.  ``max_iterations`` is a safety valve for
    tests (0 = unlimited).
    """

    delta: float
    max_iterations: int = 0

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ValueError("delta must be positive")
        if self.max_iterations < 0:
            raise ValueError("max_iterations must be >= 0")


def suggest_delta(graph: CSRGraph) -> float:
    """The standard delta heuristic: average edge weight.

    Meyer & Sanders suggest ``Theta(1/max_degree)`` scaling for random
    weights; in practice Gunrock users hand-tune.  The average weight is
    the neutral default this package uses when none is given — and the
    difficulty of this manual choice is precisely the paper's
    motivation for the self-tuning controller.
    """
    return max(graph.average_weight, 1e-12)


def nearfar_sssp(
    graph: CSRGraph,
    source: int,
    params: NearFarParams | None = None,
    *,
    delta: float | None = None,
    collect_trace: bool = True,
    backend: str | KernelBackend | None = None,
) -> Tuple[SSSPResult, RunTrace]:
    """Run the fixed-delta near+far algorithm.

    Parameters
    ----------
    graph, source:
        Problem instance (non-negative weights required).
    params / delta:
        Either a full :class:`NearFarParams` or a bare ``delta``
        (mutually exclusive); defaults to :func:`suggest_delta`.
    collect_trace:
        When false, the returned trace is empty (slightly faster runs
        for pure-correctness tests).
    backend:
        Kernel backend name or instance for the advance/filter/bisect/
        drain stages (see :mod:`repro.sssp.backends`); defaults to the
        ``REPRO_KERNEL_BACKEND`` environment variable, then ``numpy``.
        The resolved name is stamped into the trace meta and
        ``result.extra``.

    Returns
    -------
    (result, trace):
        Exact shortest-path distances plus the per-iteration workload
        trace used for parallelism profiles and platform simulation.
    """
    if params is not None and delta is not None:
        raise ValueError("pass either params or delta, not both")
    if params is None:
        params = NearFarParams(delta=delta if delta is not None else suggest_delta(graph))
    kernels = resolve_backend(backend)

    n = graph.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} nodes")
    if graph.has_negative_weights():
        raise ValueError("near+far requires non-negative edge weights")

    dist = np.full(n, np.inf)
    dist[source] = 0.0
    frontier = np.array([source], dtype=np.int64)
    far = np.zeros(0, dtype=np.int64)
    lower, split = 0.0, params.delta

    trace = RunTrace(
        algorithm="nearfar",
        graph_name=graph.name,
        source=source,
        meta={
            "delta": params.delta,
            "graph_fingerprint": graph.fingerprint(),
            "backend": kernels.name,
        },
    )
    iterations = 0
    relaxations = 0

    # observability handles, bound once per run (no-op by default)
    ctx = obs.current()
    reg, events = ctx.registry, ctx.events
    m_iterations = reg.counter("sssp.iterations")
    m_relaxations = reg.counter("sssp.relaxations")
    m_frontier = reg.histogram("sssp.frontier")
    m_parallelism = reg.histogram("sssp.parallelism")
    m_to_far = reg.counter("sssp.queue.moved_to_far")
    m_from_far = reg.counter("sssp.queue.moved_from_far")
    m_far_scanned = reg.counter("sssp.queue.far_scanned")
    m_drains = reg.counter("sssp.queue.drains")
    if events.enabled:
        events.emit(
            {
                "type": "run_start",
                "v": EVENT_SCHEMA_VERSION,
                "algorithm": "nearfar",
                "graph": graph.name,
                "source": source,
                "delta": params.delta,
                "backend": kernels.name,
            }
        )

    while frontier.size:
        iterations += 1
        x1 = int(frontier.size)

        # stage 1: advance
        adv = kernels.advance(graph, frontier, dist)
        relaxations += adv.relaxations

        # stage 2: filter
        unique_improved = kernels.filter_frontier(adv.improved)
        x3 = int(unique_improved.size)

        # stage 3: bisect-frontier
        near, far_add = kernels.bisect(unique_improved, dist, split)
        if far_add.size:
            far = np.concatenate([far, far_add])
            m_to_far.inc(int(far_add.size))
        x4 = int(near.size)

        # stage 4: bisect-far-queue
        drains = 0
        frontier = near
        if frontier.size == 0 and far.size:
            m_far_scanned.inc(int(far.size))
            frontier, far, lower, split, drains = kernels.drain_far_queue(
                far, dist, lower, split, params.delta
            )
            m_from_far.inc(int(frontier.size))
            m_drains.inc(drains)

        m_iterations.inc()
        m_relaxations.inc(adv.relaxations)
        m_frontier.observe(x1)
        m_parallelism.observe(adv.x2)
        if events.enabled:
            events.emit(
                {
                    "type": "iteration",
                    "k": iterations - 1,
                    "x1": x1,
                    "x2": adv.x2,
                    "x3": x3,
                    "x4": x4,
                    "delta": params.delta,
                    "far_size": int(far.size),
                }
            )

        if collect_trace:
            trace.append(
                IterationRecord(
                    k=iterations - 1,
                    x1=x1,
                    x2=adv.x2,
                    x3=x3,
                    x4=x4,
                    delta=params.delta,
                    split=split,
                    far_size=int(far.size),
                    drains=drains,
                )
            )

        if params.max_iterations and iterations >= params.max_iterations:
            break

    result = SSSPResult(
        dist=dist,
        source=source,
        iterations=iterations,
        relaxations=relaxations,
        algorithm="nearfar",
        extra={"delta": params.delta, "backend": kernels.name},
    )
    if events.enabled:
        events.emit(
            {
                "type": "run_end",
                "iterations": iterations,
                "relaxations": relaxations,
                "reached": result.num_reached,
            }
        )
    return result, trace
