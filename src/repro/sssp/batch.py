"""Multi-source batches.

Single-source runs are sensitive to where the source sits (a hub vs a
peripheral vertex changes the whole parallelism profile).  Experiments
that want source-robust statistics run a batch: sample sources, run
the same algorithm from each, and aggregate the traces.

The aggregation deliberately keeps per-run identity (a list of runs,
not a blended trace): parallelism distributions may be pooled, but
times/iterations are per-run quantities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.instrument.stats import DistributionSummary, summarize
from repro.instrument.trace import RunTrace
from repro.sssp.result import SSSPResult

__all__ = ["BatchRun", "sample_sources", "batch_run", "pooled_parallelism"]

# an algorithm runner: (graph, source) -> (result, trace)
Runner = Callable[[CSRGraph, int], Tuple[SSSPResult, RunTrace]]


def sample_sources(
    graph: CSRGraph,
    count: int,
    *,
    seed: int = 0,
    min_out_degree: int = 1,
) -> np.ndarray:
    """Sample ``count`` distinct sources with at least ``min_out_degree``.

    Degenerate sources (sinks) make trivial runs; requiring an out
    degree keeps the batch meaningful.  Raises if the graph cannot
    supply enough candidates.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    degrees = np.diff(graph.indptr)
    candidates = np.flatnonzero(degrees >= min_out_degree)
    if candidates.size == 0:
        raise ValueError(
            f"graph {graph.name!r} ({graph.num_nodes} nodes, "
            f"{graph.num_edges} edges) has no vertices with out-degree "
            f">= {min_out_degree}; there is nothing to sample"
        )
    if candidates.size < count:
        raise ValueError(
            f"graph has only {candidates.size} vertices with out-degree "
            f">= {min_out_degree}; cannot sample {count}"
        )
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(candidates, size=count, replace=False))


@dataclass
class BatchRun:
    """Results of one algorithm over a batch of sources."""

    label: str
    sources: np.ndarray
    results: List[SSSPResult]
    traces: List[RunTrace]

    @property
    def count(self) -> int:
        return len(self.results)

    def iterations(self) -> np.ndarray:
        return np.asarray([r.iterations for r in self.results])

    def relaxations(self) -> np.ndarray:
        return np.asarray([r.relaxations for r in self.results])

    def reached(self) -> np.ndarray:
        return np.asarray([r.num_reached for r in self.results])

    def parallelism_summary(self) -> DistributionSummary:
        """Distribution of X^(2) pooled across every run and iteration."""
        return summarize(pooled_parallelism(self.traces))

    def as_row(self) -> dict:
        s = self.parallelism_summary()
        return {
            "algorithm": self.label,
            "sources": self.count,
            "median iters": float(np.median(self.iterations())),
            "mean relax": float(self.relaxations().mean()),
            "pooled median par": round(s.median, 1),
            "pooled cv": round(s.cv, 3),
        }


def batch_run(
    graph: CSRGraph,
    sources: Sequence[int] | np.ndarray,
    runner: Runner,
    *,
    label: str = "batch",
    parallel: bool = False,
    max_workers: int | None = None,
    mode: str = "thread",
    timeout: float | None = None,
    delta: float | None = None,
    backend: str | None = None,
) -> BatchRun:
    """Run ``runner`` from every source.

    Serial by default.  With ``parallel=True`` (or an explicit
    ``max_workers``) the sources fan out over a
    :class:`repro.service.pool.ExecutorPool`; per-source runs are
    independent, and results/traces always come back **in source
    order**, so the parallel path is bit-identical to the serial one.

    ``mode="process"`` gives CPU-parallel workers with the graph
    shipped once per worker — but then ``runner`` must be picklable (a
    module-level function, not a lambda).  ``mode="thread"`` accepts
    any callable and overlaps the NumPy kernels, which release the
    GIL.  ``timeout`` bounds each source's run in seconds.

    ``mode="batched"`` is the fast path: it ignores ``runner`` and
    answers the whole batch with one multi-source near+far pass
    (:func:`repro.sssp.batch_kernels.batched_nearfar_sssp`, optionally
    tuned by ``delta`` and run on the kernel ``backend`` of your choice
    — see :mod:`repro.sssp.backends`).  Distances are byte-identical to
    looping ``nearfar_sssp`` over the sources; traces come back empty
    (the batched kernel keeps counters, not per-iteration records).
    """
    sources = np.asarray(sources, dtype=np.int64)
    if sources.size == 0:
        raise ValueError("sources must be non-empty")

    if mode == "batched":
        from repro.sssp.batch_kernels import batched_nearfar_sssp

        results = batched_nearfar_sssp(
            graph, sources, delta=delta, backend=backend
        )
        traces = [
            RunTrace(
                algorithm="nearfar", graph_name=graph.name, source=int(s)
            )
            for s in sources
        ]
        return BatchRun(
            label=label, sources=sources, results=results, traces=traces
        )

    if parallel or max_workers is not None:
        from repro.service.pool import ExecutorPool

        with ExecutorPool(
            {"batch": graph}, mode=mode, max_workers=max_workers, timeout=timeout
        ) as pool:
            pairs = pool.map_ordered(
                "batch", runner, [(int(s),) for s in sources]
            )
        results = [result for result, _ in pairs]
        traces = [trace for _, trace in pairs]
        return BatchRun(
            label=label, sources=sources, results=results, traces=traces
        )

    results: List[SSSPResult] = []
    traces: List[RunTrace] = []
    for s in sources:
        result, trace = runner(graph, int(s))
        results.append(result)
        traces.append(trace)
    return BatchRun(label=label, sources=sources, results=results, traces=traces)


def pooled_parallelism(traces: Sequence[RunTrace]) -> np.ndarray:
    """Concatenate the per-iteration parallelism of many runs."""
    series = [t.parallelism for t in traces if len(t)]
    if not series:
        return np.zeros(0)
    return np.concatenate(series)
