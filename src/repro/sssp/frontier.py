"""Vectorised frontier-stage primitives shared by all frontier SSSP variants.

These four functions are the Python analogues of the Gunrock kernels
the paper instruments (Section 3.1):

* :func:`advance` — explore all out-edges of the frontier, relax
  distances (``np.minimum.at`` plays the role of ``atomicMin``), and
  return the improved endpoints.  Its *output size* — the total
  neighbour-list length — is the paper's ``X^(2)`` parallelism metric.
* :func:`filter_frontier` — deduplicate improved endpoints (``X^(3)``).
* :func:`bisect` — split vertices into near (< split) and far (>= split).
* :func:`drain_far_queue` — the baseline bisect-far-queue stage: advance
  the phase window until the frontier is non-empty, dropping stale
  far-queue entries.

The ``batched_*`` variants generalise each stage to **B simultaneous
queries** over the same CSR arrays.  State lives in a flat
``dist[B * n]`` array and vertices are addressed by *composite keys*
``query_id * n + v``, so one ``np.minimum.at`` sweep relaxes every
query's edges at once — the multi-source analogue of bucket fusion
(Dong et al. 2021): per-stage ufunc overhead is paid once per sweep,
not once per query.  With ``B = 1`` the batched stages perform exactly
the same floating-point operations in the same order as the
single-source ones, which the acceptance tests pin byte-for-byte.

Hot paths contain no per-vertex Python loops; everything is CSR slicing
plus ufunc reductions, per the scientific-python optimisation guides.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "AdvanceOutput",
    "BatchedAdvanceOutput",
    "advance",
    "batched_advance",
    "batched_bisect",
    "batched_drain_far",
    "batched_filter",
    "bisect",
    "drain_far_queue",
    "filter_frontier",
    "ragged_arange",
]

_EMPTY = np.zeros(0, dtype=np.int64)


def ragged_arange(counts: np.ndarray) -> np.ndarray:
    """Concatenated ``[arange(c) for c in counts]``, fully vectorised."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return _EMPTY
    ids = np.arange(total, dtype=np.int64)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    return ids - np.repeat(starts, counts)


@dataclass
class AdvanceOutput:
    """What one advance stage produced."""

    improved: np.ndarray  # improved endpoint per winning relaxation (with duplicates)
    x2: int  # total neighbour-list length == advance output size == parallelism
    relaxations: int  # edges whose relaxation was attempted (== x2)


def advance(graph: CSRGraph, frontier: np.ndarray, dist: np.ndarray) -> AdvanceOutput:
    """Relax every out-edge of ``frontier`` in place on ``dist``.

    Semantics match a GPU advance kernel with ``atomicMin``: all
    candidate distances are computed from the pre-stage ``dist`` values
    of the frontier, then written with an atomic minimum.  The improved
    array holds every endpoint whose candidate beat its pre-stage
    distance (duplicates included, exactly what Gunrock's filter stage
    receives).
    """
    if frontier.size == 0:
        return AdvanceOutput(improved=_EMPTY, x2=0, relaxations=0)
    starts = graph.indptr[frontier]
    counts = graph.indptr[frontier + 1] - starts
    x2 = int(counts.sum())
    if x2 == 0:
        return AdvanceOutput(improved=_EMPTY, x2=0, relaxations=0)

    offsets = np.repeat(starts, counts) + ragged_arange(counts)
    v = graph.indices[offsets].astype(np.int64)
    w = graph.weights[offsets]
    du = np.repeat(dist[frontier], counts)
    cand = du + w

    old = dist[v]  # pre-stage snapshot (atomic-read-before-write semantics)
    np.minimum.at(dist, v, cand)
    improved = v[cand < old]
    return AdvanceOutput(improved=improved, x2=x2, relaxations=x2)


def filter_frontier(improved: np.ndarray) -> np.ndarray:
    """Deduplicate advance output: the filter stage (``X^(3)`` = result size)."""
    if improved.size == 0:
        return _EMPTY
    return np.unique(improved)


def bisect(
    vertices: np.ndarray, dist: np.ndarray, split: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Split ``vertices`` into (near, far) by ``dist < split``."""
    if vertices.size == 0:
        return _EMPTY, _EMPTY
    mask = dist[vertices] < split
    return vertices[mask], vertices[~mask]


def drain_far_queue(
    far: np.ndarray,
    dist: np.ndarray,
    lower: float,
    split: float,
    delta: float,
) -> Tuple[np.ndarray, np.ndarray, float, float, int]:
    """Baseline bisect-far-queue: pull the next non-empty distance band.

    Starting from window ``[lower, split)``, advances the window in
    ``delta``-wide bands until some far-queue vertices fall inside it
    (or the queue empties).  Stale entries — vertices whose current
    distance already dropped below the old split (they were
    re-processed via the near queue) — are discarded, as in Davidson
    et al.'s far-pile compaction.  Empty bands are skipped in one jump
    (``drains`` still counts how many bands were crossed), so draining
    is O(|far|) regardless of how small ``delta`` is.

    Returns ``(frontier, far_remaining, lower, split, drains)``.
    """
    if far.size == 0:
        return _EMPTY, _EMPTY, lower, split, 0
    if delta <= 0:
        raise ValueError("delta must be positive to drain the far queue")

    far = np.unique(far)
    d = dist[far]
    live = d >= split  # entries below the split are stale duplicates
    far, d = far[live], d[live]
    if far.size == 0:
        return _EMPTY, _EMPTY, lower, split, 1

    lower = split
    split = max(split + delta, float(d.min()) + delta)
    drains = max(1, int(math.ceil((split - lower) / delta)))
    near_mask = d < split
    return far[near_mask], far[~near_mask], lower, split, drains


# ----------------------------------------------------------------------
# batched (multi-source) stage primitives
# ----------------------------------------------------------------------
@dataclass
class BatchedAdvanceOutput:
    """What one batched advance sweep produced, per query and pooled."""

    improved: np.ndarray  # improved composite keys (duplicates included)
    x2: int  # pooled neighbour-list length across every query
    relaxations_per_query: np.ndarray  # int64[B], edges relaxed per query


def batched_advance(
    graph: CSRGraph, frontier: np.ndarray, dist: np.ndarray, num_queries: int
) -> BatchedAdvanceOutput:
    """Relax the out-edges of a flattened multi-query frontier.

    ``frontier`` holds composite keys ``q * n + u``; ``dist`` is the
    flat ``B * n`` distance array.  One gather builds every query's
    edge candidates, one ``np.minimum.at`` commits them — atomicMin
    semantics identical to :func:`advance`, shared across all B
    queries.  Keys of distinct queries can never collide (they live in
    disjoint ``[q*n, (q+1)*n)`` ranges), so queries stay independent.
    """
    n = graph.num_nodes
    B = int(num_queries)
    if frontier.size == 0:
        return BatchedAdvanceOutput(
            improved=_EMPTY, x2=0,
            relaxations_per_query=np.zeros(B, dtype=np.int64),
        )
    q, u = np.divmod(frontier, n)
    starts = graph.indptr[u]
    counts = graph.indptr[u + 1] - starts
    x2 = int(counts.sum())
    relax = np.zeros(B, dtype=np.int64)
    np.add.at(relax, q, counts)
    if x2 == 0:
        return BatchedAdvanceOutput(
            improved=_EMPTY, x2=0, relaxations_per_query=relax
        )

    # offsets = repeat(starts, counts) + ragged_arange(counts), fused
    # into a single edge-sized repeat (this is the hottest line of the
    # batched pass; every temporary here is edge-sized)
    shift = np.empty(counts.size, dtype=np.int64)
    shift[0] = 0
    np.cumsum(counts[:-1], out=shift[1:])
    np.subtract(starts, shift, out=shift)
    offsets = np.repeat(shift, counts)
    offsets += np.arange(x2, dtype=np.int64)
    v = graph.indices[offsets]
    w = graph.weights[offsets]
    cand = np.repeat(dist[frontier], counts)
    cand += w
    vkeys = np.repeat(q * n, counts)
    vkeys += v

    old = dist[vkeys]  # pre-sweep snapshot (atomic-read-before-write)
    np.minimum.at(dist, vkeys, cand)
    improved = vkeys[cand < old]
    return BatchedAdvanceOutput(
        improved=improved, x2=x2, relaxations_per_query=relax
    )


def _dedup_sorted(keys: np.ndarray) -> np.ndarray:
    """Sort + adjacent-diff dedup: ``np.unique`` output without its
    hash-table path, which dominates the batched sweep profile."""
    if keys.size == 0:
        return _EMPTY
    keys = np.sort(keys)
    keep = np.empty(keys.size, dtype=bool)
    keep[0] = True
    np.not_equal(keys[1:], keys[:-1], out=keep[1:])
    return keys[keep]


def batched_filter(improved: np.ndarray) -> np.ndarray:
    """Deduplicate improved composite keys across every query at once.

    Sorting composite keys is simultaneously a global sort and a
    per-query dedup, because each query owns a disjoint key range — for
    ``B = 1`` the result is identical to :func:`filter_frontier`.
    """
    return _dedup_sorted(improved)


def batched_bisect(
    keys: np.ndarray, dist: np.ndarray, splits: np.ndarray, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Split composite ``keys`` into (near, far) by *per-query* windows.

    ``splits[q]`` is query ``q``'s current split value; a key goes near
    when its distance falls below its own query's split.
    """
    if keys.size == 0:
        return _EMPTY, _EMPTY
    mask = dist[keys] < splits[keys // n]
    return keys[mask], keys[~mask]


def batched_drain_far(
    far: np.ndarray,
    dist: np.ndarray,
    n: int,
    lower: np.ndarray,
    split: np.ndarray,
    delta: np.ndarray,
    need: np.ndarray,
    far_q: np.ndarray | None = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-query bisect-far-queue over a flattened multi-query far set.

    Mirrors :func:`drain_far_queue` independently for every query whose
    ``need`` flag is set (near queue empty, far queue not), in one
    vectorised pass: stale entries are dropped, each draining query's
    window jumps to ``max(split + delta, d_min + delta)`` (its own
    ``d_min``, via ``np.minimum.at``), and entries now inside the new
    window become that query's next frontier.  Entries of queries not
    in ``need`` pass through untouched.  A draining query with only
    stale entries keeps its window (nothing to pull) and simply loses
    the stale entries, finishing the query.

    Returns ``(frontier, far_remaining, lower, split, drains_per_query)``
    with ``lower``/``split`` as fresh arrays.  ``far_q`` may carry a
    precomputed ``far // n`` (callers that already derived it avoid a
    second far-sized division).
    """
    if np.any(delta[need] <= 0):
        raise ValueError("delta must be positive to drain the far queue")
    lower = lower.copy()
    split = split.copy()
    B = lower.size
    drains = np.zeros(B, dtype=np.int64)
    if far.size == 0:
        return _EMPTY, _EMPTY, lower, split, drains

    sel = need[far // n if far_q is None else far_q]
    keep = far[~sel]
    cand = _dedup_sorted(far[sel])
    qc = cand // n
    scanned = np.zeros(B, dtype=bool)
    scanned[qc] = True  # draining queries that had entries to look at
    d = dist[cand]
    live = d >= split[qc]  # entries below the split are stale duplicates
    cand, qc, d = cand[live], qc[live], d[live]

    dmin = np.full(B, np.inf)
    np.minimum.at(dmin, qc, d)
    advanced = need & np.isfinite(dmin)  # draining queries with live entries
    new_split = np.where(
        advanced, np.maximum(split + delta, dmin + delta), split
    )
    lower[advanced] = split[advanced]
    drains[advanced] = np.maximum(
        1, np.ceil((new_split[advanced] - lower[advanced]) / delta[advanced])
    ).astype(np.int64)
    drains[scanned & ~advanced] = 1  # all-stale drains still count one scan
    split = new_split

    near_mask = d < split[qc]
    frontier = cand[near_mask]
    far_remaining = np.concatenate([keep, cand[~near_mask]])
    return frontier, far_remaining, lower, split, drains
