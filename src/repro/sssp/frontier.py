"""Vectorised frontier-stage primitives shared by all frontier SSSP variants.

These four functions are the Python analogues of the Gunrock kernels
the paper instruments (Section 3.1):

* :func:`advance` — explore all out-edges of the frontier, relax
  distances (``np.minimum.at`` plays the role of ``atomicMin``), and
  return the improved endpoints.  Its *output size* — the total
  neighbour-list length — is the paper's ``X^(2)`` parallelism metric.
* :func:`filter_frontier` — deduplicate improved endpoints (``X^(3)``).
* :func:`bisect` — split vertices into near (< split) and far (>= split).
* :func:`drain_far_queue` — the baseline bisect-far-queue stage: advance
  the phase window until the frontier is non-empty, dropping stale
  far-queue entries.

Hot paths contain no per-vertex Python loops; everything is CSR slicing
plus ufunc reductions, per the scientific-python optimisation guides.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "AdvanceOutput",
    "advance",
    "filter_frontier",
    "bisect",
    "drain_far_queue",
    "ragged_arange",
]

_EMPTY = np.zeros(0, dtype=np.int64)


def ragged_arange(counts: np.ndarray) -> np.ndarray:
    """Concatenated ``[arange(c) for c in counts]``, fully vectorised."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return _EMPTY
    ids = np.arange(total, dtype=np.int64)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    return ids - np.repeat(starts, counts)


@dataclass
class AdvanceOutput:
    """What one advance stage produced."""

    improved: np.ndarray  # improved endpoint per winning relaxation (with duplicates)
    x2: int  # total neighbour-list length == advance output size == parallelism
    relaxations: int  # edges whose relaxation was attempted (== x2)


def advance(graph: CSRGraph, frontier: np.ndarray, dist: np.ndarray) -> AdvanceOutput:
    """Relax every out-edge of ``frontier`` in place on ``dist``.

    Semantics match a GPU advance kernel with ``atomicMin``: all
    candidate distances are computed from the pre-stage ``dist`` values
    of the frontier, then written with an atomic minimum.  The improved
    array holds every endpoint whose candidate beat its pre-stage
    distance (duplicates included, exactly what Gunrock's filter stage
    receives).
    """
    if frontier.size == 0:
        return AdvanceOutput(improved=_EMPTY, x2=0, relaxations=0)
    starts = graph.indptr[frontier]
    counts = graph.indptr[frontier + 1] - starts
    x2 = int(counts.sum())
    if x2 == 0:
        return AdvanceOutput(improved=_EMPTY, x2=0, relaxations=0)

    offsets = np.repeat(starts, counts) + ragged_arange(counts)
    v = graph.indices[offsets].astype(np.int64)
    w = graph.weights[offsets]
    du = np.repeat(dist[frontier], counts)
    cand = du + w

    old = dist[v]  # pre-stage snapshot (atomic-read-before-write semantics)
    np.minimum.at(dist, v, cand)
    improved = v[cand < old]
    return AdvanceOutput(improved=improved, x2=x2, relaxations=x2)


def filter_frontier(improved: np.ndarray) -> np.ndarray:
    """Deduplicate advance output: the filter stage (``X^(3)`` = result size)."""
    if improved.size == 0:
        return _EMPTY
    return np.unique(improved)


def bisect(
    vertices: np.ndarray, dist: np.ndarray, split: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Split ``vertices`` into (near, far) by ``dist < split``."""
    if vertices.size == 0:
        return _EMPTY, _EMPTY
    mask = dist[vertices] < split
    return vertices[mask], vertices[~mask]


def drain_far_queue(
    far: np.ndarray,
    dist: np.ndarray,
    lower: float,
    split: float,
    delta: float,
) -> Tuple[np.ndarray, np.ndarray, float, float, int]:
    """Baseline bisect-far-queue: pull the next non-empty distance band.

    Starting from window ``[lower, split)``, advances the window in
    ``delta``-wide bands until some far-queue vertices fall inside it
    (or the queue empties).  Stale entries — vertices whose current
    distance already dropped below the old split (they were
    re-processed via the near queue) — are discarded, as in Davidson
    et al.'s far-pile compaction.  Empty bands are skipped in one jump
    (``drains`` still counts how many bands were crossed), so draining
    is O(|far|) regardless of how small ``delta`` is.

    Returns ``(frontier, far_remaining, lower, split, drains)``.
    """
    if far.size == 0:
        return _EMPTY, _EMPTY, lower, split, 0
    if delta <= 0:
        raise ValueError("delta must be positive to drain the far queue")

    far = np.unique(far)
    d = dist[far]
    live = d >= split  # entries below the split are stale duplicates
    far, d = far[live], d[live]
    if far.size == 0:
        return _EMPTY, _EMPTY, lower, split, 1

    lower = split
    split = max(split + delta, float(d.min()) + delta)
    drains = max(1, int(math.ceil((split - lower) / delta)))
    near_mask = d < split
    return far[near_mask], far[~near_mask], lower, split, drains
