"""KLA-style SSSP: k-level asynchronous execution.

The paper's related work contrasts its per-iteration delta tuning with
the KLA paradigm (Harshvardhan et al., PACT'14), which "assumes a
single optimal and universal value of k" — a constant asynchrony depth
chosen once per run.  For SSSP, KLA executes supersteps of up to ``k``
asynchronous relaxation levels between global synchronisations:

* ``k = 1`` — level-synchronous (Bellman–Ford-ish) execution;
* ``k = ∞`` — fully asynchronous chaotic relaxation.

Unlike delta-stepping, KLA has no distance-based prioritisation, so
larger ``k`` buys fewer synchronisations at the cost of relaxing
through stale distances (redundant work on weighted graphs).  The
comparison experiment (:mod:`repro.experiments.kla_comparison`)
quantifies that trade-off against the near+far baseline and the
self-tuning controller.

Each asynchronous level is emitted as one trace record (an advance +
filter pair with no far-queue work), so KLA runs replay on the
platform simulator like any other frontier algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.instrument.trace import IterationRecord, RunTrace
from repro.sssp.frontier import advance, filter_frontier
from repro.sssp.result import SSSPResult

__all__ = ["kla_sssp"]


def kla_sssp(
    graph: CSRGraph,
    source: int,
    k: int = 4,
    *,
    collect_trace: bool = True,
) -> tuple[SSSPResult, RunTrace]:
    """Exact SSSP with k-level asynchronous supersteps.

    Parameters
    ----------
    k:
        Asynchrony depth: relaxation levels per superstep (>= 1).

    Returns
    -------
    (result, trace):
        ``result.iterations`` counts *supersteps* (global syncs);
        ``result.extra['levels']`` counts relaxation levels, which is
        what the trace holds one record per.
    """
    n = graph.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} nodes")
    if graph.has_negative_weights():
        raise ValueError("KLA SSSP requires non-negative edge weights")
    if k < 1:
        raise ValueError("k must be >= 1")

    dist = np.full(n, np.inf)
    dist[source] = 0.0
    frontier = np.array([source], dtype=np.int64)

    trace = RunTrace(algorithm=f"kla-k{k}", graph_name=graph.name, source=source)
    supersteps = 0
    levels = 0
    relaxations = 0

    while frontier.size:
        supersteps += 1
        # one superstep: up to k asynchronous levels
        for _ in range(k):
            if frontier.size == 0:
                break
            levels += 1
            x1 = int(frontier.size)
            adv = advance(graph, frontier, dist)
            relaxations += adv.relaxations
            frontier = filter_frontier(adv.improved)
            if collect_trace:
                trace.append(
                    IterationRecord(
                        k=levels - 1,
                        x1=x1,
                        x2=adv.x2,
                        x3=int(frontier.size),
                        x4=int(frontier.size),
                        delta=float(k),
                        split=float(supersteps),
                        far_size=0,
                    )
                )
        # global synchronisation happens here (a barrier on real
        # distributed KLA; a no-op cost-wise in this shared-memory model)

    result = SSSPResult(
        dist=dist,
        source=source,
        iterations=supersteps,
        relaxations=relaxations,
        algorithm=f"kla-k{k}",
        extra={"k": k, "levels": levels},
    )
    return result, trace
