"""Classic Meyer–Sanders delta-stepping.

The algorithmic ancestor of the near+far method: vertices live in
buckets of width ``delta``; the smallest non-empty bucket is drained by
repeatedly relaxing its *light* edges (weight <= delta), then its
accumulated vertices' *heavy* edges are relaxed once.

Included as a second parallel baseline (the paper positions near+far as
a delta-stepping variation) and as another correctness cross-check.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sssp.frontier import ragged_arange
from repro.sssp.result import SSSPResult

__all__ = ["delta_stepping"]


def _relax_edges(
    graph: CSRGraph,
    frontier: np.ndarray,
    dist: np.ndarray,
    light: bool,
    delta: float,
) -> tuple[np.ndarray, int]:
    """Relax the light or heavy out-edges of ``frontier``.

    Returns (improved unique endpoints, relaxation count).
    """
    if frontier.size == 0:
        return np.zeros(0, dtype=np.int64), 0
    starts = graph.indptr[frontier]
    counts = graph.indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64), 0
    offsets = np.repeat(starts, counts) + ragged_arange(counts)
    v = graph.indices[offsets].astype(np.int64)
    w = graph.weights[offsets]
    mask = (w <= delta) if light else (w > delta)
    v, w = v[mask], w[mask]
    if v.size == 0:
        return np.zeros(0, dtype=np.int64), 0
    du = np.repeat(dist[frontier], counts)[mask]
    cand = du + w
    old = dist[v]
    np.minimum.at(dist, v, cand)
    improved = np.unique(v[cand < old])
    return improved, int(v.size)


def delta_stepping(
    graph: CSRGraph, source: int, delta: float | None = None
) -> SSSPResult:
    """Meyer–Sanders delta-stepping with a fixed bucket width.

    ``delta`` defaults to the average edge weight (a common heuristic).
    Requires non-negative weights.
    """
    n = graph.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} nodes")
    if graph.has_negative_weights():
        raise ValueError("delta-stepping requires non-negative edge weights")
    if delta is None:
        delta = max(graph.average_weight, 1e-12)
    if delta <= 0:
        raise ValueError("delta must be positive")

    dist = np.full(n, np.inf)
    dist[source] = 0.0
    active = np.zeros(n, dtype=bool)
    active[source] = True
    iterations = 0
    relaxations = 0

    while active.any():
        act_idx = np.flatnonzero(active)
        i = int(np.floor(dist[act_idx].min() / delta))
        upper = (i + 1) * delta
        settled_this_phase: list[np.ndarray] = []

        # inner loop: drain bucket i via light edges
        while True:
            in_bucket = act_idx[dist[act_idx] < upper]
            if in_bucket.size == 0:
                break
            active[in_bucket] = False
            settled_this_phase.append(in_bucket)
            improved, r = _relax_edges(graph, in_bucket, dist, light=True, delta=delta)
            relaxations += r
            iterations += 1
            active[improved] = True
            act_idx = np.flatnonzero(active)

        # heavy edges of everything settled in this phase, once
        if settled_this_phase:
            settled = np.unique(np.concatenate(settled_this_phase))
            improved, r = _relax_edges(graph, settled, dist, light=False, delta=delta)
            relaxations += r
            active[improved] = True

    return SSSPResult(
        dist=dist,
        source=source,
        iterations=iterations,
        relaxations=relaxations,
        algorithm="delta-stepping",
        extra={"delta": delta},
    )
