"""BISECT-MODEL (paper Section 4.4).

Learns the linear response of the next frontier size to a delta change:

    X̂_{k+1}^(1) = X_k^(4) + α · Δδ_k

``α`` is the local density of postponed vertices per unit of delta —
how many far-queue vertices a unit widening of the near window pulls
in.  Fitted with Algorithm 1, derivatives taken with respect to α:

    ∇_α  = −2 (X_{k+1}^(1) − X_k^(4) − α·Δδ_k) Δδ_k
    ∇²_α =  2 (Δδ_k)²

Iterations with ``Δδ = 0`` carry no information about α and are skipped
(the paper's Eq. 4 note: Δδ = 0 means the frontier passes through
unchanged).  The paper reports α converging after ~5 iterations; before
that, the controller uses the Eq. 8 bootstrap instead of this model —
exposed here via :attr:`converged`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sgd import AdaptiveSGD, FixedRateSGD, make_sgd

__all__ = ["BisectModel"]


@dataclass
class BisectModel:
    """Online estimator of the frontier-size sensitivity to delta changes.

    Parameters
    ----------
    initial_alpha:
        Seed for α.  Any positive value works; the bootstrap dominates
        early iterations anyway.
    alpha_min:
        Positivity floor: α divides the delta update (Eq. 6).  A
        negative learned α would mean "widening the window removes
        vertices", which is physically impossible — clamping keeps the
        controller stable when noise drives the raw estimate negative.
    convergence_updates:
        How many Algorithm-1 steps count as "converged" (paper: ~5).
    sgd_mode:
        ``'adaptive'`` for the paper's Algorithm 1, ``'fixed'`` for the
        fixed-rate ablation.
    """

    initial_alpha: float = 1.0
    alpha_min: float = 1e-6
    convergence_updates: int = 5
    sgd_mode: str = "adaptive"
    sgd: AdaptiveSGD | FixedRateSGD = field(init=False)

    def __post_init__(self) -> None:
        if self.initial_alpha <= 0:
            raise ValueError("initial_alpha must be positive")
        self.sgd = make_sgd(self.sgd_mode, float(self.initial_alpha))

    @property
    def alpha(self) -> float:
        return max(self.sgd.value, self.alpha_min)

    @property
    def updates(self) -> int:
        return self.sgd.updates

    @property
    def converged(self) -> bool:
        return self.sgd.updates >= self.convergence_updates

    def observe(self, x4: int, delta_change: float, x1_next: int) -> None:
        """Algorithm-1 step from one (X^(4), Δδ, X^(1)_next) triple."""
        if x4 < 0 or x1_next < 0:
            raise ValueError("stage workloads must be non-negative")
        if delta_change == 0.0:
            return
        residual = float(x1_next) - (float(x4) + self.sgd.value * delta_change)
        grad = -2.0 * residual * delta_change
        hess = 2.0 * delta_change * delta_change
        self.sgd.update(grad, hess)
        if self.sgd.value < self.alpha_min:
            self.sgd.value = self.alpha_min

    def predict(self, x4: int, delta_change: float) -> float:
        """``X̂_{k+1}^(1)`` after applying ``delta_change`` to a frontier of ``x4``."""
        return float(x4) + self.alpha * delta_change
