"""Recursively partitioned far queue (paper Section 4.6).

The controller keeps the far queue partitioned by vertex distance so
that (a) each partition's size stays near the set-point ``P`` and
(b) bisect-far-queue only has to search the partitions whose distance
range intersects the next near window, not the whole queue.

Boundary protocol, following the paper:

* Start with two partitions whose upper bounds are the average edge
  weight and ``MAX`` (+inf here).
* Partition ``i`` holds vertices with insertion distance in
  ``(B_{i-1}, B_i]``.
* Boundary update (Eq. 7): ``B_i ← B_{i-1} + P/α`` — applied only if
  it *decreases* the bound (monotonic shifts preserve correctness
  because vertices already routed are re-validated on extraction).
* If the update would touch the last partition, a fresh ``(…, +inf]``
  partition is appended first.
* When the current partition empties, the next becomes current.

Vertices are staged as numpy chunks per partition and concatenated
lazily; distances are re-checked against the live ``dist`` array at
extraction time, so stale entries (vertices improved after insertion)
are harmless.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.obs import context as obs

__all__ = ["FarQueuePartitions", "FlatFarQueue"]

_EMPTY = np.zeros(0, dtype=np.int64)


class FarQueuePartitions:
    """Distance-partitioned far queue."""

    def __init__(self, initial_boundary: float):
        if not (initial_boundary > 0):
            raise ValueError("initial boundary must be positive")
        # uppers[i] is B_i; lower bound of partition i is uppers[i-1] (0 for i=0)
        self._uppers: List[float] = [float(initial_boundary), math.inf]
        self._chunks: List[List[np.ndarray]] = [[], []]
        self._counts: List[int] = [0, 0]
        self._current: int = 0
        reg = obs.get_registry()
        self._m_inserted = reg.counter("farq.inserted")
        self._m_extracted = reg.counter("farq.extracted")
        self._m_refreshes = reg.counter("farq.refreshes")
        self._m_partitions = reg.gauge("farq.partitions")

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        """Live partition count (grows one per Eq. 7 overflow)."""
        return len(self._uppers)

    @property
    def boundaries(self) -> List[float]:
        """Upper bounds B_i (a copy)."""
        return list(self._uppers)

    @property
    def current_index(self) -> int:
        """Index of the current (first non-empty) partition."""
        return self._current

    def partition_sizes(self) -> np.ndarray:
        """Staged-vertex count per partition, as an int64 array."""
        return np.asarray(self._counts, dtype=np.int64)

    def total(self) -> int:
        """Total staged vertices across all partitions."""
        return int(sum(self._counts))

    def current_partition_size(self) -> int:
        """Staged-vertex count of the current partition."""
        self._advance_current()
        return self._counts[self._current]

    def current_partition_upper(self) -> float:
        """Upper distance bound B_i of the current partition."""
        self._advance_current()
        return self._uppers[self._current]

    def current_partition_lower(self) -> float:
        """Lower distance bound (B_{i-1}) of the current partition."""
        self._advance_current()
        return self._uppers[self._current - 1] if self._current else 0.0

    def min_occupied_lower(self) -> float:
        """Lower bound of the first non-empty partition (+inf when empty).

        Lets the drain loop jump over empty distance ranges instead of
        advancing band by band.
        """
        lower = 0.0
        for upper, count in zip(self._uppers, self._counts):
            if count:
                return lower
            lower = upper
        return math.inf

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, vertices: np.ndarray, distances: np.ndarray) -> None:
        """Route ``vertices`` to partitions by their (insertion) distances.

        Vertex with distance ``x`` lands in the partition ``i`` with
        ``B_{i-1} < x <= B_i`` — ``searchsorted(..., side='left')`` on
        the upper bounds.
        """
        if vertices.size == 0:
            return
        if vertices.size != distances.size:
            raise ValueError("vertices and distances must be parallel")
        if not np.all(np.isfinite(distances)):
            raise ValueError("far-queue insertion distances must be finite")
        self._m_inserted.inc(int(vertices.size))
        part = np.searchsorted(self._uppers, distances, side="left")
        order = np.argsort(part, kind="stable")
        part_s = part[order]
        verts_s = vertices[order]
        starts = np.flatnonzero(np.diff(part_s, prepend=-1))
        for si, start in enumerate(starts):
            end = starts[si + 1] if si + 1 < starts.size else part_s.size
            p = int(part_s[start])
            chunk = verts_s[start:end]
            self._chunks[p].append(chunk)
            self._counts[p] += chunk.size

    def extract_below(self, split: float) -> np.ndarray:
        """Remove and return all staged vertices that *may* lie below ``split``.

        Pulls every partition whose distance range starts below
        ``split``.  The caller re-validates against the live distance
        array (entries can be stale); vertices still >= split must be
        re-inserted.
        """
        pulled: List[np.ndarray] = []
        lower = 0.0
        for i, upper in enumerate(self._uppers):
            if lower >= split:
                break
            if self._counts[i]:
                pulled.extend(self._chunks[i])
                self._chunks[i] = []
                self._counts[i] = 0
            lower = upper
        if not pulled:
            return _EMPTY
        self._advance_current()
        out = np.concatenate(pulled)
        self._m_extracted.inc(int(out.size))
        return out

    def extract_all(self) -> np.ndarray:
        """Drain every partition (used by tests and the final sweep)."""
        return self.extract_below(math.inf)

    def refresh_boundaries(self, setpoint: float, alpha: float) -> None:
        """Eq. 7 sweep: ``B_i ← B_{i-1} + P/α``, monotonic decrease only.

        Runs from the current partition outward.  If the sweep reaches
        the last (+inf) partition, a new +inf partition is appended
        first so the far tail always has somewhere to live.

        Both inputs must be finite: a NaN width would leave appended
        partitions unbounded (``NaN < inf`` is false), breaking the
        one-trailing-inf invariant the sweep's termination relies on.
        """
        if not (setpoint > 0 and alpha > 0) or math.isinf(setpoint) or (
            math.isinf(alpha)
        ):
            raise ValueError("setpoint and alpha must be finite and positive")
        self._advance_current()
        width = setpoint / alpha
        i = self._current
        while i < len(self._uppers):
            if math.isinf(self._uppers[i]):
                # the update "belongs to the last remaining partition":
                # append a fresh +inf partition, then bound this one
                self._uppers.append(math.inf)
                self._chunks.append([])
                self._counts.append(0)
            prev_upper = self._uppers[i - 1] if i else 0.0
            candidate = prev_upper + width
            if candidate < self._uppers[i]:
                self._uppers[i] = candidate  # monotonic: decrease only
            i += 1
            if i >= len(self._uppers) - 1:
                break  # leave exactly one trailing +inf partition
        self._m_refreshes.inc()
        self._m_partitions.set(self.num_partitions)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _advance_current(self) -> None:
        """Point ``current`` at the first non-empty partition.

        The paper moves forward only ("the next partition becomes the
        current partition"), but our rebalancer may re-insert vertices
        *below* the current partition when delta shrinks, so a full
        scan keeps the bootstrap statistics (Eq. 8) meaningful.  The
        partition count stays small (it grows one per Eq. 7 overflow),
        so the scan is O(few).
        """
        for i, count in enumerate(self._counts):
            if count:
                self._current = i
                return
        self._current = len(self._uppers) - 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FarQueuePartitions(parts={self.num_partitions}, "
            f"total={self.total()}, current={self._current})"
        )


class FlatFarQueue:
    """Ablation: an unpartitioned far queue with the same protocol.

    This is what the baseline near+far effectively uses: a single bag
    of postponed vertices.  Every range query must touch everything —
    ``extract_below`` cannot exploit distance locality — which is
    precisely the search cost Section 4.6's recursive partitioning
    removes.  The Eq. 7 boundary machinery degenerates to a no-op.

    Exposes the same interface as :class:`FarQueuePartitions` so the
    adaptive algorithm can swap it in via
    ``AdaptiveParams(use_partitions=False)``.
    """

    def __init__(self, initial_boundary: float):
        if not (initial_boundary > 0):
            raise ValueError("initial boundary must be positive")
        self._chunks: List[np.ndarray] = []
        self._count: int = 0
        reg = obs.get_registry()
        self._m_inserted = reg.counter("farq.inserted")
        self._m_extracted = reg.counter("farq.extracted")
        self._m_refreshes = reg.counter("farq.refreshes")

    # -- inspection -----------------------------------------------------
    @property
    def num_partitions(self) -> int:
        """Always 1: the whole far range is a single bag."""
        return 1

    @property
    def boundaries(self) -> List[float]:
        """The single (trivial) upper bound: +inf."""
        return [math.inf]

    def partition_sizes(self) -> np.ndarray:
        """One-element array holding the total staged count."""
        return np.asarray([self._count], dtype=np.int64)

    def total(self) -> int:
        """Total staged vertices."""
        return self._count

    def current_partition_size(self) -> int:
        """Same as :meth:`total` — there is only one partition."""
        return self._count

    def current_partition_upper(self) -> float:
        """Always +inf: the flat queue spans the whole far range."""
        return math.inf

    def current_partition_lower(self) -> float:
        """Always 0.0: the flat queue spans the whole far range."""
        return 0.0

    def min_occupied_lower(self) -> float:
        """0.0 when anything is staged, +inf when empty."""
        return 0.0 if self._count else math.inf

    # -- mutation -------------------------------------------------------
    def insert(self, vertices: np.ndarray, distances: np.ndarray) -> None:
        """Stage ``vertices`` (distances only validated, not used)."""
        if vertices.size == 0:
            return
        if vertices.size != distances.size:
            raise ValueError("vertices and distances must be parallel")
        if not np.all(np.isfinite(distances)):
            raise ValueError("far-queue insertion distances must be finite")
        self._chunks.append(np.asarray(vertices, dtype=np.int64))
        self._count += int(vertices.size)
        self._m_inserted.inc(int(vertices.size))

    def extract_below(self, split: float) -> np.ndarray:
        """Drain *everything* (a flat queue cannot range-filter)."""
        if split <= 0 or self._count == 0:
            return _EMPTY
        out = np.concatenate(self._chunks) if self._chunks else _EMPTY
        self._chunks = []
        self._count = 0
        self._m_extracted.inc(int(out.size))
        return out

    def extract_all(self) -> np.ndarray:
        """Drain the whole queue."""
        return self.extract_below(math.inf)

    def refresh_boundaries(self, setpoint: float, alpha: float) -> None:
        """Validate inputs and count the refresh; no boundaries exist."""
        if not (setpoint > 0 and alpha > 0) or math.isinf(setpoint) or (
            math.isinf(alpha)
        ):
            raise ValueError("setpoint and alpha must be finite and positive")
        self._m_refreshes.inc()
        # no boundaries to maintain

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FlatFarQueue(total={self._count})"
