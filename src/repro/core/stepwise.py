"""Iteration-stepped execution of the self-tuning near+far SSSP.

:class:`AdaptiveNearFarStepper` exposes the algorithm one outer
iteration at a time: each :meth:`step` runs advance → filter →
bisect-frontier → rebalancer and returns that iteration's
:class:`~repro.instrument.trace.IterationRecord`.

This is the integration point for *outer* control loops that need to
react between iterations — most importantly the power-target servo of
:mod:`repro.cosim`, which implements the paper's future-work idea of
feeding *measured power* back into the set-point ("measured power
would need to be part of the feedback control system", §6).  The
set-point can be retargeted between any two steps via
:attr:`setpoint`.

:func:`repro.core.adaptive_sssp.adaptive_sssp` is a thin wrapper that
drives this stepper to completion.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.core.controller import (
    ControllerConfig,
    DeltaDecision,
    SetpointController,
)
from repro.core.partitions import FarQueuePartitions, FlatFarQueue
from repro.graph.csr import CSRGraph
from repro.instrument.trace import IterationRecord, RunTrace
from repro.obs import context as obs
from repro.obs.events import EVENT_SCHEMA_VERSION
from repro.resilience.guard import DivergenceGuard, GuardConfig
from repro.sssp.frontier import advance, bisect, filter_frontier
from repro.sssp.nearfar import suggest_delta
from repro.sssp.result import SSSPResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.adaptive_sssp import AdaptiveParams

__all__ = ["AdaptiveNearFarStepper"]

_EMPTY = np.zeros(0, dtype=np.int64)


class AdaptiveNearFarStepper:
    """One-iteration-at-a-time driver of the self-tuning algorithm."""

    def __init__(self, graph: CSRGraph, source: int, params: "AdaptiveParams"):
        n = graph.num_nodes
        if not 0 <= source < n:
            raise ValueError(f"source {source} out of range for {n} nodes")
        if graph.has_negative_weights():
            raise ValueError("near+far requires non-negative edge weights")

        self.graph = graph
        self.source = source
        self.params = params
        self.initial_delta = (
            params.initial_delta
            if params.initial_delta is not None
            else suggest_delta(graph)
        )
        config = ControllerConfig(
            setpoint=params.setpoint,
            delta_min=params.delta_min,
            delta_max=params.delta_max,
            max_step_fraction=params.max_step_fraction,
            gain=params.gain,
            bootstrap_updates=params.bootstrap_updates,
            use_bootstrap=params.use_bootstrap,
            sgd_mode=params.sgd_mode,
        )
        self.controller = SetpointController(
            config,
            self.initial_delta,
            initial_d=max(graph.average_degree, 1.0),
        )
        queue_cls = FarQueuePartitions if params.use_partitions else FlatFarQueue
        self.partitions = queue_cls(initial_boundary=graph.average_weight)

        # divergence watchdog: a blown-up controller (NaN/runaway delta,
        # limit-cycle oscillation) degrades the run to plain near-far
        # with the last-good static delta instead of stalling
        self.guard = (
            DivergenceGuard(
                self.initial_delta, GuardConfig(window=params.guard_window)
            )
            if params.use_guard
            else None
        )
        self.fallback = False
        self.fallback_reason: str | None = None
        self._fallback_delta = self.initial_delta

        self.dist = np.full(n, np.inf)
        self.dist[source] = 0.0
        # distance each vertex had when its out-edges were last relaxed;
        # a queued copy is stale iff dist[v] >= advanced_at[v]
        self.advanced_at = np.full(n, np.inf)

        self.frontier = np.array([source], dtype=np.int64)
        self.lower = 0.0
        self.split = self.controller.delta

        self.iterations = 0
        self.relaxations = 0
        self._controller_prev_seconds = 0.0

        # observability handles, bound to the context active at
        # construction (all no-op by default)
        ctx = obs.current()
        reg = ctx.registry
        self._events = ctx.events
        self._m_iterations = reg.counter("sssp.iterations")
        self._m_relaxations = reg.counter("sssp.relaxations")
        self._m_frontier = reg.histogram("sssp.frontier")
        self._m_parallelism = reg.histogram("sssp.parallelism")
        self._m_to_far = reg.counter("sssp.queue.moved_to_far")
        self._m_from_far = reg.counter("sssp.queue.moved_from_far")
        self._m_far_scanned = reg.counter("sssp.queue.far_scanned")
        self._m_drains = reg.counter("sssp.queue.drains")
        self._m_fallbacks = reg.counter("controller.fallbacks")
        if self._events.enabled:
            self._events.emit(
                {
                    "type": "run_start",
                    "v": EVENT_SCHEMA_VERSION,
                    "algorithm": "adaptive-nearfar",
                    "graph": graph.name,
                    "source": source,
                    "setpoint": params.setpoint,
                    "initial_delta": self.initial_delta,
                }
            )

    # ------------------------------------------------------------------
    # outer-loop interface
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once the frontier is empty and the run is complete."""
        return self.frontier.size == 0

    @property
    def setpoint(self) -> float:
        """The controller's live parallelism set-point P (settable)."""
        return self.controller.setpoint

    @setpoint.setter
    def setpoint(self, value: float) -> None:
        """Retarget the controller mid-run (the power servo uses this)."""
        if value <= 0:
            raise ValueError("setpoint must be positive")
        self.controller.setpoint = float(value)

    def step(self) -> Optional[IterationRecord]:
        """Run one outer iteration; ``None`` once the run has finished."""
        if self.done:
            return None
        self.iterations += 1
        controller, partitions, params = self.controller, self.partitions, self.params
        dist, advanced_at = self.dist, self.advanced_at

        x1 = int(self.frontier.size)
        if not self.fallback:
            controller.begin_iteration(x1)

        # stage 1: advance
        advanced_at[self.frontier] = dist[self.frontier]
        adv = advance(self.graph, self.frontier, dist)
        self.relaxations += adv.relaxations
        if not self.fallback:
            controller.observe_advance(x1, adv.x2)

        # stage 2: filter
        unique_improved = filter_frontier(adv.improved)
        x3 = int(unique_improved.size)

        # stage 3: bisect-frontier
        near, far_add = bisect(unique_improved, dist, self.split)
        if far_add.size:
            partitions.insert(far_add, dist[far_add])
        x4 = int(near.size)

        # stage 4: rebalancer (replaces bisect-far-queue), unless the
        # watchdog has benched the controller — then a static delta
        # turns the rest of the run into plain near-far
        if self.fallback:
            decision = self._static_decision()
        else:
            decision = controller.plan(
                x4,
                window_lower=self.lower,
                window_split=self.split,
                far_total=partitions.total(),
                far_partition_size=partitions.current_partition_size(),
                far_partition_upper=partitions.current_partition_upper(),
            )
            if self.guard is not None and self.guard.observe(
                decision.delta, adv.x2
            ):
                self._enter_fallback()
                decision = self._static_decision()
        new_split = self.lower + decision.delta
        moved_from_far = moved_to_far = 0
        far_scanned = 0

        if new_split > self.split:
            # delta grew: pull far vertices that now fall inside the window
            near, moved_from_far, scanned = _pull_from_far(
                partitions, near, dist, advanced_at, new_split
            )
            far_scanned += scanned
        elif new_split < self.split and near.size:
            # delta shrank: postpone frontier vertices beyond the new split
            keep_mask = dist[near] < new_split
            postponed = near[~keep_mask]
            if postponed.size:
                partitions.insert(postponed, dist[postponed])
                moved_to_far = int(postponed.size)
            near = near[keep_mask]
        self.split = new_split

        # Eq. 7 refresh — skipped when the decision's α is not usable
        # as a partition width (a diverged controller the guard has not
        # condemned yet must not rewrite the far-queue boundaries)
        alpha = float(decision.alpha_used)
        if (
            not self.fallback
            and self.iterations % params.refresh_period == 0
            and np.isfinite(alpha)
            and alpha > 0
        ):
            partitions.refresh_boundaries(controller.setpoint, alpha)

        self.frontier = near
        drains = 0
        if self.frontier.size == 0 and partitions.total():
            self.frontier, self.lower, self.split, drains, scanned = _drain(
                partitions,
                dist,
                advanced_at,
                self.lower,
                self.split,
                self._fallback_delta if self.fallback else controller.delta,
                params.delta_min,
            )
            far_scanned += scanned
            # the next X^(1) was produced by draining, not by delta_change:
            # it would mislabel the BISECT-MODEL sample
            if not self.fallback:
                controller.invalidate_pending()

        self._m_iterations.inc()
        self._m_relaxations.inc(adv.relaxations)
        self._m_frontier.observe(x1)
        self._m_parallelism.observe(adv.x2)
        if moved_to_far:
            self._m_to_far.inc(moved_to_far)
        if moved_from_far:
            self._m_from_far.inc(moved_from_far)
        if far_scanned:
            self._m_far_scanned.inc(far_scanned)
        if drains:
            self._m_drains.inc(drains)
        if self._events.enabled:
            self._events.emit(
                {
                    "type": "iteration",
                    "k": self.iterations - 1,
                    "x1": x1,
                    "x2": adv.x2,
                    "x3": x3,
                    "x4": x4,
                    "delta": decision.delta,
                    "far_size": partitions.total(),
                    "d": controller.d,
                    "alpha": controller.alpha,
                }
            )

        now = float(controller.seconds)
        record = IterationRecord(
            k=self.iterations - 1,
            x1=x1,
            x2=adv.x2,
            x3=x3,
            x4=x4,
            delta=decision.delta,
            split=self.split,
            far_size=partitions.total(),
            drains=drains,
            moved_from_far=moved_from_far,
            moved_to_far=moved_to_far,
            far_scanned=far_scanned,
            d_estimate=controller.d,
            alpha_estimate=controller.alpha,
            controller_seconds=now - self._controller_prev_seconds,
        )
        self._controller_prev_seconds = now
        return record

    # ------------------------------------------------------------------
    # divergence fallback
    # ------------------------------------------------------------------
    def _static_decision(self) -> DeltaDecision:
        """The frozen decision used once the controller is benched."""
        return DeltaDecision(
            delta=self._fallback_delta,
            delta_change=0.0,
            alpha_used=float("nan"),
            target_frontier=float("nan"),
            bootstrapped=False,
        )

    def _enter_fallback(self) -> None:
        """Bench the controller; keep the run going as plain near-far.

        The fallback delta is the last decision the watchdog judged
        sane (the initial delta if the very first one diverged) —
        correctness is independent of delta, so the run still ends in
        exact distances, just without self-tuning.
        """
        self.fallback = True
        self.fallback_reason = self.guard.reason
        self._fallback_delta = self.guard.last_good_delta
        self._m_fallbacks.inc()
        if self._events.enabled:
            self._events.emit(
                {
                    "type": "controller_fallback",
                    "k": self.iterations - 1,
                    "reason": self.fallback_reason,
                    "fallback_delta": self._fallback_delta,
                }
            )

    def run(self, trace: RunTrace | None = None) -> SSSPResult:
        """Drive to completion, appending records to ``trace`` if given."""
        params = self.params
        while not self.done:
            record = self.step()
            if trace is not None and record is not None:
                trace.append(record)
            if params.max_iterations and self.iterations >= params.max_iterations:
                break
        result = self.result()
        if self._events.enabled:
            self._events.emit(
                {
                    "type": "run_end",
                    "iterations": result.iterations,
                    "relaxations": result.relaxations,
                    "reached": result.num_reached,
                }
            )
        return result

    def result(self) -> SSSPResult:
        """The (current) distances packaged as an :class:`SSSPResult`."""
        return SSSPResult(
            dist=self.dist,
            source=self.source,
            iterations=self.iterations,
            relaxations=self.relaxations,
            algorithm="adaptive-nearfar",
            extra={
                "setpoint": self.params.setpoint,
                "final_setpoint": self.controller.setpoint,
                "initial_delta": self.initial_delta,
                "final_delta": (
                    self._fallback_delta if self.fallback else self.controller.delta
                ),
                "d": self.controller.d,
                "alpha": self.controller.alpha,
                "controller_seconds": self.controller.seconds,
                "controller_fallback": self.fallback,
                "fallback_reason": self.fallback_reason,
            },
        )


def _pull_from_far(
    partitions: FarQueuePartitions | FlatFarQueue,
    near: np.ndarray,
    dist: np.ndarray,
    advanced_at: np.ndarray,
    split: float,
) -> Tuple[np.ndarray, int, int]:
    """Move live far-queue vertices with dist < split into the frontier.

    Pulled entries are re-validated: stale copies (already advanced at
    their current distance) are discarded; entries still at or beyond
    the split are re-inserted.  Returns ``(frontier, moved, scanned)``
    where ``scanned`` is the number of entries the range query had to
    touch (the cost the partitioned queue exists to minimise).
    """
    pulled = partitions.extract_below(split)
    if pulled.size == 0:
        return near, 0, 0
    scanned = int(pulled.size)
    pulled = np.unique(pulled)
    live = pulled[dist[pulled] < advanced_at[pulled]]
    inside = live[dist[live] < split]
    outside = live[dist[live] >= split]
    if outside.size:
        partitions.insert(outside, dist[outside])
    if inside.size == 0:
        return near, 0, scanned
    merged = np.union1d(near, inside) if near.size else inside
    return merged, int(inside.size), scanned


def _drain(
    partitions: FarQueuePartitions | FlatFarQueue,
    dist: np.ndarray,
    advanced_at: np.ndarray,
    lower: float,
    split: float,
    delta: float,
    delta_min: float,
) -> Tuple[np.ndarray, float, float, int, int]:
    """Advance the window until the far queue yields a non-empty frontier.

    Empty distance ranges are jumped over (probing from the first
    occupied partition), so progress is O(live far entries) even when
    the controller has driven delta very small.  Each loop round either
    produces a frontier or permanently discards stale entries, so the
    loop terminates.  Returns the scanned-entry count alongside the
    window state for kernel-cost accounting.
    """
    step = max(delta, delta_min)
    drains = 0
    scanned = 0
    frontier = _EMPTY
    while partitions.total():
        drains += 1
        probe = max(split, partitions.min_occupied_lower()) + step
        pulled = partitions.extract_below(probe)
        if pulled.size == 0:  # defensive: cannot happen while total() > 0
            break
        scanned += int(pulled.size)
        pulled = np.unique(pulled)
        live = pulled[dist[pulled] < advanced_at[pulled]]
        if live.size == 0:
            continue  # only stale duplicates: dropped, total() shrank
        d_live = dist[live]
        new_split = max(probe, float(d_live.min()) + step)
        inside_mask = d_live < new_split
        outside = live[~inside_mask]
        if outside.size:
            partitions.insert(outside, dist[outside])
        lower, split = split, new_split
        frontier = live[inside_mask]
        break
    return frontier, lower, split, drains, scanned
