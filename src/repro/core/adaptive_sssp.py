"""The self-tuning near+far SSSP (paper Section 4).

Identical four-stage structure to the baseline
:func:`repro.sssp.nearfar.nearfar_sssp`, with two changes, exactly as
the paper describes:

1. delta is dynamic — the :class:`~repro.core.controller.SetpointController`
   recomputes it every iteration (Eq. 6) so the advance workload
   converges to the parallelism set-point ``P``;
2. the bisect-far-queue stage is replaced by a **rebalancer** that
   moves vertices between the frontier and the (partitioned) far queue
   whenever delta changes: delta grew -> pull far vertices inside the
   widened window; delta shrank -> postpone frontier vertices that fell
   outside.

Correctness does not depend on the controller: near+far is
label-correcting, so any delta schedule yields exact distances as long
as improved vertices are always re-enqueued and far entries are only
dropped when their out-edges were already relaxed at their current
distance.  The implementation (in :mod:`repro.core.stepwise`) enforces
the latter exactly with an ``advanced_at`` array (the distance each
vertex had when last advanced) instead of the window-based staleness
argument the fixed-delta baseline can use.

This module holds the run configuration (:class:`AdaptiveParams`,
including the ablation switches) and the one-call entry point
:func:`adaptive_sssp`; iteration-stepped execution for outer control
loops lives in :class:`repro.core.stepwise.AdaptiveNearFarStepper`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.controller import SetpointController
from repro.core.stepwise import AdaptiveNearFarStepper
from repro.graph.csr import CSRGraph
from repro.instrument.trace import RunTrace
from repro.sssp.result import SSSPResult

__all__ = ["AdaptiveParams", "adaptive_sssp"]


@dataclass(frozen=True)
class AdaptiveParams:
    """Configuration of the self-tuning algorithm.

    Parameters
    ----------
    setpoint:
        ``P``, the target available parallelism (advance workload per
        iteration).  The paper argues this is the natural user-facing
        knob: it depends on the hardware (see
        :func:`repro.core.setpoint.setpoint_menu`), not on the graph.
    initial_delta:
        Starting delta; defaults to the average edge weight.
    gain, max_step_fraction, bootstrap_updates:
        Passed through to :class:`~repro.core.controller.ControllerConfig`.
    refresh_period:
        Far-queue partition boundaries are refreshed (Eq. 7) every this
        many iterations (1 = every iteration, as in the paper).
    max_iterations:
        Safety valve for tests (0 = unlimited).
    use_bootstrap:
        Ablation: disable the Eq. 8 bootstrap (trust the learned α
        from the first iteration).
    use_partitions:
        Ablation: replace the Section-4.6 partitioned far queue with a
        flat one (every range query scans everything).
    sgd_mode:
        Ablation: ``'adaptive'`` = the paper's Algorithm 1;
        ``'fixed'`` = damped-Newton steps with a constant rate.
    use_guard:
        Run the divergence watchdog
        (:class:`repro.resilience.guard.DivergenceGuard`): when the
        learned controller emits a NaN/runaway delta or falls into a
        limit cycle, the run degrades to plain near-far with the
        last-good static delta instead of stalling.  Distances stay
        exact either way; the guard only protects termination time.
    guard_window:
        Oscillation-detection window of the watchdog (decisions).
    """

    setpoint: float
    initial_delta: float | None = None
    delta_min: float = 1e-9
    delta_max: float = float("inf")
    gain: float = 1.0
    max_step_fraction: float = 4.0
    bootstrap_updates: int = 5
    refresh_period: int = 1
    max_iterations: int = 0
    use_bootstrap: bool = True
    use_partitions: bool = True
    sgd_mode: str = "adaptive"
    use_guard: bool = True
    guard_window: int = 8

    def __post_init__(self) -> None:
        if self.setpoint <= 0:
            raise ValueError("setpoint must be positive")
        if self.initial_delta is not None and self.initial_delta <= 0:
            raise ValueError("initial_delta must be positive")
        if self.refresh_period < 1:
            raise ValueError("refresh_period must be >= 1")
        if self.max_iterations < 0:
            raise ValueError("max_iterations must be >= 0")
        if self.sgd_mode not in ("adaptive", "fixed"):
            raise ValueError("sgd_mode must be 'adaptive' or 'fixed'")
        if self.guard_window < 3:
            raise ValueError("guard_window must be >= 3")


def adaptive_sssp(
    graph: CSRGraph,
    source: int,
    params: AdaptiveParams,
    *,
    collect_trace: bool = True,
) -> Tuple[SSSPResult, RunTrace, SetpointController]:
    """Run the self-tuning near+far SSSP to completion.

    Returns the exact shortest-path result, the per-iteration trace
    (with controller state columns filled in), and the controller
    itself (exposing the learned ``d``/``α`` and the cumulative
    controller overhead in seconds, §5.2).
    """
    stepper = AdaptiveNearFarStepper(graph, source, params)
    trace = RunTrace(
        algorithm="adaptive-nearfar",
        graph_name=graph.name,
        source=source,
        meta={
            "setpoint": params.setpoint,
            "initial_delta": stepper.initial_delta,
            "graph_fingerprint": graph.fingerprint(),
        },
    )
    result = stepper.run(trace if collect_trace else None)
    return result, trace, stepper.controller
