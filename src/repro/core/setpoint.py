"""Parallelism set-point menus (paper Section 4, "Choosing P").

The paper argues the set-point is easier to choose than delta because
it is "a function primarily of available hardware resources, so it is
possible to create an input-independent 'menu' of P values beforehand
... based on, for instance, the number of processing elements or the
power required per processing element."

These helpers build exactly that menu from a
:class:`~repro.gpusim.device.DeviceSpec`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpusim.device import DeviceSpec

__all__ = ["setpoint_menu", "setpoint_for_utilization", "PAPER_SETPOINTS"]

# The set-points the paper actually evaluates (Fig. 5-7): Cal uses
# {10k, 20k, 40k}; the Wiki discussion quotes P = 600k.
PAPER_SETPOINTS = {
    "cal": [10_000, 20_000, 40_000],
    "wiki": [150_000, 300_000, 600_000],
}


def setpoint_for_utilization(device: "DeviceSpec", occupancy: float = 1.0) -> float:
    """P that keeps every core busy at the given occupancy multiple.

    A GPU hides latency by oversubscribing cores with threads; an
    occupancy of ``k`` means ``k`` work items in flight per core.  The
    advance workload (edges) maps one item per thread, so
    ``P = cores * k``.
    """
    if occupancy <= 0:
        raise ValueError("occupancy must be positive")
    return float(device.num_cores * occupancy)


def setpoint_menu(
    device: "DeviceSpec",
    occupancies: List[float] | None = None,
) -> List[float]:
    """An input-independent menu of set-points for ``device``.

    Default occupancy ladder spans "just saturated" (x8 items per
    core, enough to hide memory latency) through heavy oversubscription
    (x256, where extra parallelism only buys redundant work).
    """
    if occupancies is None:
        occupancies = [8.0, 16.0, 32.0, 64.0, 128.0, 256.0]
    menu = [setpoint_for_utilization(device, occ) for occ in occupancies]
    if sorted(menu) != menu:
        menu.sort()
    return menu
