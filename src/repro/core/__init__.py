"""The paper's contribution: a self-tuning near+far SSSP.

* :mod:`~repro.core.sgd` — Algorithm 1: stochastic gradient descent
  with the adaptive learning rate of Schaul et al. ("No More Pesky
  Learning Rates"), plus the fixed-rate ablation optimiser.
* :mod:`~repro.core.advance_model` — ADVANCE-MODEL: learns ``d`` in
  ``X̂^(2) = d · X^(1)`` (the frontier's effective average degree).
* :mod:`~repro.core.bisect_model` — BISECT-MODEL: learns ``α`` in
  ``X̂_{k+1}^(1) = X_k^(4) + α · Δδ_k``.
* :mod:`~repro.core.partitions` — the recursively partitioned far
  queue with Eq. 7 boundary updates (monotonic shifts), and the
  flat-queue ablation.
* :mod:`~repro.core.controller` — the set-point controller: Eq. 6
  delta update with the Eq. 8 bootstrap.
* :mod:`~repro.core.adaptive_sssp` — run configuration and the
  one-call self-tuning near+far SSSP entry point.
* :mod:`~repro.core.stepwise` — iteration-stepped execution for outer
  control loops (e.g. the power-target servo in :mod:`repro.cosim`).
* :mod:`~repro.core.setpoint` — hardware-derived set-point menus.
"""

from repro.core.adaptive_sssp import AdaptiveParams, adaptive_sssp
from repro.core.advance_model import AdvanceModel
from repro.core.bisect_model import BisectModel
from repro.core.controller import ControllerConfig, SetpointController
from repro.core.partitions import FarQueuePartitions, FlatFarQueue
from repro.core.setpoint import setpoint_menu, setpoint_for_utilization
from repro.core.sgd import AdaptiveSGD, FixedRateSGD
from repro.core.stepwise import AdaptiveNearFarStepper

__all__ = [
    "AdaptiveNearFarStepper",
    "AdaptiveParams",
    "AdaptiveSGD",
    "AdvanceModel",
    "BisectModel",
    "ControllerConfig",
    "FarQueuePartitions",
    "FixedRateSGD",
    "FlatFarQueue",
    "SetpointController",
    "adaptive_sssp",
    "setpoint_for_utilization",
    "setpoint_menu",
]
