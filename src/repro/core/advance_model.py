"""ADVANCE-MODEL (paper Section 4.2).

Learns the linear model ``X̂_k^(2) = d · X_k^(1)`` online: ``d`` is an
estimate of the average out-degree of frontier vertices.  Fitted by
minimising the squared error with Algorithm 1 (adaptive-rate SGD):

    ∇_d  = −2 (X^(2) − d·X^(1)) X^(1)
    ∇²_d =  2 (X^(1))²

Given the parallelism set-point ``P``, the model inverts to the target
frontier size of Eq. 3: ``X̂^(1) = P / d``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sgd import AdaptiveSGD, FixedRateSGD, make_sgd

__all__ = ["AdvanceModel"]


@dataclass
class AdvanceModel:
    """Online estimator of the frontier's effective average degree.

    Parameters
    ----------
    initial_d:
        Seed value for ``d``; the graph's global average degree is a
        good choice when known, 1.0 otherwise.
    d_min:
        Positivity floor — ``d`` divides the set-point in Eq. 3, so it
        must stay strictly positive.
    sgd_mode:
        ``'adaptive'`` for the paper's Algorithm 1, ``'fixed'`` for the
        fixed-rate ablation.
    """

    initial_d: float = 1.0
    d_min: float = 1e-3
    sgd_mode: str = "adaptive"
    sgd: AdaptiveSGD | FixedRateSGD = field(init=False)

    def __post_init__(self) -> None:
        if self.initial_d <= 0:
            raise ValueError("initial_d must be positive")
        self.sgd = make_sgd(self.sgd_mode, float(self.initial_d))

    @property
    def d(self) -> float:
        return max(self.sgd.value, self.d_min)

    @property
    def updates(self) -> int:
        return self.sgd.updates

    def observe(self, x1: int, x2: int) -> None:
        """Algorithm-1 step from the true (X^(1), X^(2)) of an iteration."""
        if x1 < 0 or x2 < 0:
            raise ValueError("stage workloads must be non-negative")
        if x1 == 0:
            return  # an empty frontier carries no degree information
        x1f, x2f = float(x1), float(x2)
        residual = x2f - self.sgd.value * x1f
        grad = -2.0 * residual * x1f
        hess = 2.0 * x1f * x1f
        self.sgd.update(grad, hess)
        if self.sgd.value < self.d_min:
            self.sgd.value = self.d_min

    def predict(self, x1: int) -> float:
        """``X̂^(2)`` for a frontier of size ``x1``."""
        return self.d * float(x1)

    def target_frontier(self, setpoint: float) -> float:
        """Eq. 3: the frontier size whose advance output meets the set-point."""
        if setpoint <= 0:
            raise ValueError("setpoint must be positive")
        return setpoint / self.d
