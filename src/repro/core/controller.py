"""The set-point controller (paper Section 4, Figure 4).

Closes the loop around the near+far stages: it watches the workload
counters ``X^(1)``, ``X^(2)``, ``X^(4)`` of each iteration, keeps the
ADVANCE-MODEL and BISECT-MODEL updated, and emits the per-iteration
delta adjustment ``Δδ_k`` (Eq. 6):

    δ_{k+1} = δ_k + (P/d − X_k^(4)) / α

During the first iterations — before the BISECT-MODEL converges
(paper: ~5 updates) — α comes from the Eq. 8 bootstrap built from the
current window width and the far-queue partition occupancy instead of
the learned model.

The controller is engine-agnostic: it sees only counters and produces
only a delta.  The same object could sit next to a real GPU run, which
is the paper's deployment (controller on the CPU, kernels on the GPU).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.advance_model import AdvanceModel
from repro.core.bisect_model import BisectModel
from repro.obs import context as obs
from repro.obs.spans import SpanRecorder

__all__ = ["ControllerConfig", "SetpointController", "DeltaDecision"]


@dataclass(frozen=True)
class ControllerConfig:
    """Controller tuning knobs.

    Parameters
    ----------
    setpoint:
        ``P`` — the desired available parallelism (advance workload).
    delta_min:
        Lower clamp for δ; must stay positive for the window to move.
    delta_max:
        Upper clamp for δ (``inf`` disables).
    max_step_fraction:
        A single Δδ may not exceed this multiple of the current δ —
        the paper's "reduce overshoots and undershoots" concern,
        expressed as a slew-rate limit.
    gain:
        Loop gain on Eq. 6 (1.0 = the paper's update verbatim).
    bootstrap_updates:
        BISECT-MODEL updates required before trusting the learned α
        (paper: converged "after about 5 iterations").
    use_bootstrap:
        Ablation switch: when false, the Eq. 8 bootstrap is disabled
        and the (unconverged) learned α is trusted from iteration one.
    sgd_mode:
        ``'adaptive'`` (Algorithm 1) or ``'fixed'`` (ablation).
    """

    setpoint: float
    delta_min: float = 1e-9
    delta_max: float = float("inf")
    max_step_fraction: float = 4.0
    gain: float = 1.0
    bootstrap_updates: int = 5
    use_bootstrap: bool = True
    sgd_mode: str = "adaptive"

    def __post_init__(self) -> None:
        if self.setpoint <= 0:
            raise ValueError("setpoint must be positive")
        if self.delta_min <= 0:
            raise ValueError("delta_min must be positive")
        if self.delta_max < self.delta_min:
            raise ValueError("delta_max must be >= delta_min")
        if self.max_step_fraction <= 0:
            raise ValueError("max_step_fraction must be positive")
        if self.gain <= 0:
            raise ValueError("gain must be positive")
        if self.sgd_mode not in ("adaptive", "fixed"):
            raise ValueError("sgd_mode must be 'adaptive' or 'fixed'")


@dataclass(frozen=True)
class DeltaDecision:
    """What the controller decided for the next iteration."""

    delta: float
    delta_change: float
    alpha_used: float
    target_frontier: float
    bootstrapped: bool


@dataclass
class _PendingObservation:
    """BISECT-MODEL training sample awaiting its X^(1)_next label."""

    x4: int
    delta_change: float


class SetpointController:
    """Online-learning delta controller for the near+far algorithm."""

    def __init__(
        self,
        config: ControllerConfig,
        initial_delta: float,
        *,
        initial_d: float = 1.0,
        initial_alpha: float = 1.0,
    ):
        if initial_delta <= 0:
            raise ValueError("initial_delta must be positive")
        self.config = config
        # the live set-point: initialised from the config but mutable,
        # so an outer loop (e.g. the power-target servo of
        # repro.cosim) can retarget the controller mid-run
        self.setpoint = config.setpoint
        self.delta = min(max(initial_delta, config.delta_min), config.delta_max)
        self.advance_model = AdvanceModel(
            initial_d=initial_d, sgd_mode=config.sgd_mode
        )
        self.bisect_model = BisectModel(
            initial_alpha=initial_alpha,
            convergence_updates=config.bootstrap_updates,
            sgd_mode=config.sgd_mode,
        )
        self._pending: _PendingObservation | None = None
        # span-based controller CPU accounting (§5.2 overhead): always
        # on, because the overhead *is* a result the paper reports
        self.spans = SpanRecorder()
        self.decisions: int = 0
        # optional metrics fan-out (no-op unless a registry is active)
        reg = obs.get_registry()
        self._m_plan = reg.timer("controller.plan_seconds")
        self._m_decisions = reg.counter("controller.decisions")

    # ------------------------------------------------------------------
    # observation hooks (called by the algorithm around each stage)
    # ------------------------------------------------------------------
    def begin_iteration(self, x1: int) -> None:
        """Label delivery: X^(1) of this iteration trains the BISECT-MODEL.

        The pending (X^(4), Δδ) pair from the previous iteration predicted
        this X^(1); now that it is observed, run the Algorithm-1 step.
        """
        with self.spans.span("begin_iteration"):
            if self._pending is not None:
                self.bisect_model.observe(
                    self._pending.x4, self._pending.delta_change, x1
                )
                self._pending = None

    def observe_advance(self, x1: int, x2: int) -> None:
        """ADVANCE-MODEL training step from the true (X^(1), X^(2))."""
        with self.spans.span("observe_advance"):
            self.advance_model.observe(x1, x2)

    def invalidate_pending(self) -> None:
        """Drop the pending BISECT-MODEL sample.

        Called when the next frontier was produced by a far-queue drain
        rather than by the rebalancer's Δδ — the linear model of Eq. 4
        does not describe that transition, so the label would be noise.
        """
        self._pending = None

    # ------------------------------------------------------------------
    # decision
    # ------------------------------------------------------------------
    def plan(
        self,
        x4: int,
        *,
        window_lower: float,
        window_split: float,
        far_total: int,
        far_partition_size: int,
        far_partition_upper: float,
    ) -> DeltaDecision:
        """Eq. 6: compute δ_{k+1} from X^(4) and the learned models.

        Parameters
        ----------
        x4:
            Frontier size entering the rebalancer.
        window_lower, window_split:
            The current near window ``[L, S)``; ``S − L`` is the live δ.
        far_total:
            Total far-queue occupancy.  Growing delta has no authority
            when the far queue is empty — there is nothing to pull into
            the frontier — so the controller holds delta in that case
            (and skips the BISECT-MODEL sample, which would otherwise
            teach a spurious α ≈ 0).
        far_partition_size, far_partition_upper:
            Occupancy and upper bound of the current far-queue
            partition, feeding the Eq. 8 bootstrap.
        """
        sp = self.spans.span("plan")
        with sp:
            decision = self._plan(
                x4,
                window_lower=window_lower,
                window_split=window_split,
                far_total=far_total,
                far_partition_size=far_partition_size,
                far_partition_upper=far_partition_upper,
            )
        self.decisions += 1
        self._m_plan.observe(sp.elapsed)
        self._m_decisions.inc()
        return decision

    def _plan(
        self,
        x4: int,
        *,
        window_lower: float,
        window_split: float,
        far_total: int,
        far_partition_size: int,
        far_partition_upper: float,
    ) -> DeltaDecision:
        cfg = self.config
        target_x1 = self.advance_model.target_frontier(self.setpoint)

        if far_total == 0 and float(x4) <= target_x1:
            # under target with an empty far queue: the knob is inert
            self._pending = None
            return DeltaDecision(
                delta=self.delta,
                delta_change=0.0,
                alpha_used=self.bisect_model.alpha,
                target_frontier=target_x1,
                bootstrapped=not self.bisect_model.converged,
            )

        bootstrapped = cfg.use_bootstrap and not self.bisect_model.converged
        if bootstrapped:
            alpha = self._bootstrap_alpha(
                x4,
                target_x1,
                window_lower=window_lower,
                window_split=window_split,
                far_partition_size=far_partition_size,
                far_partition_upper=far_partition_upper,
            )
        else:
            alpha = self.bisect_model.alpha

        raw_change = cfg.gain * (target_x1 - float(x4)) / alpha

        # multiplicative slew-rate limit: one iteration may grow delta by
        # at most (1 + f)x and shrink it by at most 1/(1 + f)x, so delta
        # can never collapse to zero (or overshoot to infinity) in one
        # bad step; then clamp into the configured box
        grow_cap = self.delta * (1.0 + cfg.max_step_fraction)
        shrink_cap = self.delta / (1.0 + cfg.max_step_fraction)
        new_delta = min(max(self.delta + raw_change, shrink_cap), grow_cap)
        new_delta = min(max(new_delta, cfg.delta_min), cfg.delta_max)
        change = new_delta - self.delta
        self.delta = new_delta

        self._pending = _PendingObservation(x4=x4, delta_change=change)
        return DeltaDecision(
            delta=new_delta,
            delta_change=change,
            alpha_used=alpha,
            target_frontier=target_x1,
            bootstrapped=bootstrapped,
        )

    def _bootstrap_alpha(
        self,
        x4: int,
        target_x1: float,
        *,
        window_lower: float,
        window_split: float,
        far_partition_size: int,
        far_partition_upper: float,
    ) -> float:
        """Eq. 8: density-based α before the BISECT-MODEL converges.

        The paper writes the denominators against δ_k directly; with our
        explicit window ``[L, S)`` the equivalent densities are

        * shrink case (X^(4) >= X̂^(1)):  α ≈ X^(4) / (S − L) — the
          frontier's vertices per unit of distance in the live window;
        * grow case: α ≈ S_i / (B_i − S) — the current far partition's
          vertices per unit of distance beyond the split.
        """
        width = max(window_split - window_lower, self.config.delta_min)
        if float(x4) >= target_x1:
            alpha = float(x4) / width
        else:
            span = far_partition_upper - window_split
            if span > 0 and far_partition_size > 0:
                alpha = float(far_partition_size) / span
            else:
                # empty/exhausted partition: fall back to frontier density
                alpha = max(float(x4), 1.0) / width
        return max(alpha, self.bisect_model.alpha_min)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def seconds(self) -> float:
        """Cumulative controller CPU time (§5.2 overhead), from spans."""
        return self.spans.total_seconds

    @property
    def d(self) -> float:
        return self.advance_model.d

    @property
    def alpha(self) -> float:
        return self.bisect_model.alpha
