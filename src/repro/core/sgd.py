"""Algorithm 1: SGD with an adaptive learning rate (vSGD).

A faithful transcription of the paper's Algorithm 1, which is the
scalar variant of Schaul, Zhang & LeCun, *No More Pesky Learning
Rates* (2012):

.. code-block:: text

    1:  ∇  = grad of this iteration's squared-error term
    2:  ∇² = its second derivative
    3:  ḡ ← (1 − τ⁻¹)·ḡ + τ⁻¹·∇
    4:  v̄ ← (1 − τ⁻¹)·v̄ + τ⁻¹·∇²  (of the *first* derivative, squared)
    5:  h̄ ← (1 − τ⁻¹)·h̄ + τ⁻¹·∇²  (second derivative)
    6:  μ ← ḡ² / (h̄ · v̄)
    7:  τ ← (1 − ḡ²/v̄)·τ + 1
    8:  θ ← θ − μ·∇

Initialisation per the paper: ``τ = (1 + ε)·2``, ``ḡ = 0``, ``h̄ = 1``,
``v̄ = ε``.

The learning rate μ is self-normalising: when the gradient signal is
consistent (ḡ² ≈ v̄) steps approach the Newton step 1/h̄; when it is
noisy (ḡ² ≪ v̄) steps shrink.  The memory constant τ grows while the
signal is noisy and resets toward short memory after large consistent
steps.

Numerical guards (floors on v̄ and h̄, a cap on μ·|∇|) keep the update
finite when counters span many orders of magnitude — frontier sizes
range from 1 to millions, so ∇ can reach 1e13.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AdaptiveSGD", "FixedRateSGD", "make_sgd"]


@dataclass
class AdaptiveSGD:
    """Scalar adaptive-learning-rate SGD (the paper's Algorithm 1).

    Parameters
    ----------
    value:
        Initial parameter value θ₀.
    epsilon:
        The ε of the paper's initialisation.
    max_relative_step:
        Safety clamp: a single update may change θ by at most this
        multiple of ``max(|θ|, step_floor)``.  The paper handles early
        instability at the controller level (Eq. 8 bootstrap); this
        clamp additionally keeps the raw optimiser finite under
        adversarial observation sequences in tests.
    """

    value: float
    epsilon: float = 1e-8
    max_relative_step: float = 10.0
    step_floor: float = 1e-3

    g_bar: float = field(init=False, default=0.0)
    v_bar: float = field(init=False)
    h_bar: float = field(init=False, default=1.0)
    tau: float = field(init=False)
    updates: int = field(init=False, default=0)
    last_mu: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        self.v_bar = self.epsilon
        self.tau = (1.0 + self.epsilon) * 2.0

    def update(self, grad: float, hess: float) -> float:
        """One Algorithm-1 step given this iteration's ∇ and ∇².

        Returns the new parameter value.
        """
        if not (hess >= 0):  # also rejects NaN
            raise ValueError(f"second derivative must be >= 0, got {hess}")
        tinv = 1.0 / max(self.tau, 1.0)

        self.g_bar = (1.0 - tinv) * self.g_bar + tinv * grad
        self.v_bar = (1.0 - tinv) * self.v_bar + tinv * grad * grad
        self.h_bar = (1.0 - tinv) * self.h_bar + tinv * hess

        v = max(self.v_bar, self.epsilon)
        h = max(self.h_bar, self.epsilon)
        mu = (self.g_bar * self.g_bar) / (h * v)
        self.last_mu = mu

        # line 7: adapt the memory constant; ḡ²/v̄ ∈ [0, 1] because the
        # EMA of squares dominates the square of the EMA
        ratio = min(1.0, (self.g_bar * self.g_bar) / v)
        self.tau = (1.0 - ratio) * self.tau + 1.0

        step = mu * grad
        cap = self.max_relative_step * max(abs(self.value), self.step_floor)
        if step > cap:
            step = cap
        elif step < -cap:
            step = -cap
        self.value -= step
        self.updates += 1
        return self.value

    def reset(self, value: float | None = None) -> None:
        """Forget all state (optionally resetting θ)."""
        if value is not None:
            self.value = value
        self.g_bar = 0.0
        self.v_bar = self.epsilon
        self.h_bar = 1.0
        self.tau = (1.0 + self.epsilon) * 2.0
        self.updates = 0
        self.last_mu = 0.0


@dataclass
class FixedRateSGD:
    """Ablation optimiser: damped Newton steps with a *fixed* rate.

    ``θ ← θ − rate · ∇/∇²`` — the obvious alternative to Algorithm 1
    when the curvature is available (it is, for both paper models:
    ∇² = 2x²).  Normalising by the Hessian is necessary because the
    raw gradients span ~12 orders of magnitude with frontier-sized
    observations; without it no single fixed rate is stable.

    Used by the ``sgd_mode='fixed'`` ablation to quantify what the
    adaptive learning rate of Schaul et al. actually buys: the fixed
    rate either reacts slowly (small rate) or chases noise (large
    rate), where Algorithm 1 does both regimes automatically.
    """

    value: float
    rate: float = 0.3
    epsilon: float = 1e-12
    updates: int = field(init=False, default=0)
    last_mu: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if not 0 < self.rate <= 1:
            raise ValueError("rate must be in (0, 1]")

    def update(self, grad: float, hess: float) -> float:
        """One damped Newton step at the fixed rate; returns new θ."""
        if not (hess >= 0):
            raise ValueError(f"second derivative must be >= 0, got {hess}")
        mu = self.rate / max(hess, self.epsilon)
        self.last_mu = mu
        self.value -= mu * grad
        self.updates += 1
        return self.value

    def reset(self, value: float | None = None) -> None:
        """Forget all state (optionally resetting θ)."""
        if value is not None:
            self.value = value
        self.updates = 0
        self.last_mu = 0.0


def make_sgd(mode: str, value: float) -> AdaptiveSGD | FixedRateSGD:
    """Optimiser factory: ``'adaptive'`` (Algorithm 1) or ``'fixed'``."""
    if mode == "adaptive":
        return AdaptiveSGD(value=value)
    if mode == "fixed":
        return FixedRateSGD(value=value)
    raise ValueError(f"unknown sgd mode {mode!r}; expected 'adaptive' or 'fixed'")
