"""Command-line interface.

``python -m repro <command>``:

* ``experiment <id>`` — regenerate a paper artifact (``table1``,
  ``fig1`` … ``fig8``, ``overhead``, ``ablations``, ``kla``,
  ``power-target``, or ``all``) at a chosen scale;
* ``sssp <graph-file>`` — run any of the SSSP algorithms on a graph
  file (DIMACS ``.gr``, MatrixMarket ``.mtx`` or TSV edge list),
  optionally replaying the run on a simulated device;
* ``generate <dataset>`` — write a synthetic Cal/Wiki stand-in to a
  graph file;
* ``info <graph-file>`` — print a graph's Table-1-style statistics;
* ``trace record|show|diff`` — observability: record a run with a
  streamed JSONL event log and metrics summary, inspect a saved
  trace **or a ``.events.jsonl`` event log** (queries, batch
  dispatches, spans), or diff two saved runs (iterations,
  parallelism distribution, controller settling);
* ``serve`` — run a long-lived query engine: JSONL requests from
  stdin (or a file) in, JSONL responses out, with a result cache and
  a worker pool (see the README's *Query service* section);
  ``--metrics FILE --metrics-interval N`` keeps a live metrics
  snapshot on disk for ``repro top``; ``--listen HOST:PORT`` serves
  the same protocol over TCP instead — with catalog sharding
  (``--shards``), admission control (``--max-inflight``,
  ``--deadline-ms``) and HTTP ``GET /metrics`` / ``GET /healthz`` on
  the same port (see ``docs/serving.md``);
* ``loadgen HOST:PORT`` — closed-loop Zipf load generator against a
  ``serve --listen`` endpoint; prints a JSON summary (qps, latency
  percentiles, shed counts) and ``--metrics FILE`` saves it as
  ``bench.net.*`` gauges;
* ``query`` — issue one-shot queries against the graph catalog and
  print the JSONL responses;
* ``metrics <file>`` — summarise a metrics JSON file (``serve
  --metrics`` output or ``benchmarks/results/metrics.json``);
  ``--prometheus`` prints Prometheus text exposition instead;
* ``top <file>`` — live terminal view of a serving session (QPS,
  cache hit rate, latency percentiles, breaker states, pool depth)
  off the file ``serve --metrics-interval`` maintains;
* ``faults`` — chaos drill: run a batch of queries through the engine
  under a seeded fault plan (crashes, hangs, transients, corrupted
  results), verify every answer against Dijkstra, and report retries,
  breaker states and pool health; exits non-zero on any wrong or
  unanswered query;
* ``version`` — report the package version.

``--quiet`` suppresses informational chatter (result lines still
print); ``--verbose`` adds detail, e.g. a metrics snapshot after an
``sssp`` run.  Both are accepted before or after the subcommand.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def _experiment_registry() -> Dict[str, Callable]:
    from repro.experiments import (
        ablations,
        dynamics,
        fig1,
        fig2,
        fig3,
        fig5,
        fig6,
        fig7,
        fig8,
        kla_comparison,
        overhead,
        robustness,
        power_target,
        table1,
    )

    return {
        "table1": table1.main,
        "fig1": fig1.main,
        "fig2": fig2.main,
        "fig3": fig3.main,
        "fig5": fig5.main,
        "fig6": fig6.main,
        "fig7": fig7.main,
        "fig8": fig8.main,
        "overhead": overhead.main,
        "ablations": ablations.main,
        "dynamics": dynamics.main,
        "kla": kla_comparison.main,
        "robustness": robustness.main,
        "power-target": power_target.main,
    }


def _verbosity_parent() -> argparse.ArgumentParser:
    """-q/-v accepted after the subcommand without clobbering the
    top-level values (SUPPRESS: absent flags leave the namespace alone)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "-q", "--quiet", action="store_true", default=argparse.SUPPRESS,
        help="suppress informational output",
    )
    parent.add_argument(
        "-v", "--verbose", action="store_true", default=argparse.SUPPRESS,
        help="extra output (e.g. a metrics snapshot after the run)",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'An Energy-Efficient Single-Source Shortest "
            "Path Algorithm' (IPDPS 2018)"
        ),
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", default=False,
        help="suppress informational output",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", default=False,
        help="extra output (e.g. a metrics snapshot after the run)",
    )
    common = _verbosity_parent()
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser(
        "experiment", parents=[common], help="regenerate a paper artifact"
    )
    exp.add_argument(
        "artifact",
        choices=sorted(_experiment_registry()) + ["all"],
        help="which table/figure to regenerate",
    )
    exp.add_argument("--scale", type=float, default=None, help="dataset scale")

    run = sub.add_parser("sssp", parents=[common], help="run SSSP on a graph file")
    run.add_argument("graph", help="graph file (.gr/.mtx/.tsv, optionally .gz)")
    run.add_argument("--source", type=int, default=None, help="source vertex (default: hub)")
    run.add_argument(
        "--algorithm",
        choices=["dijkstra", "bellman-ford", "delta-stepping", "nearfar", "adaptive", "kla"],
        default="adaptive",
    )
    run.add_argument("--delta", type=float, default=None, help="delta (fixed-delta algorithms)")
    run.add_argument("--setpoint", type=float, default=None, help="P (adaptive)")
    run.add_argument("--k", type=int, default=4, help="asynchrony depth (kla)")
    run.add_argument("--device", choices=["tk1", "tx1"], default=None,
                     help="also replay the run on this simulated device")
    run.add_argument("--save-trace", default=None, help="write the trace JSON here")
    run.add_argument(
        "--backend", default=None,
        help="kernel backend for nearfar (numpy, numba; default: "
        "$REPRO_KERNEL_BACKEND, then numpy)",
    )

    gen = sub.add_parser(
        "generate", parents=[common], help="write a synthetic dataset to a file"
    )
    gen.add_argument("dataset", choices=["cal", "wiki"])
    gen.add_argument("output", help="output path (.gr/.mtx/.tsv)")
    gen.add_argument("--scale", type=float, default=0.02)
    gen.add_argument("--seed", type=int, default=7)

    info = sub.add_parser("info", parents=[common], help="print graph statistics")
    info.add_argument("graph", help="graph file")

    trace = sub.add_parser(
        "trace", parents=[common], help="record/inspect/diff observed runs"
    )
    tsub = trace.add_subparsers(dest="trace_command", required=True)

    rec = tsub.add_parser(
        "record",
        parents=[common],
        help="run with live observability: JSONL events + metrics + trace",
    )
    rec.add_argument("graph", help="graph file (.gr/.mtx/.tsv, optionally .gz)")
    rec.add_argument(
        "--algorithm", choices=["adaptive", "nearfar"], default="adaptive"
    )
    rec.add_argument("--source", type=int, default=None)
    rec.add_argument("--setpoint", type=float, default=None, help="P (adaptive)")
    rec.add_argument("--delta", type=float, default=None, help="delta (nearfar)")
    rec.add_argument(
        "--backend", default=None,
        help="kernel backend for nearfar (numpy, numba; default: "
        "$REPRO_KERNEL_BACKEND, then numpy)",
    )
    rec.add_argument(
        "-o", "--out", default="run",
        help="output base path: writes <out>.trace.json, <out>.events.jsonl, "
        "<out>.metrics.json (default: run)",
    )

    show = tsub.add_parser(
        "show", parents=[common],
        help="summarise a saved trace or a .events.jsonl event log",
    )
    show.add_argument(
        "trace_file",
        help="trace JSON written by record/--save-trace, or a JSONL "
        "event log (trace record / serve --events output)",
    )

    diff = tsub.add_parser(
        "diff", parents=[common], help="compare two saved traces"
    )
    diff.add_argument("trace_a", help="first trace JSON")
    diff.add_argument("trace_b", help="second trace JSON")

    def add_service_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--graph-file",
            action="append",
            default=[],
            metavar="NAME=PATH",
            help="register a graph file under NAME (repeatable)",
        )
        p.add_argument(
            "--scale", type=float, default=0.02,
            help="scale of the built-in cal/wiki catalog graphs",
        )
        p.add_argument(
            "--workers", type=int, default=None, help="executor worker count"
        )
        p.add_argument(
            "--pool-mode", choices=["thread", "process"], default="thread",
            help="executor kind (process = CPU-parallel, picklable tasks)",
        )
        p.add_argument(
            "--cache-size", type=int, default=128,
            help="LRU result-cache capacity (0 disables caching)",
        )
        p.add_argument(
            "--timeout", type=float, default=None,
            help="per-query timeout in seconds",
        )
        p.add_argument(
            "--retries", type=int, default=3,
            help="attempts per query on transient failures (1 disables)",
        )
        p.add_argument(
            "--max-batch", type=int, default=16,
            help="coalesce up to N concurrent same-corridor queries "
            "into one batched kernel call (1 disables)",
        )
        p.add_argument(
            "--backend", default=None,
            help="default kernel backend for nearfar queries (numpy, "
            "numba; default: $REPRO_KERNEL_BACKEND, then numpy)",
        )
        p.add_argument(
            "--breaker-threshold", type=int, default=5,
            help="consecutive failures before a (graph, algorithm) "
            "circuit opens (0 disables)",
        )
        p.add_argument(
            "--breaker-reset", type=float, default=30.0,
            help="seconds an open circuit waits before a half-open probe",
        )
        p.add_argument(
            "--fault-rate", type=float, default=0.0,
            help="inject faults into this fraction of pool tasks (chaos)",
        )
        p.add_argument(
            "--fault-kinds", default="transient,crash,hang",
            help="comma list from: transient, crash, hang, corrupt, poolbreak",
        )
        p.add_argument(
            "--fault-seed", type=int, default=0,
            help="seed of the deterministic fault plan",
        )
        p.add_argument(
            "--fault-hang", type=float, default=0.25,
            help="seconds an injected hang sleeps",
        )

    serve = sub.add_parser(
        "serve",
        parents=[common],
        help="serve JSONL SSSP queries from stdin or a file",
    )
    add_service_options(serve)
    serve.add_argument(
        "--input", default=None,
        help="read requests from this file instead of stdin",
    )
    serve.add_argument(
        "--events", default=None,
        help="stream query_start/query_end events to this JSONL file",
    )
    serve.add_argument(
        "--metrics", default=None,
        help="write a metrics snapshot to this JSON file on exit",
    )
    serve.add_argument(
        "--metrics-interval", type=float, default=0.0,
        help="also rewrite the --metrics file every N seconds while "
        "serving (0 disables; feeds 'repro top')",
    )
    serve.add_argument(
        "--sample-rate", type=float, default=1.0,
        help="fraction of query lines whose trace ships spans/events "
        "(deterministic head sampling; metrics always count)",
    )
    serve.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="serve the JSONL protocol over TCP instead of stdin; the "
        "same port answers HTTP GET /metrics and /healthz",
    )
    serve.add_argument(
        "--shards", type=int, default=1,
        help="partition the catalog across N independent engines "
        "(routes by graph name; works on stdin and --listen)",
    )
    serve.add_argument(
        "--shard-mode", choices=["thread", "process"], default="thread",
        help="where each shard engine lives: a dispatcher thread in "
        "this process ('thread') or a separate supervised worker "
        "process with OS-level crash isolation ('process')",
    )
    serve.add_argument(
        "--heartbeat-ms", type=float, default=1000.0,
        help="worker heartbeat interval (process mode); a worker "
        "silent for ~4 intervals is declared dead and respawned",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=256,
        help="admission bound on in-flight queries per shard; excess "
        "is shed with in-band 'overloaded' errors (--listen mode)",
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=0.0,
        help="shed requests whose predicted queue wait exceeds this "
        "budget instead of queuing them (0 disables; --listen mode)",
    )
    serve.add_argument(
        "--drain-limit", type=int, default=64,
        help="max queries one shard dispatcher cycle merges into a "
        "single engine call",
    )
    serve.add_argument(
        "--failover", choices=["failfast", "adopt", "off"],
        default="failfast",
        help="shard supervision policy (--listen mode): restart dead "
        "shards and, while one is down, fast-fail its graphs "
        "('failfast') or re-adopt them onto survivors ('adopt'); "
        "'off' disables supervision entirely",
    )
    serve.add_argument(
        "--restart-budget", type=int, default=5,
        help="restarts one shard may consume before the supervisor "
        "declares it permanently failed",
    )
    serve.add_argument(
        "--stall-ms", type=float, default=2000.0,
        help="queue-age watchdog: a shard with pending work and no "
        "dispatcher heartbeat for this long is declared hung and "
        "replaced",
    )
    serve.add_argument(
        "--drain-ms", type=float, default=500.0,
        help="shutdown drain deadline: in-flight requests get this "
        "long to finish before the listener force-closes (SIGTERM "
        "takes the same path)",
    )

    loadgen = sub.add_parser(
        "loadgen",
        parents=[common],
        help="closed-loop load generator against a serve --listen port",
    )
    loadgen.add_argument(
        "target", metavar="HOST:PORT",
        help="address of a running 'repro serve --listen' endpoint",
    )
    loadgen.add_argument(
        "--connections", type=int, default=8,
        help="concurrent closed-loop connections",
    )
    loadgen.add_argument(
        "--duration", type=float, default=5.0,
        help="seconds to keep the load on",
    )
    loadgen.add_argument(
        "--zipf", type=float, default=1.2,
        help="Zipf skew of source ids (values <= 1 mean uniform)",
    )
    loadgen.add_argument(
        "--batch", type=int, default=1,
        help="sources per request (batched 'sources' arrays when > 1)",
    )
    loadgen.add_argument(
        "--graph", default=None,
        help="pin all queries to one catalog graph id",
    )
    loadgen.add_argument(
        "--algorithm", default=None,
        help="algorithm wire name (server default when omitted)",
    )
    loadgen.add_argument(
        "--seed", type=int, default=7, help="source-draw RNG seed"
    )
    loadgen.add_argument(
        "--metrics", default=None,
        help="write bench.net.* gauges plus the summary to this JSON file",
    )

    query = sub.add_parser(
        "query",
        parents=[common],
        help="issue one-shot queries against the graph catalog",
    )
    add_service_options(query)
    query.add_argument("graph", help="catalog graph id (cal, wiki, or --graph-file name)")
    query.add_argument(
        "--source", type=int, action="append", default=None,
        help="source vertex (repeatable; default: the max-degree hub)",
    )
    query.add_argument(
        "--sources", default=None,
        help="comma-separated source list, e.g. 3,17,42 — issued as "
        "one engine batch (coalesced into batched kernel calls)",
    )
    query.add_argument(
        "--algorithm",
        choices=["dijkstra", "bellman-ford", "delta-stepping", "nearfar", "adaptive", "kla"],
        default="adaptive",
    )
    query.add_argument("--delta", type=float, default=None, help="delta (fixed-delta algorithms)")
    query.add_argument("--setpoint", type=float, default=None, help="P (adaptive)")
    query.add_argument("--k", type=int, default=None, help="asynchrony depth (kla)")
    query.add_argument(
        "--repeat", type=int, default=1,
        help="issue each query N times (repeats hit the result cache)",
    )

    metrics = sub.add_parser(
        "metrics",
        parents=[common],
        help="summarise a metrics JSON file (or emit Prometheus text)",
    )
    metrics.add_argument(
        "file",
        help="metrics JSON: serve --metrics output, trace record's "
        "<out>.metrics.json, or benchmarks/results/metrics.json",
    )
    metrics.add_argument(
        "--prometheus", action="store_true",
        help="print Prometheus text exposition instead of a summary",
    )

    top = sub.add_parser(
        "top",
        parents=[common],
        help="live serving dashboard off a serve --metrics-interval file",
    )
    top.add_argument(
        "file", help="the JSON file 'serve --metrics-interval' maintains"
    )
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between refreshes (default 2)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print a single frame and exit (no screen clearing)",
    )

    faults = sub.add_parser(
        "faults",
        parents=[common],
        help="chaos drill: query under injected faults, verify, report",
    )
    add_service_options(faults)
    faults.add_argument(
        "--queries", type=int, default=100,
        help="how many queries the drill issues",
    )
    faults.add_argument(
        "--algorithm",
        choices=["dijkstra", "bellman-ford", "delta-stepping", "nearfar", "adaptive", "kla"],
        default="dijkstra",
        help="algorithm the drill queries run",
    )
    faults.add_argument(
        "--graph", default="cal",
        help="catalog graph id the drill targets (default: cal)",
    )
    faults.add_argument(
        "--no-verify", action="store_true",
        help="skip the per-answer Dijkstra cross-check",
    )

    chaos_net = sub.add_parser(
        "chaos-net",
        parents=[common],
        help="network-tier chaos drill: crash a shard under live "
        "traffic, audit hangs/answers/recovery",
    )
    chaos_net.add_argument(
        "--shards", type=int, default=2,
        help="catalog partitions the drill deployment runs",
    )
    chaos_net.add_argument(
        "--scale", type=float, default=0.005,
        help="synthetic catalog scale (fraction of full node counts)",
    )
    chaos_net.add_argument(
        "--connections", type=int, default=8,
        help="concurrent closed-loop loadgen connections",
    )
    chaos_net.add_argument(
        "--duration", type=float, default=3.0,
        help="seconds of live traffic the drill sustains",
    )
    chaos_net.add_argument(
        "--fault-kind",
        choices=[
            "shard_crash", "dispatcher_hang", "slow_shard", "conn_drop",
            "worker_kill", "worker_oom", "frame_corrupt",
        ],
        default="shard_crash",
        help="which network-tier fault to inject (worker_* and "
        "frame_corrupt need --shard-mode process)",
    )
    chaos_net.add_argument(
        "--shard-mode", choices=["thread", "process"], default="thread",
        help="run the drill deployment with in-process shard threads "
        "or out-of-process shard workers",
    )
    chaos_net.add_argument(
        "--heartbeat-ms", type=float, default=250.0,
        help="worker heartbeat interval for the drill (process mode)",
    )
    chaos_net.add_argument(
        "--crash-at", type=int, default=2,
        help="dispatch cycle (or connection index, for conn_drop) the "
        "fault fires at",
    )
    chaos_net.add_argument(
        "--crash-shard", type=int, default=0,
        help="which shard the dispatcher fault targets",
    )
    chaos_net.add_argument(
        "--failover", choices=["failfast", "adopt"], default="failfast",
        help="degraded-mode policy while the shard is down",
    )
    chaos_net.add_argument(
        "--restart-budget", type=int, default=5,
        help="supervisor restart budget for the drill deployment",
    )
    chaos_net.add_argument(
        "--stall-ms", type=float, default=400.0,
        help="queue-age watchdog threshold for the drill deployment",
    )
    chaos_net.add_argument(
        "--workers", type=int, default=2,
        help="worker threads per shard engine",
    )
    chaos_net.add_argument(
        "--zipf", type=float, default=1.2,
        help="Zipf skew of loadgen source ids",
    )
    chaos_net.add_argument(
        "--seed", type=int, default=7, help="loadgen RNG seed"
    )
    chaos_net.add_argument(
        "--no-verify", action="store_true",
        help="skip the per-answer Dijkstra cross-check",
    )
    chaos_net.add_argument(
        "--metrics", default=None,
        help="write the drill report plus bench.net.* gauges to this "
        "JSON file",
    )

    worker = sub.add_parser(
        "shard-worker",
        parents=[common],
        help="internal: one out-of-process shard engine (spawned by "
        "'serve --shard-mode process'; not for interactive use)",
    )
    worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="parent frame-protocol endpoint to dial back",
    )
    worker.add_argument(
        "--shard", type=int, required=True, help="shard index this worker serves"
    )
    worker.add_argument(
        "--token", required=True,
        help="spawn token echoed in the HELLO frame (pairs child to parent)",
    )
    worker.add_argument(
        "--heartbeat-ms", type=float, default=1000.0,
        help="idle heartbeat interval",
    )

    sub.add_parser("version", parents=[common], help="print the package version")

    return parser


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.config import default_config

    config = default_config(args.scale)
    registry = _experiment_registry()
    names = sorted(registry) if args.artifact == "all" else [args.artifact]
    for name in names:
        registry[name](config)
        print()
    return 0


def _print_metrics_snapshot(snapshot: Dict[str, dict]) -> None:
    print("metrics:")
    for name, data in snapshot.items():
        if data["type"] in ("counter", "gauge"):
            print(f"  {name} = {data['value']:g}")
        else:
            line = (
                f"  {name}: count={data['count']} sum={data['sum']:.6g} "
                f"mean={data['mean']:.6g}"
            )
            if data.get("p50") is not None:
                line += (
                    f" p50={data['p50']:.6g} p95={data['p95']:.6g} "
                    f"p99={data['p99']:.6g}"
                )
            print(line)


def _cmd_sssp(args: argparse.Namespace) -> int:
    from repro.graph.io import load_graph
    from repro.sssp import (
        bellman_ford,
        delta_stepping,
        dijkstra,
        kla_sssp,
        nearfar_sssp,
    )
    from repro.core import AdaptiveParams, adaptive_sssp
    from repro import obs

    graph = load_graph(args.graph)
    source = (
        args.source
        if args.source is not None
        else int(np.argmax(np.diff(graph.indptr)))
    )
    if not args.quiet:
        print(f"{graph!r}, source={source}, algorithm={args.algorithm}")

    registry = obs.MetricsRegistry() if args.verbose else None
    trace = None
    with obs.use(registry=registry):
        if args.algorithm == "dijkstra":
            result = dijkstra(graph, source)
        elif args.algorithm == "bellman-ford":
            result = bellman_ford(graph, source)
        elif args.algorithm == "delta-stepping":
            result = delta_stepping(graph, source, args.delta)
        elif args.algorithm == "nearfar":
            result, trace = nearfar_sssp(
                graph, source, delta=args.delta, backend=args.backend
            )
        elif args.algorithm == "kla":
            result, trace = kla_sssp(graph, source, args.k)
        else:
            setpoint = args.setpoint if args.setpoint is not None else 10_000.0
            result, trace, _ = adaptive_sssp(
                graph, source, AdaptiveParams(setpoint=setpoint)
            )

    finite = result.finite_distances()
    print(
        f"reached {result.num_reached}/{graph.num_nodes} vertices; "
        f"iterations={result.iterations}, relaxations={result.relaxations:,}"
    )
    if finite.size and not args.quiet:
        print(
            f"distance stats: max={finite.max():.4g}, mean={finite.mean():.4g}"
        )

    if trace is not None and args.save_trace:
        from repro.instrument.serialize import save_trace

        path = save_trace(trace, args.save_trace)
        if not args.quiet:
            print(f"trace written to {path}")

    if args.device:
        if trace is None or len(trace) == 0:
            print("(no trace to simulate for this algorithm)")
        else:
            from repro.gpusim import get_device, simulate_run

            with obs.use(registry=registry):
                run = simulate_run(trace, get_device(args.device))
            s = run.summary()
            print(
                f"simulated on {s['device']} ({s['dvfs']}): "
                f"{s['time_ms']} ms, {s['avg_power_w']} W, {s['energy_j']} J"
            )

    if registry is not None:
        _print_metrics_snapshot(registry.snapshot())
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.graph.datasets import cal_like, wiki_like
    from repro.graph.io import write_dimacs, write_edge_list, write_matrix_market

    factory = cal_like if args.dataset == "cal" else wiki_like
    graph = factory(args.scale, seed=args.seed)
    out = args.output
    if out.endswith((".gr", ".gr.gz")):
        write_dimacs(graph, out)
    elif out.endswith((".mtx", ".mtx.gz")):
        write_matrix_market(graph, out)
    else:
        write_edge_list(graph, out)
    if not args.quiet:
        print(f"wrote {graph!r} to {out}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.experiments.report import format_table
    from repro.graph.io import load_graph
    from repro.graph.properties import graph_stats

    graph = load_graph(args.graph)
    stats = graph_stats(graph)
    print(format_table([stats.as_row()]))
    return 0


# ----------------------------------------------------------------------
# service commands
# ----------------------------------------------------------------------
def _service_catalog(args: argparse.Namespace):
    """The catalog for serve/query: built-ins plus --graph-file entries."""
    from repro.service import default_catalog

    catalog = default_catalog(args.scale)
    for spec in args.graph_file:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            raise SystemExit(f"--graph-file expects NAME=PATH, got {spec!r}")
        catalog.register_file(name, path)
    return catalog


def _resilience_kwargs(args: argparse.Namespace, *, default_rate: float = 0.0) -> dict:
    """retry/breaker/fault_plan engine kwargs from the service options."""
    from repro.resilience import BreakerConfig, FaultPlan, RetryPolicy

    rate = args.fault_rate if args.fault_rate > 0 else default_rate
    plan = None
    if rate > 0:
        plan = FaultPlan(
            rate=rate,
            seed=args.fault_seed,
            kinds=FaultPlan.parse_kinds(args.fault_kinds),
            hang_seconds=args.fault_hang,
        )
    return {
        "retry": RetryPolicy(max_attempts=args.retries),
        "breaker": BreakerConfig(
            failure_threshold=args.breaker_threshold,
            reset_seconds=args.breaker_reset,
        ),
        "fault_plan": plan,
    }


def _write_serve_metrics(path: Path, engine, registry, spans) -> None:
    """Rewrite the serve metrics file atomically (schema 2).

    Written whole into a temp file then renamed, so a concurrent
    ``repro top`` never reads a half-written snapshot.
    """
    payload = {
        "schema": 2,
        "ts": time.time(),
        "stats": engine.stats(),
        "health": engine.health(),
        "metrics": registry.snapshot(),
        "spans": [st.as_dict() for st in spans.profile()],
    }
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)


def _cmd_serve(args: argparse.Namespace) -> int:
    import threading

    from repro import obs
    from repro.obs.telemetry import TraceSampler
    from repro.service import QueryEngine, serve_stream

    registry = obs.MetricsRegistry()
    spans = obs.SpanRecorder()
    sink = obs.JsonlSink(args.events) if args.events else None
    sampler = (
        TraceSampler(args.sample_rate) if args.sample_rate < 1.0 else None
    )
    catalog = _service_catalog(args)
    metrics_path = Path(args.metrics) if args.metrics else None
    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    engine_kwargs = dict(
        mode=args.pool_mode,
        max_workers=args.workers,
        timeout=args.timeout,
        cache_size=args.cache_size,
        max_batch=args.max_batch,
        backend=args.backend,
        **_resilience_kwargs(args),
    )
    if args.listen:
        try:
            with obs.use(registry=registry, events=sink, spans=spans):
                return _serve_listen(
                    args, catalog, engine_kwargs, registry, spans,
                    sampler, metrics_path,
                )
        finally:
            if sink is not None:
                sink.close()
    stop_writer = threading.Event()
    writer = None
    try:
        with obs.use(registry=registry, events=sink, spans=spans):
            if args.shards > 1 or args.shard_mode == "process":
                from repro.net import ShardManager

                engine = ShardManager(
                    catalog,
                    shards=args.shards,
                    drain_limit=args.drain_limit,
                    shard_mode=args.shard_mode,
                    heartbeat_ms=args.heartbeat_ms,
                    **engine_kwargs,
                )
            else:
                engine = QueryEngine(catalog, **engine_kwargs)
            with engine:
                if not args.quiet:
                    banner = engine.stats()
                    shard_note = (
                        f", {args.shards} shards" if args.shards > 1 else ""
                    )
                    print(
                        f"serving graphs {banner['graphs']} "
                        f"({banner['pool']['mode']} pool, "
                        f"{banner['pool']['max_workers']} workers"
                        f"{shard_note}, "
                        f"cache {args.cache_size}); one JSON request per line",
                        file=sys.stderr,
                    )
                if metrics_path is not None and args.metrics_interval > 0:

                    def _writer_loop() -> None:
                        while not stop_writer.wait(args.metrics_interval):
                            _write_serve_metrics(
                                metrics_path, engine, registry, spans
                            )

                    writer = threading.Thread(
                        target=_writer_loop,
                        name="serve-metrics-writer",
                        daemon=True,
                    )
                    writer.start()
                if args.input:
                    with open(args.input) as fh:
                        count = serve_stream(
                            engine, fh, sys.stdout, sampler=sampler
                        )
                else:
                    count = serve_stream(
                        engine, sys.stdin, sys.stdout, sampler=sampler
                    )
                stop_writer.set()
                if writer is not None:
                    writer.join(timeout=5.0)
                stats = engine.stats()
                if metrics_path is not None:
                    _write_serve_metrics(metrics_path, engine, registry, spans)
    finally:
        stop_writer.set()
        if sink is not None:
            sink.close()
    if not args.quiet:
        cache = stats["cache"]
        print(
            f"served {count} responses ({stats['queries']} queries, "
            f"cache {cache['hits']} hits / {cache['misses']} misses / "
            f"{cache['evictions']} evictions)",
            file=sys.stderr,
        )
        if metrics_path is not None:
            print(f"metrics written to {metrics_path}", file=sys.stderr)
    if args.verbose:
        _print_metrics_snapshot(registry.snapshot())
    return 0


def _serve_listen(
    args: argparse.Namespace,
    catalog,
    engine_kwargs: dict,
    registry,
    spans,
    sampler,
    metrics_path: Path | None,
) -> int:
    """The ``serve --listen`` path: shards + admission + TCP front-end."""
    import asyncio
    import threading

    from repro.net import (
        AdmissionController,
        NetServer,
        ShardManager,
        ShardSupervisor,
        parse_listen,
    )
    from repro.resilience import RestartPolicy

    host, port = parse_listen(args.listen)
    if args.max_inflight < 0:
        raise SystemExit("--max-inflight must be >= 0")
    if args.restart_budget < 0:
        raise SystemExit("--restart-budget must be >= 0")
    if args.stall_ms <= 0:
        raise SystemExit("--stall-ms must be > 0")
    if args.drain_ms < 0:
        raise SystemExit("--drain-ms must be >= 0")
    admission = AdmissionController(
        max_inflight=args.max_inflight,
        deadline_seconds=(
            args.deadline_ms / 1000.0 if args.deadline_ms > 0 else None
        ),
    )
    engine = ShardManager(
        catalog,
        shards=args.shards,
        admission=admission,
        drain_limit=args.drain_limit,
        shard_mode=args.shard_mode,
        heartbeat_ms=args.heartbeat_ms,
        **engine_kwargs,
    )
    supervisor = None
    if args.failover != "off":
        supervisor = ShardSupervisor(
            engine,
            restart_policy=RestartPolicy(budget=args.restart_budget),
            failover=args.failover,
            stall_seconds=args.stall_ms / 1000.0,
        )
    server = NetServer(engine, host=host, port=port, sampler=sampler)
    stop_writer = threading.Event()
    writer = None

    async def _run() -> None:
        import signal

        await server.start()
        if supervisor is not None:
            supervisor.start()
        bound_host, bound_port = server.address
        if not args.quiet:
            failover_note = (
                f", failover={args.failover} "
                f"(budget {args.restart_budget})"
                if supervisor is not None
                else ", supervision off"
            )
            print(
                f"listening on {bound_host}:{bound_port} "
                f"({len(engine.shards)} {args.shard_mode} shards, "
                f"graphs {engine.graph_ids}, "
                f"max in-flight {admission.max_inflight}/shard"
                f"{failover_note}); "
                "JSONL protocol + HTTP GET /metrics, /healthz",
                file=sys.stderr,
            )
        # explicit handlers: a backgrounded serve in a shell script (CI)
        # inherits SIGINT ignored, and SIGTERM would skip cleanup — both
        # must stop the loop gracefully so final metrics still land
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-Unix loops: Ctrl-C still raises KeyboardInterrupt
        serve_task = asyncio.ensure_future(server.serve_forever())
        stop_task = asyncio.ensure_future(stop.wait())
        done, pending = await asyncio.wait(
            {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
        )
        for task in pending:
            task.cancel()
        await asyncio.gather(*pending, return_exceptions=True)
        # drain before dropping connections: in-flight requests get
        # --drain-ms to flush their responses (SIGTERM lands here too)
        await server.stop(drain_seconds=args.drain_ms / 1000.0)

    try:
        if metrics_path is not None and args.metrics_interval > 0:

            def _writer_loop() -> None:
                while not stop_writer.wait(args.metrics_interval):
                    _write_serve_metrics(metrics_path, engine, registry, spans)

            writer = threading.Thread(
                target=_writer_loop, name="serve-metrics-writer", daemon=True
            )
            writer.start()
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    finally:
        stop_writer.set()
        if writer is not None:
            writer.join(timeout=5.0)
        stats = engine.stats()
        if metrics_path is not None:
            _write_serve_metrics(metrics_path, engine, registry, spans)
        engine.close()
    if not args.quiet:
        print(
            f"served {server.responses_total} responses over "
            f"{server.connections_total} connections "
            f"({stats['queries']} queries, {admission.shed} shed)",
            file=sys.stderr,
        )
        if metrics_path is not None:
            print(f"metrics written to {metrics_path}", file=sys.stderr)
    if args.verbose:
        _print_metrics_snapshot(registry.snapshot())
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from repro import obs
    from repro.net import run_loadgen

    if args.connections < 1:
        raise SystemExit("--connections must be >= 1")
    if args.duration <= 0:
        raise SystemExit("--duration must be > 0")
    if args.batch < 1:
        raise SystemExit("--batch must be >= 1")
    try:
        summary = asyncio.run(
            run_loadgen(
                args.target,
                connections=args.connections,
                duration_seconds=args.duration,
                zipf_a=args.zipf,
                batch=args.batch,
                graph=args.graph,
                algorithm=args.algorithm,
                seed=args.seed,
            )
        )
    except (ConnectionRefusedError, OSError) as exc:
        raise SystemExit(f"cannot reach {args.target}: {exc}")
    except RuntimeError as exc:
        raise SystemExit(str(exc))
    if args.metrics:
        registry = obs.MetricsRegistry()
        latency = summary["latency"]
        registry.gauge("bench.net.qps").set(summary["qps"])
        registry.gauge("bench.net.sent").set(summary["sent"])
        registry.gauge("bench.net.ok").set(summary["ok"])
        registry.gauge("bench.net.shed").set(summary["shed"])
        registry.gauge("bench.net.errors").set(summary["errors"])
        registry.gauge("bench.net.unavailable").set(summary["unavailable"])
        registry.gauge("bench.net.dropped").set(summary["dropped"])
        registry.gauge("bench.net.hung").set(summary["hung"])
        registry.gauge("bench.net.p50_ms").set(latency["p50_ms"])
        registry.gauge("bench.net.p99_ms").set(latency["p99_ms"])
        payload = {
            "schema": 2,
            "ts": time.time(),
            "loadgen": summary,
            "metrics": registry.snapshot(),
        }
        Path(args.metrics).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.service import QueryEngine, SSSPQuery

    if args.repeat < 1:
        raise SystemExit("--repeat must be >= 1")
    params = {}
    if args.delta is not None:
        params["delta"] = args.delta
    if args.setpoint is not None:
        params["setpoint"] = args.setpoint
    if args.k is not None:
        params["k"] = args.k

    registry = obs.MetricsRegistry() if args.verbose else None
    catalog = _service_catalog(args)
    if args.graph not in catalog:
        raise SystemExit(
            f"unknown graph {args.graph!r} (have {catalog.names()}); "
            "register files with --graph-file NAME=PATH"
        )
    with obs.use(registry=registry):
        engine = QueryEngine(
            catalog,
            mode=args.pool_mode,
            max_workers=args.workers,
            timeout=args.timeout,
            cache_size=args.cache_size,
            max_batch=args.max_batch,
            backend=args.backend,
            **_resilience_kwargs(args),
        )
        with engine:
            graph = engine.pool.graph(args.graph)
            sources = list(args.source or [])
            if args.sources:
                try:
                    sources.extend(
                        int(s) for s in args.sources.split(",") if s.strip()
                    )
                except ValueError:
                    raise SystemExit(
                        f"--sources expects a comma list of integers, "
                        f"got {args.sources!r}"
                    )
            if not sources:
                sources = [int(np.argmax(np.diff(graph.indptr)))]
            ok = True
            for _ in range(args.repeat):
                queries = [
                    SSSPQuery(
                        graph_id=args.graph,
                        source=int(source),
                        algorithm=args.algorithm,
                        params=params,
                    )
                    for source in sources
                ]
                for response in engine.run_many(queries):
                    ok = ok and response.ok
                    print(json.dumps(response.as_dict()))
    if registry is not None:
        _print_metrics_snapshot(registry.snapshot())
    return 0 if ok else 1


def _load_metric_snapshot(path: str) -> Dict[str, dict]:
    """The metric snapshot inside any of the repo's metrics JSON files.

    Accepts the three shapes in the wild: ``serve --metrics`` /
    ``trace record`` files (snapshot under ``"metrics"``),
    ``benchmarks/results/metrics.json`` (ditto), and a bare snapshot
    dict (e.g. saved straight from ``registry.snapshot()``).
    """
    try:
        data = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise SystemExit(f"metrics file not found: {path}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"invalid metrics JSON in {path}: {exc}")
    if not isinstance(data, dict):
        raise SystemExit(f"{path} does not contain a JSON object")
    snapshot = data.get("metrics", data)
    if not isinstance(snapshot, dict):
        raise SystemExit(f"{path} has no metric snapshot")
    return snapshot


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs.exposition import format_prometheus

    snapshot = _load_metric_snapshot(args.file)
    if args.prometheus:
        sys.stdout.write(format_prometheus(snapshot))
        return 0
    if not snapshot:
        print("(no metrics recorded)")
        return 0
    _print_metrics_snapshot(snapshot)
    return 0


def _latency_rows(snapshot: Dict[str, dict]) -> list:
    """One row per labelled ``service.query.latency`` histogram.

    Sharded serve sessions label the histograms with ``shard=<i>``;
    when any series carries that label the table grows a leading
    ``shard`` column so per-shard latency stays distinguishable.
    """
    from repro.obs.registry import parse_name

    found = []
    for key in sorted(snapshot):
        base, labels = parse_name(key)
        if base != "service.query.latency":
            continue
        data = snapshot[key]
        if not data.get("count"):
            continue
        found.append((labels, data))
    has_shard = any("shard" in labels for labels, _ in found)
    rows = []
    for labels, data in found:
        row = {}
        if has_shard:
            row["shard"] = labels.get("shard", "-")
        row.update(
            {
                "graph": labels.get("graph", "-"),
                "algorithm": labels.get("algorithm", "-"),
                "count": data["count"],
                "p50 ms": round(1e3 * data.get("p50", 0.0), 2),
                "p95 ms": round(1e3 * data.get("p95", 0.0), 2),
                "p99 ms": round(1e3 * data.get("p99", 0.0), 2),
            }
        )
        rows.append(row)
    if has_shard:
        rows.sort(key=lambda r: (r["shard"], r["graph"], r["algorithm"]))
    return rows


def _render_top_frame(data: dict, prev: dict | None) -> str:
    """One ``repro top`` frame from a serve metrics file (schema 2)."""
    from repro.experiments.report import format_table

    lines = []
    stats = data.get("stats", {})
    health = data.get("health", {})
    cache = stats.get("cache", {})
    pool = health.get("pool", stats.get("pool", {}))
    queries = stats.get("queries", 0)
    qps = None
    if prev is not None:
        dt = float(data.get("ts", 0)) - float(prev.get("ts", 0))
        if dt > 0:
            qps = (queries - prev.get("stats", {}).get("queries", 0)) / dt
    hits = cache.get("hits", 0)
    lookups = hits + cache.get("misses", 0)
    hit_rate = f"{100.0 * hits / lookups:.1f}%" if lookups else "n/a"
    lines.append(
        f"queries {queries}"
        + (f"  |  {qps:.1f} qps" if qps is not None else "")
        + f"  |  cache hit rate {hit_rate}"
        + f"  |  pool {pool.get('mode', '?')}"
        f" x{pool.get('max_workers', '?')}"
        f", depth {pool.get('pending', 0)}"
    )
    retries = health.get("retries", stats.get("retries", {}))
    lines.append(
        f"retries {retries.get('attempts', 0)} "
        f"(exhausted {retries.get('exhausted', 0)})"
        f"  |  workers lost {pool.get('lost_workers', 0)}"
        f", rebuilds {pool.get('rebuilds', 0)}"
        f"  |  breakers open {health.get('breakers_open', 0)}"
    )
    open_breakers = [
        f"{b.get('graph')}/{b.get('algorithm')}:{b.get('state')}"
        for b in health.get("breakers", [])
        if b.get("state") != "closed"
    ]
    if open_breakers:
        lines.append("breakers: " + ", ".join(open_breakers))
    admission = stats.get("admission") or health.get("admission")
    if admission:
        inflight = ", ".join(
            f"s{shard}:{n}"
            for shard, n in sorted(admission.get("inflight", {}).items())
        )
        unavailable = admission.get("unavailable", 0)
        lines.append(
            f"admission: {admission.get('admitted', 0)} admitted, "
            f"{admission.get('shed', 0)} shed"
            + (f", {unavailable} unavailable" if unavailable else "")
            + f" (bound {admission.get('max_inflight', '?')}/shard)"
            + (f"  |  inflight {inflight}" if inflight else "")
        )
    shard_rows = health.get("shards")
    if shard_rows:
        supervisor = health.get("supervisor") or {}
        sup_shards = supervisor.get("shards", {})
        cells = []
        for row in shard_rows:
            index = row.get("index", "?")
            state = row.get("state", "up")
            watch = sup_shards.get(str(index), {})
            restarts = watch.get("restarts", 0)
            cell = f"s{index}:{state}"
            if restarts:
                cell += f" ({restarts} restart{'s' if restarts != 1 else ''})"
            worker = (row.get("dispatcher") or {}).get("worker")
            if worker:
                beat = worker.get("heartbeat_age_ms")
                cell += (
                    f" pid={worker.get('pid', '?')}"
                    + (f" hb={beat:.0f}ms" if beat is not None else "")
                )
            cells.append(cell)
        mode = health.get("shard_mode")
        line = (
            "shards"
            + (f" ({mode})" if mode else "")
            + ": "
            + ", ".join(cells)
        )
        if supervisor:
            line += (
                f"  |  failover={supervisor.get('failover', '?')}"
                f", budget {supervisor.get('restart_budget', '?')}"
                f", degraded {supervisor.get('degraded', 0)}"
            )
        lines.append(line)
    rows = _latency_rows(data.get("metrics", {}))
    if rows:
        lines.append("")
        lines.append(format_table(rows))
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    if args.interval <= 0:
        raise SystemExit("--interval must be > 0")
    path = Path(args.file)
    prev: dict | None = None
    try:
        while True:
            try:
                data = json.loads(path.read_text())
            except FileNotFoundError:
                frame = f"waiting for {path} (is serve --metrics-interval on?)"
                data = None
            except json.JSONDecodeError:
                frame = f"{path}: partial write, retrying"
                data = None
            if data is not None:
                frame = _render_top_frame(data, prev)
                prev = data
            if args.once:
                print(frame)
                return 0
            # ANSI clear-screen + home keeps the frame in place
            sys.stdout.write("\033[2J\033[H" + frame + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    """Chaos drill: a query batch under injected faults, cross-checked.

    Exit code 0 means every query came back ``ok`` and (unless
    ``--no-verify``) every answer matched a clean Dijkstra run on the
    same source.  The drill defaults to a 30% fault rate when
    ``--fault-rate`` is not given — an un-faulted drill proves nothing.
    """
    from repro import obs
    from repro.service import QueryEngine, SSSPQuery
    from repro.sssp import dijkstra

    if args.queries < 1:
        raise SystemExit("--queries must be >= 1")
    registry = obs.MetricsRegistry()
    catalog = _service_catalog(args)
    if args.graph not in catalog:
        raise SystemExit(
            f"unknown graph {args.graph!r} (have {catalog.names()}); "
            "register files with --graph-file NAME=PATH"
        )
    kwargs = _resilience_kwargs(args, default_rate=0.3)
    plan = kwargs["fault_plan"]
    if not args.quiet:
        print(
            f"fault plan: rate={plan.rate}, kinds={','.join(plan.kinds)}, "
            f"seed={plan.seed}; {args.queries} {args.algorithm!r} queries "
            f"on {args.graph!r} ({args.pool_mode} pool, "
            f"retries={args.retries}, breaker={args.breaker_threshold})"
        )
    with obs.use(registry=registry):
        engine = QueryEngine(
            catalog,
            mode=args.pool_mode,
            max_workers=args.workers,
            timeout=args.timeout,
            cache_size=args.cache_size,
            max_batch=args.max_batch,
            backend=args.backend,
            **kwargs,
        )
        with engine:
            graph = engine.pool.graph(args.graph)
            rng = np.random.default_rng(args.fault_seed)
            sources = rng.integers(0, graph.num_nodes, size=args.queries)
            queries = [
                SSSPQuery(
                    graph_id=args.graph,
                    source=int(s),
                    algorithm=args.algorithm,
                )
                for s in sources
            ]
            t0 = time.perf_counter()
            responses = engine.run_many(queries)
            wall = time.perf_counter() - t0
            health = engine.health()

            failed = [r for r in responses if not r.ok]
            retried = sum(1 for r in responses if r.attempts > 1)
            mismatches = 0
            if not args.no_verify:
                reference: Dict[int, dict] = {}
                for query, response in zip(queries, responses):
                    if not response.ok:
                        continue
                    src = query.source
                    if src not in reference:
                        clean = dijkstra(graph, src)
                        finite = clean.finite_distances()
                        reference[src] = {
                            "reached": clean.num_reached,
                            "max_dist": float(finite.max()) if finite.size else None,
                            "mean_dist": float(finite.mean()) if finite.size else None,
                        }
                    ref = reference[src]
                    wrong = response.reached != ref["reached"]
                    for field_name in ("max_dist", "mean_dist"):
                        got, want = getattr(response, field_name), ref[field_name]
                        if (got is None) != (want is None):
                            wrong = True
                        elif got is not None and not np.isclose(
                            got, want, rtol=1e-9, atol=1e-12
                        ):
                            wrong = True
                    if wrong:
                        mismatches += 1
                        print(
                            f"MISMATCH source={src}: got reached="
                            f"{response.reached} max={response.max_dist} "
                            f"mean={response.mean_dist}, want {ref}"
                        )

    print(
        f"answered {len(responses) - len(failed)}/{len(responses)} queries "
        f"in {wall:.2f}s ({retried} retried; "
        f"{health['retries']['attempts']} retry attempts, "
        f"{health['retries']['exhausted']} exhausted)"
    )
    print(
        f"pool: alive={health['pool']['alive']}, "
        f"lost_workers={health['pool']['lost_workers']}, "
        f"rebuilds={health['pool']['rebuilds']}; "
        f"breakers open: {health['breakers_open']}"
    )
    if failed and not args.quiet:
        for r in failed[:5]:
            print(f"FAILED source={r.query.source}: {r.error}")
        if len(failed) > 5:
            print(f"... and {len(failed) - 5} more failures")
    if not args.no_verify:
        verdict = "all verified against Dijkstra" if mismatches == 0 else (
            f"{mismatches} answers DISAGREE with Dijkstra"
        )
        print(verdict)
    if args.verbose:
        _print_metrics_snapshot(registry.snapshot())
    return 0 if not failed and mismatches == 0 else 1


def _cmd_chaos_net(args: argparse.Namespace) -> int:
    """Network-tier chaos drill: shard death under live traffic.

    Exit code 0 means the drill's three claims held: zero hung
    clients (every request terminated in-band or by reconnect), zero
    wrong answers (Dijkstra cross-check, unless ``--no-verify``), and
    — for lethal fault kinds — the crashed shard restarted within the
    supervisor's budget.
    """
    from repro import obs
    from repro.net import run_chaos_drill
    from repro.resilience import RestartPolicy

    if args.connections < 1:
        raise SystemExit("--connections must be >= 1")
    if args.duration <= 0:
        raise SystemExit("--duration must be > 0")
    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    if not 0 <= args.crash_shard < args.shards:
        raise SystemExit("--crash-shard must be in [0, --shards)")
    if args.restart_budget < 0:
        raise SystemExit("--restart-budget must be >= 0")
    if args.stall_ms <= 0:
        raise SystemExit("--stall-ms must be > 0")
    from repro.resilience import WORKER_FAULT_KINDS

    if args.fault_kind in WORKER_FAULT_KINDS and args.shard_mode != "process":
        raise SystemExit(
            f"--fault-kind {args.fault_kind} needs --shard-mode process"
        )
    registry = obs.MetricsRegistry()
    if not args.quiet:
        print(
            f"chaos-net: {args.shards} {args.shard_mode} shards, fault "
            f"{args.fault_kind} at cycle {args.crash_at} on shard "
            f"{args.crash_shard}, failover={args.failover}, "
            f"{args.connections} connections for {args.duration}s"
        )
    with obs.use(registry=registry):
        report = run_chaos_drill(
            shards=args.shards,
            scale=args.scale,
            connections=args.connections,
            duration_seconds=args.duration,
            crash_at=args.crash_at,
            crash_shard=args.crash_shard,
            fault_kind=args.fault_kind,
            failover=args.failover,
            restart_policy=RestartPolicy(budget=args.restart_budget),
            stall_seconds=args.stall_ms / 1000.0,
            workers=args.workers,
            zipf_a=args.zipf,
            seed=args.seed,
            verify=not args.no_verify,
            shard_mode=args.shard_mode,
            heartbeat_ms=args.heartbeat_ms,
        )
    summary = report["summary"]
    verification = report["verification"]
    print(
        f"traffic: {summary['sent']} sent = {summary['ok']} ok + "
        f"{summary['shed']} shed + {summary['unavailable']} unavailable + "
        f"{summary['errors']} errors + {summary['dropped']} dropped + "
        f"{summary['hung']} hung"
    )
    recovery = report["recovery_ms"]
    print(
        f"supervision: {report['restarts']} restart(s), "
        f"recovered={report['recovered']}"
        + (f", downtime {recovery:.1f}ms" if recovery is not None else "")
    )
    if not args.no_verify:
        print(
            f"verification: {verification['checked']} answers "
            f"({verification['unique_sources']} unique sources), "
            f"{verification['mismatches']} Dijkstra mismatches"
        )
    if args.metrics:
        registry.gauge("bench.net.recovery_ms").set(
            recovery if recovery is not None else 0.0
        )
        if args.shard_mode == "process":
            registry.gauge("bench.net.process_recovery_ms").set(
                recovery if recovery is not None else 0.0
            )
        registry.gauge("bench.net.hung").set(summary["hung"])
        registry.gauge("bench.net.errors").set(summary["errors"])
        registry.gauge("bench.net.chaos_mismatches").set(
            int(verification.get("mismatches", 0))
        )
        payload = {
            "schema": 2,
            "ts": time.time(),
            "chaos": report,
            "metrics": registry.snapshot(),
        }
        Path(args.metrics).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        if not args.quiet:
            print(f"metrics written to {args.metrics}")
    if args.verbose:
        _print_metrics_snapshot(registry.snapshot())
    print("chaos-net: PASS" if report["ok"] else "chaos-net: FAIL")
    return 0 if report["ok"] else 1


def _cmd_version(args: argparse.Namespace) -> int:
    from repro import __version__

    print(f"repro {__version__}")
    if args.verbose:
        print(f"python {sys.version.split()[0]}, numpy {np.__version__}")
    return 0


# ----------------------------------------------------------------------
# trace subcommand
# ----------------------------------------------------------------------
def _analysis_setpoint(trace) -> float:
    """The settling-analysis target: the run's set-point if recorded,
    else the median parallelism (a baseline run has no set-point)."""
    setpoint = trace.meta.get("setpoint")
    if setpoint:
        return float(setpoint)
    par = trace.parallelism
    median = float(np.median(par)) if par.size else 0.0
    return median if median > 0 else 1.0


def _trace_summary_rows(label: str, trace) -> dict:
    from repro.instrument.convergence import analyze_controller
    from repro.instrument.stats import summarize

    s = summarize(trace.parallelism)
    dyn = analyze_controller(trace, _analysis_setpoint(trace))
    return {
        "run": label,
        "algorithm": trace.algorithm,
        "graph": trace.graph_name,
        "iterations": trace.num_iterations,
        "edges expanded": trace.total_edges_expanded,
        "par mean": round(s.mean, 1),
        "par median": round(s.median, 1),
        "par cv": round(s.cv, 3),
        "par entry": dyn.parallelism_entry,
        "d settle": dyn.d_settling,
        "alpha settle": dyn.alpha_settling,
        "overshoot": round(dyn.parallelism_overshoot, 2),
        "steady err": round(dyn.steady_tracking_error, 3),
    }


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.core import AdaptiveParams, adaptive_sssp
    from repro.experiments.report import format_table
    from repro.graph.io import load_graph
    from repro.instrument.serialize import save_trace
    from repro.sssp import nearfar_sssp

    base = Path(args.out)
    trace_path = Path(f"{base}.trace.json")
    events_path = Path(f"{base}.events.jsonl")
    metrics_path = Path(f"{base}.metrics.json")

    graph = load_graph(args.graph)
    source = (
        args.source
        if args.source is not None
        else int(np.argmax(np.diff(graph.indptr)))
    )
    if not args.quiet:
        print(f"{graph!r}, source={source}, algorithm={args.algorithm}")

    registry = obs.MetricsRegistry()
    spans = obs.SpanRecorder()
    with obs.JsonlSink(events_path) as sink:
        with obs.use(registry=registry, events=sink, spans=spans):
            with spans.span("run"):
                if args.algorithm == "adaptive":
                    setpoint = (
                        args.setpoint if args.setpoint is not None else 10_000.0
                    )
                    result, trace, _ = adaptive_sssp(
                        graph, source, AdaptiveParams(setpoint=setpoint)
                    )
                else:
                    result, trace = nearfar_sssp(
                        graph, source, delta=args.delta,
                        backend=args.backend,
                    )
        events_written = sink.count

    save_trace(trace, trace_path)
    metrics_path.write_text(
        json.dumps(
            {
                "schema": 1,
                "algorithm": trace.algorithm,
                "graph": trace.graph_name,
                "source": source,
                "wall_seconds": spans.total("run"),
                "metrics": registry.snapshot(),
                "spans": [st.as_dict() for st in spans.profile()],
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    print(
        f"reached {result.num_reached}/{graph.num_nodes} vertices; "
        f"iterations={result.iterations}, relaxations={result.relaxations:,}"
    )
    print(format_table([_trace_summary_rows(base.name, trace)]))
    if not args.quiet:
        print(f"trace written to {trace_path}")
        print(f"{events_written} events streamed to {events_path}")
        print(f"metrics summary written to {metrics_path}")
    if args.verbose:
        _print_metrics_snapshot(registry.snapshot())
    return 0


def _render_event(event: dict) -> str | None:
    """One human-readable line for a known event type, None otherwise.

    Covers the serving vocabulary (``query_*``, ``batch_dispatch``)
    and the kernel batch events (``batch_run_start`` / ``batch_run_end``)
    that used to fall through to raw dicts, plus v2 ``span`` events.
    """
    etype = event.get("type")
    trace_tag = f" trace={event['trace'][:8]}" if event.get("trace") else ""
    worker_tag = " [worker]" if event.get("worker") else ""
    if etype == "query_start":
        return (
            f"query_start   qid={event.get('qid')} "
            f"{event.get('graph')}/{event.get('algorithm')} "
            f"source={event.get('source')} "
            f"depth={event.get('queue_depth')}{trace_tag}"
        )
    if etype == "query_end":
        status = "ok" if event.get("ok") else f"ERR {event.get('error')}"
        cache = f" cache={event['cache']}" if event.get("cache") else ""
        return (
            f"query_end     qid={event.get('qid')} {status}{cache} "
            f"wall={event.get('wall_seconds')}s{trace_tag}"
        )
    if etype == "query_retry":
        return (
            f"query_retry   qid={event.get('qid')} "
            f"attempt={event.get('attempt')} after {event.get('error')!r} "
            f"(delay {event.get('delay_seconds')}s)"
        )
    if etype == "batch_dispatch":
        return (
            f"batch_dispatch {event.get('graph')}/{event.get('algorithm')} "
            f"size={event.get('batch_size')} "
            f"sources={event.get('sources')} qids={event.get('qids')}"
            f"{trace_tag}"
        )
    if etype == "batch_run_start":
        return (
            f"batch_run_start {event.get('algorithm')} "
            f"on {event.get('graph')} size={event.get('batch_size')} "
            f"sources={event.get('sources')}{worker_tag}{trace_tag}"
        )
    if etype == "batch_run_end":
        return (
            f"batch_run_end  size={event.get('batch_size')} "
            f"sweeps={event.get('sweeps')} "
            f"relaxations={event.get('relaxations'):,} "
            f"reached={event.get('reached')}{worker_tag}{trace_tag}"
        )
    if etype == "span":
        parent = f" parent={event['parent'][:8]}" if event.get("parent") else ""
        return (
            f"span          {event.get('name')} "
            f"{event.get('seconds')}s{parent}{worker_tag}{trace_tag}"
        )
    if etype == "run_start":
        return (
            f"run_start     {event.get('algorithm')} "
            f"on {event.get('graph')} source={event.get('source')}"
            f"{worker_tag}{trace_tag}"
        )
    if etype == "run_end":
        return (
            f"run_end       iterations={event.get('iterations')} "
            f"relaxations={event.get('relaxations'):,} "
            f"reached={event.get('reached')}{worker_tag}{trace_tag}"
        )
    return None


def _show_event_log(path: Path, quiet: bool) -> int:
    """Summarise a ``.events.jsonl`` log: counts, then rendered lines.

    ``iteration`` events (one per SSSP iteration — often thousands)
    are counted but not listed; everything else prints one line each,
    unknown types as raw JSON so nothing is silently dropped.
    """
    counts: Dict[str, int] = {}
    lines = []
    with path.open() as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            try:
                event = json.loads(raw)
            except json.JSONDecodeError:
                counts["<malformed>"] = counts.get("<malformed>", 0) + 1
                continue
            etype = str(event.get("type"))
            counts[etype] = counts.get(etype, 0) + 1
            if etype == "iteration":
                continue
            rendered = _render_event(event)
            lines.append(rendered if rendered is not None else raw)
    if not quiet:
        total = sum(counts.values())
        by_type = ", ".join(f"{t}={n}" for t, n in sorted(counts.items()))
        print(f"{total} events in {path} ({by_type})")
    for line in lines:
        print(line)
    return 0


def _cmd_trace_show(args: argparse.Namespace) -> int:
    from repro.experiments.report import format_table
    from repro.instrument.serialize import load_trace

    path = Path(args.trace_file)
    if path.suffix == ".jsonl":
        return _show_event_log(path, args.quiet)
    trace = load_trace(args.trace_file)
    print(format_table([_trace_summary_rows(path.name, trace)]))
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    from repro.experiments.report import format_table
    from repro.instrument.serialize import load_trace

    a = load_trace(args.trace_a)
    b = load_trace(args.trace_b)
    rows_a = _trace_summary_rows("a", a)
    rows_b = _trace_summary_rows("b", b)
    if not args.quiet:
        print(f"a: {args.trace_a}  ({a.algorithm} on {a.graph_name})")
        print(f"b: {args.trace_b}  ({b.algorithm} on {b.graph_name})")
    diff_rows = []
    for key in rows_a:
        if key in ("run", "algorithm", "graph"):
            continue
        va, vb = rows_a[key], rows_b[key]
        try:
            delta = round(vb - va, 4)
        except TypeError:
            delta = "-"
        diff_rows.append({"metric": key, "a": va, "b": vb, "b - a": delta})
    print(format_table(diff_rows))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    handlers = {
        "record": _cmd_trace_record,
        "show": _cmd_trace_show,
        "diff": _cmd_trace_diff,
    }
    return handlers[args.trace_command](args)


def _cmd_shard_worker(args: argparse.Namespace) -> int:
    """One out-of-process shard engine (spawned by the front-end).

    Deliberately runs under the default (null) observability context:
    worker-side telemetry stays process-local, which keeps process-mode
    responses byte-identical to thread mode's.  The parent exports
    ``net.worker.*`` transport metrics instead.
    """
    from repro.net.worker import run_worker

    return run_worker(
        args.connect,
        shard_index=args.shard,
        token=args.token,
        heartbeat_ms=args.heartbeat_ms,
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "experiment": _cmd_experiment,
        "sssp": _cmd_sssp,
        "generate": _cmd_generate,
        "info": _cmd_info,
        "trace": _cmd_trace,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "query": _cmd_query,
        "metrics": _cmd_metrics,
        "top": _cmd_top,
        "faults": _cmd_faults,
        "chaos-net": _cmd_chaos_net,
        "shard-worker": _cmd_shard_worker,
        "version": _cmd_version,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
