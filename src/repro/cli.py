"""Command-line interface.

``python -m repro <command>``:

* ``experiment <id>`` — regenerate a paper artifact (``table1``,
  ``fig1`` … ``fig8``, ``overhead``, ``ablations``, ``kla``,
  ``power-target``, or ``all``) at a chosen scale;
* ``sssp <graph-file>`` — run any of the SSSP algorithms on a graph
  file (DIMACS ``.gr``, MatrixMarket ``.mtx`` or TSV edge list),
  optionally replaying the run on a simulated device;
* ``generate <dataset>`` — write a synthetic Cal/Wiki stand-in to a
  graph file;
* ``info <graph-file>`` — print a graph's Table-1-style statistics.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def _experiment_registry() -> Dict[str, Callable]:
    from repro.experiments import (
        ablations,
        dynamics,
        fig1,
        fig2,
        fig3,
        fig5,
        fig6,
        fig7,
        fig8,
        kla_comparison,
        overhead,
        robustness,
        power_target,
        table1,
    )

    return {
        "table1": table1.main,
        "fig1": fig1.main,
        "fig2": fig2.main,
        "fig3": fig3.main,
        "fig5": fig5.main,
        "fig6": fig6.main,
        "fig7": fig7.main,
        "fig8": fig8.main,
        "overhead": overhead.main,
        "ablations": ablations.main,
        "dynamics": dynamics.main,
        "kla": kla_comparison.main,
        "robustness": robustness.main,
        "power-target": power_target.main,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'An Energy-Efficient Single-Source Shortest "
            "Path Algorithm' (IPDPS 2018)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    exp.add_argument(
        "artifact",
        choices=sorted(_experiment_registry()) + ["all"],
        help="which table/figure to regenerate",
    )
    exp.add_argument("--scale", type=float, default=None, help="dataset scale")

    run = sub.add_parser("sssp", help="run SSSP on a graph file")
    run.add_argument("graph", help="graph file (.gr/.mtx/.tsv, optionally .gz)")
    run.add_argument("--source", type=int, default=None, help="source vertex (default: hub)")
    run.add_argument(
        "--algorithm",
        choices=["dijkstra", "bellman-ford", "delta-stepping", "nearfar", "adaptive", "kla"],
        default="adaptive",
    )
    run.add_argument("--delta", type=float, default=None, help="delta (fixed-delta algorithms)")
    run.add_argument("--setpoint", type=float, default=None, help="P (adaptive)")
    run.add_argument("--k", type=int, default=4, help="asynchrony depth (kla)")
    run.add_argument("--device", choices=["tk1", "tx1"], default=None,
                     help="also replay the run on this simulated device")
    run.add_argument("--save-trace", default=None, help="write the trace JSON here")

    gen = sub.add_parser("generate", help="write a synthetic dataset to a file")
    gen.add_argument("dataset", choices=["cal", "wiki"])
    gen.add_argument("output", help="output path (.gr/.mtx/.tsv)")
    gen.add_argument("--scale", type=float, default=0.02)
    gen.add_argument("--seed", type=int, default=7)

    info = sub.add_parser("info", help="print graph statistics")
    info.add_argument("graph", help="graph file")

    return parser


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.config import default_config

    config = default_config(args.scale)
    registry = _experiment_registry()
    names = sorted(registry) if args.artifact == "all" else [args.artifact]
    for name in names:
        registry[name](config)
        print()
    return 0


def _cmd_sssp(args: argparse.Namespace) -> int:
    from repro.graph.io import load_graph
    from repro.sssp import (
        bellman_ford,
        delta_stepping,
        dijkstra,
        kla_sssp,
        nearfar_sssp,
    )
    from repro.core import AdaptiveParams, adaptive_sssp

    graph = load_graph(args.graph)
    source = (
        args.source
        if args.source is not None
        else int(np.argmax(np.diff(graph.indptr)))
    )
    print(f"{graph!r}, source={source}, algorithm={args.algorithm}")

    trace = None
    if args.algorithm == "dijkstra":
        result = dijkstra(graph, source)
    elif args.algorithm == "bellman-ford":
        result = bellman_ford(graph, source)
    elif args.algorithm == "delta-stepping":
        result = delta_stepping(graph, source, args.delta)
    elif args.algorithm == "nearfar":
        result, trace = nearfar_sssp(graph, source, delta=args.delta)
    elif args.algorithm == "kla":
        result, trace = kla_sssp(graph, source, args.k)
    else:
        setpoint = args.setpoint if args.setpoint is not None else 10_000.0
        result, trace, _ = adaptive_sssp(
            graph, source, AdaptiveParams(setpoint=setpoint)
        )

    finite = result.finite_distances()
    print(
        f"reached {result.num_reached}/{graph.num_nodes} vertices; "
        f"iterations={result.iterations}, relaxations={result.relaxations:,}"
    )
    if finite.size:
        print(
            f"distance stats: max={finite.max():.4g}, mean={finite.mean():.4g}"
        )

    if trace is not None and args.save_trace:
        from repro.instrument.serialize import save_trace

        path = save_trace(trace, args.save_trace)
        print(f"trace written to {path}")

    if args.device:
        if trace is None or len(trace) == 0:
            print("(no trace to simulate for this algorithm)")
        else:
            from repro.gpusim import get_device, simulate_run

            run = simulate_run(trace, get_device(args.device))
            s = run.summary()
            print(
                f"simulated on {s['device']} ({s['dvfs']}): "
                f"{s['time_ms']} ms, {s['avg_power_w']} W, {s['energy_j']} J"
            )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.graph.datasets import cal_like, wiki_like
    from repro.graph.io import write_dimacs, write_edge_list, write_matrix_market

    factory = cal_like if args.dataset == "cal" else wiki_like
    graph = factory(args.scale, seed=args.seed)
    out = args.output
    if out.endswith((".gr", ".gr.gz")):
        write_dimacs(graph, out)
    elif out.endswith((".mtx", ".mtx.gz")):
        write_matrix_market(graph, out)
    else:
        write_edge_list(graph, out)
    print(f"wrote {graph!r} to {out}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.experiments.report import format_table
    from repro.graph.io import load_graph
    from repro.graph.properties import graph_stats

    graph = load_graph(args.graph)
    stats = graph_stats(graph)
    print(format_table([stats.as_row()]))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "experiment": _cmd_experiment,
        "sssp": _cmd_sssp,
        "generate": _cmd_generate,
        "info": _cmd_info,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
