"""repro — reproduction of *An Energy-Efficient Single-Source Shortest
Path Algorithm* (Karamati, Young & Vuduc, IPDPS 2018).

The package implements, in pure NumPy-accelerated Python:

* the Gunrock-style **near+far SSSP** baseline and its classic
  relatives (Dijkstra, Bellman–Ford, Meyer–Sanders delta-stepping) —
  :mod:`repro.sssp`;
* the paper's contribution, a **self-tuning near+far algorithm** whose
  delta is retuned every iteration by an online-learning controller so
  available parallelism tracks a user set-point ``P`` —
  :mod:`repro.core`;
* a simulated **embedded CPU+GPU platform** (Jetson TK1/TX1 presets)
  with DVFS frequency knobs, a roofline kernel-time model, a CMOS power
  model, and a PowerMon-style sampler — :mod:`repro.gpusim`;
* **instrumentation** (parallelism profiles, traces, distribution
  stats) — :mod:`repro.instrument`;
* a per-figure **experiment harness** regenerating every table and
  figure of the paper's evaluation — :mod:`repro.experiments`.

Quickstart::

    from repro.graph import wiki_like
    from repro.sssp import nearfar_sssp
    from repro.core import AdaptiveParams, adaptive_sssp

    g = wiki_like(scale=0.01)
    baseline, base_trace = nearfar_sssp(g, source=0)
    tuned, trace, ctrl = adaptive_sssp(
        g, source=0, params=AdaptiveParams(setpoint=20_000)
    )
    assert (baseline.dist == tuned.dist).all()
    print(base_trace.parallelism_cv, trace.parallelism_cv)
"""

from repro.core import AdaptiveParams, adaptive_sssp
from repro.graph import CSRGraph, cal_like, wiki_like
from repro.sssp import dijkstra, nearfar_sssp

__version__ = "1.0.0"

__all__ = [
    "AdaptiveParams",
    "CSRGraph",
    "adaptive_sssp",
    "cal_like",
    "dijkstra",
    "nearfar_sssp",
    "wiki_like",
    "__version__",
]
