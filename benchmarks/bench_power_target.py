"""P1 — power-target control extension (paper §6 future work)."""

from conftest import run_once

from repro.experiments import power_target
from repro.experiments.report import banner, format_table


def test_power_target(benchmark, config, emit):
    data = run_once(benchmark, lambda: power_target.run_power_target(config))
    chunks = [banner("Power-target control (paper §6 future work)")]
    for name, rows in data.items():
        chunks += [f"-- {name} --", format_table(rows)]
    emit("power_target", "\n".join(chunks))

    # the road network's long smooth runs let the servo settle: every
    # budget tracked within 15%, and higher budgets buy power + speed
    cal = data["cal"]
    for row in cal:
        assert abs(row["error"]) < 0.15, row
    assert cal[-1]["steady power (W)"] > cal[0]["steady power (W)"]
    assert cal[-1]["time (ms)"] <= cal[0]["time (ms)"]

    # wiki runs are bursty and (at bench scale) only ~20-40 iterations
    # long, so tight tracking is physically impossible; require the
    # highest budget — the easiest to satisfy — to land close
    wiki = data["wiki"]
    assert abs(wiki[-1]["error"]) < 0.3, wiki[-1]
