"""S5.2 — controller runtime overhead (plus serving-telemetry overhead).

``test_serving_telemetry_overhead`` times the same serving workload
through the query engine with telemetry off (null obs context — the
engine's bare pre-telemetry task path, by construction) and with full
telemetry on (registry + events + spans + per-query traces), and
records the on/off ratio in ``benchmarks/results/metrics.json``
(``bench.overhead.telemetry_*`` gauges) for the CI perf gate.
"""

import time

from conftest import run_once

from repro.experiments import overhead
from repro.experiments.report import banner, format_table


def test_controller_overhead(benchmark, config, emit):
    rows = run_once(benchmark, lambda: overhead.run_overhead(config))
    emit(
        "overhead",
        banner("Section 5.2: controller runtime overhead")
        + "\n"
        + format_table(rows),
    )
    for row in rows:
        # the Python controller must stay a small fraction of wall time
        # (the paper's C controller: 0.005-0.02% of runtime)
        assert row["controller wall (s)"] < 0.1 * row["wall time (s)"]
        assert row["sim overhead frac"] < 0.05


def test_noop_instrumentation_overhead(benchmark, config, emit):
    rows = run_once(
        benchmark, lambda: overhead.run_instrumentation_overhead(config)
    )
    emit(
        "instrumentation_overhead",
        banner("Observability: instrumentation overhead (fixed-delta near+far)")
        + "\n"
        + format_table(rows),
    )
    for row in rows:
        # the acceptance bar: with the registry disabled (the default),
        # the hooks' measured cost stays far below a 5% regression
        assert row["noop frac"] < 0.05


SERVE_SCALE = 0.02
SERVE_QUERIES = 24
SERVE_REPS = 3


def test_serving_telemetry_overhead(benchmark, emit):
    from repro import obs
    from repro.experiments.report import format_table
    from repro.service import QueryEngine, SSSPQuery, default_catalog

    def run_workload() -> float:
        """One full serving pass; caching off so every query computes."""
        engine = QueryEngine(
            default_catalog(SERVE_SCALE),
            mode="thread",
            max_workers=2,
            cache_size=0,
            max_batch=1,
        )
        with engine:
            queries = [
                SSSPQuery("cal", s, "nearfar") for s in range(SERVE_QUERIES)
            ]
            t0 = time.perf_counter()
            responses = engine.run_many(queries)
            elapsed = time.perf_counter() - t0
        assert all(r.ok for r in responses)
        return elapsed

    def measure(telemetry: bool) -> float:
        best = float("inf")
        for _ in range(SERVE_REPS):
            if telemetry:
                with obs.use(
                    registry=obs.MetricsRegistry(),
                    events=obs.ListSink(),
                    spans=obs.SpanRecorder(),
                ):
                    best = min(best, run_workload())
            else:
                # nested bare use() shadows the session registry with
                # the null context: the engine sees no telemetry at all
                with obs.use():
                    best = min(best, run_workload())
        return best

    off_s = measure(telemetry=False)
    on_s, _ = run_once(benchmark, lambda: (measure(telemetry=True), None))
    ratio = on_s / off_s

    rows = [
        {
            "queries": SERVE_QUERIES,
            "telemetry off (s)": round(off_s, 4),
            "telemetry on (s)": round(on_s, 4),
            "on/off ratio": round(ratio, 3),
        }
    ]
    emit(
        "serving_telemetry_overhead",
        banner("Serving path: telemetry on vs off")
        + "\n"
        + format_table(rows),
    )

    reg = obs.get_registry()
    reg.gauge("bench.overhead.telemetry_off_seconds").set(round(off_s, 4))
    reg.gauge("bench.overhead.telemetry_on_seconds").set(round(on_s, 4))
    reg.gauge("bench.overhead.telemetry_on_ratio").set(round(ratio, 3))
    reg.gauge("bench.overhead.telemetry_off_qps").set(
        round(SERVE_QUERIES / off_s, 2)
    )

    # the off path must be the bare pre-telemetry code path: traced
    # wrappers, envelopes and labelled histograms all gated off at
    # engine construction (the <2%-when-off budget holds structurally;
    # the measured ratio above tracks what *enabling* telemetry costs)
    with obs.use():
        engine = QueryEngine(
            default_catalog(0.005), mode="thread", max_workers=1
        )
        with engine:
            assert engine.telemetry is False
    # full telemetry (buffered contexts, payload shipping, span events)
    # must stay a modest multiplier on kernel-dominated serving
    assert ratio < 1.5, f"telemetry on/off ratio {ratio:.3f} >= 1.5"
