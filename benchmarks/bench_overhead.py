"""S5.2 — controller runtime overhead."""

from conftest import run_once

from repro.experiments import overhead
from repro.experiments.report import banner, format_table


def test_controller_overhead(benchmark, config, emit):
    rows = run_once(benchmark, lambda: overhead.run_overhead(config))
    emit(
        "overhead",
        banner("Section 5.2: controller runtime overhead")
        + "\n"
        + format_table(rows),
    )
    for row in rows:
        # the Python controller must stay a small fraction of wall time
        # (the paper's C controller: 0.005-0.02% of runtime)
        assert row["controller wall (s)"] < 0.1 * row["wall time (s)"]
        assert row["sim overhead frac"] < 0.05


def test_noop_instrumentation_overhead(benchmark, config, emit):
    rows = run_once(
        benchmark, lambda: overhead.run_instrumentation_overhead(config)
    )
    emit(
        "instrumentation_overhead",
        banner("Observability: instrumentation overhead (fixed-delta near+far)")
        + "\n"
        + format_table(rows),
    )
    for row in rows:
        # the acceptance bar: with the registry disabled (the default),
        # the hooks' measured cost stays far below a 5% regression
        assert row["noop frac"] < 0.05
