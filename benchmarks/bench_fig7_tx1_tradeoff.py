"""F7 — regenerate Figure 7 (TX1 speedup versus relative power)."""

import numpy as np
from conftest import run_once

from repro.experiments import fig7
from repro.experiments.report import banner, format_table


def test_fig7_tx1_tradeoff(benchmark, config, emit):
    data = run_once(benchmark, lambda: fig7.run_fig7(config))
    chunks = [banner("Figure 7: performance versus power (TX1)")]
    for name, points in data.items():
        chunks += [f"-- {name} --", format_table([p.as_row() for p in points])]
    emit("fig7_tx1_tradeoff", "\n".join(chunks))

    for name, points in data.items():
        assert all(np.isfinite(p.speedup) and p.speedup > 0 for p in points)
        assert all(np.isfinite(p.relative_power) for p in points)

    # the paper's TX1 observation: self-tuning points cluster more
    # tightly across P than on the TK1 (better stock DVFS) — check the
    # self-tuning auto points span a modest speedup range
    for name, points in data.items():
        autos = [
            p.speedup
            for p in points
            if p.algorithm == "self-tuning" and p.dvfs == "auto"
        ]
        assert len(autos) == 3
        assert max(autos) / max(min(autos), 1e-9) < 10
