"""A1 — ablations of the controller's design choices (DESIGN.md §6)."""

from conftest import run_once

from repro.experiments import ablations
from repro.experiments.report import banner, format_table


def test_ablations(benchmark, config, emit):
    data = run_once(benchmark, lambda: ablations.run_ablations(config))
    chunks = [banner("Ablations: controller design choices")]
    for name, rows in data.items():
        chunks += [f"-- {name} --", format_table(rows)]
    emit("ablations", "\n".join(chunks))

    for name, rows in data.items():
        # every variant still terminates and does bounded work
        for r in rows:
            assert r["iterations"] > 0
            assert r["relaxations"] > 0

    # tracking quality is only a meaningful yardstick on the road
    # network (wiki's bursts defeat every variant at bench scale)
    cal = {r["variant"]: r for r in data["cal"]}
    assert cal["full"]["tracking err"] < 0.5
