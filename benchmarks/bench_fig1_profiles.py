"""F1 — regenerate Figure 1 (concurrency profiles + density insets)."""

import numpy as np
from conftest import run_once

from repro.experiments import fig1
from repro.experiments.report import banner, format_series, format_table


def test_fig1_profiles(benchmark, config, emit):
    res = run_once(benchmark, lambda: fig1.run_fig1(config, dataset="wiki"))
    text = "\n".join(
        [
            banner("Figure 1: concurrency profiles (wiki)"),
            format_series("(a) baseline X^(2)", res.baseline.series),
            format_series("(b) self-tuning X^(2)", res.selftuning.series),
            "",
            format_table(res.comparison_rows()),
            "",
            "density of (a): "
            + np.array2string(res.baseline.density, precision=3),
            "density of (b): "
            + np.array2string(res.selftuning.density, precision=3),
        ]
    )
    emit("fig1_profiles", text)
    # the paper's claim: lower variability, smaller dynamic range
    assert res.selftuning.summary.cv < res.baseline.summary.cv
    assert res.selftuning.dynamic_range <= res.baseline.dynamic_range
