"""T1 — regenerate Table 1 (dataset characteristics)."""

from conftest import run_once

from repro.experiments import table1
from repro.experiments.report import banner, format_table


def test_table1(benchmark, config, emit):
    rows = run_once(benchmark, lambda: table1.run_table1(config))
    emit(
        "table1",
        banner("Table 1: data set characteristics") + "\n" + format_table(rows),
    )
    assert len(rows) == 2
    wiki = next(r for r in rows if "wiki" in r["Input graph"])
    cal = next(r for r in rows if "cal" in r["Input graph"])
    # the structural traits the substitution must preserve
    assert wiki["Max degree"] > 10 * wiki["Avg degree"]
    assert cal["Max degree"] <= 8
    assert cal["Est. diameter"] > 5 * wiki["Est. diameter"]
