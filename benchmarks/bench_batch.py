"""Batched multi-source kernel vs the per-source loop.

The acceptance check for ``repro.sssp.batch_kernels``: on a road-like
graph with >= 100k vertices, answering B >= 16 sources with **one**
batched near+far pass must deliver at least 2x the query throughput of
looping ``nearfar_sssp`` over the same sources — the amortisation the
serving path's coalescing scheduler banks on.  The batched distances
must also be byte-identical to the looped ones (same floating-point
ops, same order; see ``repro/sssp/frontier.py``).

Timings land in ``benchmarks/results/metrics.json`` via the session
registry (``bench.batch.*`` gauges) so perf-tracking jobs can watch
the speedup across commits.

The backend axis: the batched pass is re-timed under the ``numba``
kernel backend (``bench.batch.batched_qps_numba``).  On machines
without the numba wheel the backend resolves to its numpy fallback, so
the gauge still exists (anchored at the numpy figure, which keeps the
CI perf gate's missing-metric rule satisfied) and the compiled-speedup
assertion is skipped; where numba genuinely compiles, the batched QPS
must reach ``MIN_NUMBA_SPEEDUP`` times the numpy backend's.
"""

import time
import warnings

import numpy as np
from conftest import run_once

from repro import obs
from repro.graph.datasets import cal_like
from repro.sssp.backends import backend_available, resolve_backend
from repro.sssp.batch import batch_run, sample_sources
from repro.sssp.nearfar import nearfar_sssp

GRAPH_SCALE = 0.06  # ~113k nodes / ~426k edges, road-like
BATCH = 32  # the acceptance bar is "B >= 16"; 32 amortises further
REPS = 3  # best-of-N on both sides rejects scheduler noise
MIN_SPEEDUP = 2.0
MIN_NUMBA_SPEEDUP = 3.0  # vs the numpy batched pass, when numba compiles


def test_batched_vs_looped(benchmark, emit):
    graph = cal_like(GRAPH_SCALE)
    assert graph.num_nodes >= 100_000, graph.num_nodes
    sources = sample_sources(graph, BATCH, seed=11)

    looped_s = float("inf")
    for _ in range(REPS):
        t0 = time.perf_counter()
        looped = [
            nearfar_sssp(graph, int(s), collect_trace=False)[0]
            for s in sources
        ]
        looped_s = min(looped_s, time.perf_counter() - t0)

    def batched_pass():
        best, batch = float("inf"), None
        for _ in range(REPS):
            t1 = time.perf_counter()
            batch = batch_run(
                graph, sources, nearfar_sssp, label="batched", mode="batched"
            )
            best = min(best, time.perf_counter() - t1)
        return batch, best

    batch, batched_s = run_once(benchmark, batched_pass)

    # byte-exactness: one fused pass, same answers as B separate passes
    for single, multi in zip(looped, batch.results):
        assert np.array_equal(single.dist, multi.dist)
        assert single.iterations == multi.iterations

    speedup = looped_s / batched_s
    reg = obs.get_registry()
    reg.gauge("bench.batch.graph_nodes").set(graph.num_nodes)
    reg.gauge("bench.batch.batch_size").set(BATCH)
    reg.gauge("bench.batch.looped_seconds").set(round(looped_s, 4))
    reg.gauge("bench.batch.batched_seconds").set(round(batched_s, 4))
    reg.gauge("bench.batch.looped_qps").set(round(BATCH / looped_s, 2))
    reg.gauge("bench.batch.batched_qps").set(round(BATCH / batched_s, 2))
    reg.gauge("bench.batch.speedup").set(round(speedup, 3))

    # ---- backend axis: the same batched pass under the numba backend
    numba_ok = backend_available("numba")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)  # fallback notice
        kb = resolve_backend("numba")
    # warm-up absorbs the one-time JIT compilation cost
    batch_run(graph, sources, nearfar_sssp, mode="batched", backend=kb)
    numba_s = float("inf")
    numba_batch = None
    for _ in range(REPS):
        t2 = time.perf_counter()
        numba_batch = batch_run(
            graph, sources, nearfar_sssp, label="numba", mode="batched",
            backend=kb,
        )
        numba_s = min(numba_s, time.perf_counter() - t2)

    # bit-identity across backends, whole batch
    for ref, got in zip(batch.results, numba_batch.results):
        assert np.array_equal(ref.dist, got.dist)

    numba_speedup = batched_s / numba_s
    reg.gauge("bench.batch.numba_available").set(int(numba_ok))
    reg.gauge("bench.batch.batched_qps_numba").set(round(BATCH / numba_s, 2))
    reg.gauge("bench.batch.numba_speedup").set(round(numba_speedup, 3))

    emit(
        "batch_throughput",
        "\n".join(
            [
                f"graph: cal_like({GRAPH_SCALE}) — {graph.num_nodes} nodes, "
                f"{graph.num_edges} edges",
                f"batch size: {BATCH}",
                f"looped  : {looped_s:.3f}s ({BATCH / looped_s:.2f} qps)",
                f"batched : {batched_s:.3f}s ({BATCH / batched_s:.2f} qps)",
                f"speedup : {speedup:.2f}x (bar: >= {MIN_SPEEDUP}x)",
                f"numba   : {numba_s:.3f}s ({BATCH / numba_s:.2f} qps, "
                f"{numba_speedup:.2f}x vs numpy batched; backend "
                f"{'compiled' if numba_ok else 'fallback=numpy'})",
            ]
        ),
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched kernel {speedup:.2f}x vs looped; need >= {MIN_SPEEDUP}x"
    )
    if numba_ok:
        assert numba_speedup >= MIN_NUMBA_SPEEDUP, (
            f"numba backend {numba_speedup:.2f}x vs numpy batched; "
            f"need >= {MIN_NUMBA_SPEEDUP}x"
        )
