"""F3 — regenerate Figure 3 (Cal performance versus delta)."""

from conftest import run_once

from repro.experiments import fig3
from repro.experiments.report import banner, format_series, format_table


def test_fig3_cal_performance_vs_delta(benchmark, config, emit):
    res = run_once(benchmark, lambda: fig3.run_fig3(config))
    chunks = [
        banner("Figure 3: Cal performance versus delta"),
        format_table(res.rows),
        "",
    ]
    chunks += [
        format_series(f"frontier {label}", series)
        for label, series in res.series.items()
    ]
    emit("fig3_cal_delta", "\n".join(chunks))

    times = [r["sim time (ms)"] for r in res.rows]
    relax = [r["relaxations"] for r in res.rows]
    iters = [r["iterations"] for r in res.rows]
    # left side of the U: tiny delta is slow (too many iterations)
    assert times[0] > min(times)
    # iterations fall monotonically-ish as delta grows
    assert iters[-1] < iters[0]
    # redundant work grows with delta (the energy cost of oversizing it)
    assert relax[-1] > relax[0]
