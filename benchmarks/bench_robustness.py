"""A4 — source robustness of the parallelism control (batched Fig. 5)."""

from conftest import run_once

from repro.experiments import robustness
from repro.experiments.report import banner, format_table


def test_source_robustness(benchmark, config, emit):
    data = run_once(
        benchmark, lambda: robustness.run_robustness(config, num_sources=4)
    )
    chunks = [banner("Source robustness (batched Fig. 5)")]
    for name, rows in data.items():
        chunks += [f"-- {name} --", format_table(rows)]
    emit("robustness", "\n".join(chunks))

    # pooled over sources, the controller still tightens the road
    # network's distribution relative to the baseline
    cal = data["cal"]
    baseline, tuned = cal[0], cal[1]
    assert tuned["pooled cv"] < baseline["pooled cv"]
    assert tuned["mass near P"] > 0.5
