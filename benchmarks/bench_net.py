"""Network front-end throughput and recovery: serve --listen + loadgen.

The serving acceptance checks for ``repro.net``:

* **throughput** — a 2-shard :class:`~repro.net.ShardManager` behind
  the asyncio TCP front-end, driven by the closed-loop Zipf load
  generator over real sockets, must sustain a healthy query rate with
  **zero** sheds and zero errors at trivial load — shedding on an idle
  box would mean admission control is mis-tuned, and any error would
  mean the socket protocol diverges from the stdin one.
* **recovery** — the network-tier chaos drill (a shard dispatcher
  crash under live traffic, supervised restart) must pass its three
  invariants and restart the shard quickly; the measured downtime is
  the ``bench.net.recovery_ms`` gauge.

* **process-mode recovery** — the same drill with
  ``--shard-mode process`` and a ``worker_kill`` fault: the shard's
  worker *process* is SIGKILLed mid-traffic and the supervisor must
  respawn it (interpreter start + handshake + graph re-adoption)
  within budget; the measured downtime is
  ``bench.net.process_recovery_ms``.

Emits ``bench.net.qps`` / ``bench.net.p99_ms`` / ``bench.net.shed`` /
``bench.net.recovery_ms`` / ``bench.net.process_recovery_ms`` gauges
into ``benchmarks/results/metrics.json`` via the session registry;
``tools/perf_gate.py`` gates ``bench.net.qps``,
``bench.net.recovery_ms`` and ``bench.net.process_recovery_ms``
against ``benchmarks/baselines/ci.json``.
"""

import asyncio

from conftest import run_once

from repro import obs
from repro.net import (
    AdmissionController,
    NetServer,
    ShardManager,
    run_chaos_drill,
    run_loadgen,
)
from repro.resilience import RestartPolicy
from repro.service import default_catalog

GRAPH_SCALE = 0.005  # tiny catalog graphs: this measures the wire, not SSSP
SHARDS = 2
CONNECTIONS = 8
DURATION_S = 2.0
ZIPF_A = 1.2


def test_serve_loadgen_throughput(benchmark, emit):
    catalog = default_catalog(GRAPH_SCALE)
    admission = AdmissionController(max_inflight=256)
    manager = ShardManager(
        catalog, shards=SHARDS, admission=admission, max_workers=2
    )

    async def drive():
        server = NetServer(manager, port=0)
        await server.start()
        try:
            host, port = server.address
            return await run_loadgen(
                f"{host}:{port}",
                connections=CONNECTIONS,
                duration_seconds=DURATION_S,
                zipf_a=ZIPF_A,
            )
        finally:
            await server.stop()

    try:
        summary = run_once(benchmark, lambda: asyncio.run(drive()))
    finally:
        manager.close()

    assert summary["sent"] > 0
    assert summary["errors"] == 0, summary["error_samples"]
    assert summary["shed"] == 0  # trivial load must never shed
    assert summary["ok"] == summary["sent"]

    latency = summary["latency"]
    registry = obs.get_registry()
    registry.gauge("bench.net.qps").set(summary["qps"])
    registry.gauge("bench.net.sent").set(summary["sent"])
    registry.gauge("bench.net.shed").set(summary["shed"])
    registry.gauge("bench.net.p50_ms").set(latency["p50_ms"])
    registry.gauge("bench.net.p99_ms").set(latency["p99_ms"])

    emit(
        "net_loadgen",
        "\n".join(
            [
                f"connections={CONNECTIONS} shards={SHARDS} "
                f"duration={DURATION_S}s zipf={ZIPF_A}",
                f"sent={summary['sent']} ok={summary['ok']} "
                f"shed={summary['shed']} errors={summary['errors']}",
                f"qps={summary['qps']}",
                f"latency p50={latency['p50_ms']}ms "
                f"p95={latency['p95_ms']}ms p99={latency['p99_ms']}ms",
            ]
        ),
    )


def test_chaos_recovery(benchmark, emit):
    """Supervised restart under live traffic: the recovery-time gate.

    One seeded ``shard_crash`` drill: the crashed shard's measured
    downtime (detection + backoff + rebuild) becomes
    ``bench.net.recovery_ms``.  The drill's own invariants (zero hung
    clients, zero errors, zero Dijkstra mismatches, in-budget restart)
    are asserted too — a chaos regression fails the benchmark, not
    just the gate.
    """
    report = run_once(
        benchmark,
        lambda: run_chaos_drill(
            shards=SHARDS,
            scale=GRAPH_SCALE,
            connections=4,
            duration_seconds=1.5,
            restart_policy=RestartPolicy(budget=5, base_delay=0.05),
            stall_seconds=0.4,
        ),
    )
    assert report["ok"], report
    summary = report["summary"]
    recovery_ms = (
        report["recovery_ms"] if report["recovery_ms"] is not None else 0.0
    )
    registry = obs.get_registry()
    registry.gauge("bench.net.recovery_ms").set(round(recovery_ms, 2))
    registry.gauge("bench.net.chaos_restarts").set(report["restarts"])
    registry.gauge("bench.net.chaos_hung").set(summary["hung"])
    registry.gauge("bench.net.chaos_mismatches").set(
        int(report["verification"].get("mismatches", 0))
    )

    emit(
        "net_chaos_recovery",
        "\n".join(
            [
                f"shards={SHARDS} fault=shard_crash failover=failfast "
                f"duration=1.5s",
                f"sent={summary['sent']} ok={summary['ok']} "
                f"unavailable={summary['unavailable']} "
                f"dropped={summary['dropped']} hung={summary['hung']} "
                f"errors={summary['errors']}",
                f"restarts={report['restarts']} "
                f"recovery_ms={recovery_ms:.1f}",
                f"verified={report['verification']['checked']} answers, "
                f"{report['verification'].get('mismatches', 0)} mismatches",
            ]
        ),
    )


def test_process_chaos_recovery(benchmark, emit):
    """Worker-process SIGKILL under live traffic: the process-mode gate.

    The heavyweight path: detection over the worker socket, a
    supervised respawn of a whole Python interpreter, handshake and
    graph re-adoption before the shard serves again.  The measured
    downtime becomes ``bench.net.process_recovery_ms`` — much larger
    than thread-mode recovery (a process spawn imports numpy), which
    is exactly why it gets its own gate.
    """
    report = run_once(
        benchmark,
        lambda: run_chaos_drill(
            shards=SHARDS,
            scale=GRAPH_SCALE,
            connections=4,
            duration_seconds=1.5,
            fault_kind="worker_kill",
            shard_mode="process",
            heartbeat_ms=150.0,
            restart_policy=RestartPolicy(budget=5, base_delay=0.05),
            stall_seconds=0.4,
        ),
    )
    assert report["ok"], report
    assert report["shard_mode"] == "process"
    summary = report["summary"]
    recovery_ms = (
        report["recovery_ms"] if report["recovery_ms"] is not None else 0.0
    )
    registry = obs.get_registry()
    registry.gauge("bench.net.process_recovery_ms").set(round(recovery_ms, 2))
    registry.gauge("bench.net.process_chaos_restarts").set(report["restarts"])
    registry.gauge("bench.net.process_chaos_hung").set(summary["hung"])
    registry.gauge("bench.net.process_chaos_mismatches").set(
        int(report["verification"].get("mismatches", 0))
    )

    emit(
        "net_process_recovery",
        "\n".join(
            [
                f"shards={SHARDS} shard_mode=process fault=worker_kill "
                f"failover=failfast duration=1.5s",
                f"sent={summary['sent']} ok={summary['ok']} "
                f"unavailable={summary['unavailable']} "
                f"dropped={summary['dropped']} hung={summary['hung']} "
                f"errors={summary['errors']}",
                f"restarts={report['restarts']} "
                f"recovery_ms={recovery_ms:.1f}",
                f"verified={report['verification']['checked']} answers, "
                f"{report['verification'].get('mismatches', 0)} mismatches",
            ]
        ),
    )
