"""Network front-end throughput: serve --listen + closed-loop loadgen.

The serving acceptance check for ``repro.net``: a 2-shard
:class:`~repro.net.ShardManager` behind the asyncio TCP front-end,
driven by the closed-loop Zipf load generator over real sockets, must
sustain a healthy query rate with **zero** sheds and zero errors at
trivial load — shedding on an idle box would mean admission control is
mis-tuned, and any error would mean the socket protocol diverges from
the stdin one.

Emits ``bench.net.qps`` / ``bench.net.p99_ms`` / ``bench.net.shed``
gauges into ``benchmarks/results/metrics.json`` via the session
registry; ``tools/perf_gate.py`` gates ``bench.net.qps`` against
``benchmarks/baselines/ci.json``.
"""

import asyncio

from conftest import run_once

from repro import obs
from repro.net import AdmissionController, NetServer, ShardManager, run_loadgen
from repro.service import default_catalog

GRAPH_SCALE = 0.005  # tiny catalog graphs: this measures the wire, not SSSP
SHARDS = 2
CONNECTIONS = 8
DURATION_S = 2.0
ZIPF_A = 1.2


def test_serve_loadgen_throughput(benchmark, emit):
    catalog = default_catalog(GRAPH_SCALE)
    admission = AdmissionController(max_inflight=256)
    manager = ShardManager(
        catalog, shards=SHARDS, admission=admission, max_workers=2
    )

    async def drive():
        server = NetServer(manager, port=0)
        await server.start()
        try:
            host, port = server.address
            return await run_loadgen(
                f"{host}:{port}",
                connections=CONNECTIONS,
                duration_seconds=DURATION_S,
                zipf_a=ZIPF_A,
            )
        finally:
            await server.stop()

    try:
        summary = run_once(benchmark, lambda: asyncio.run(drive()))
    finally:
        manager.close()

    assert summary["sent"] > 0
    assert summary["errors"] == 0, summary["error_samples"]
    assert summary["shed"] == 0  # trivial load must never shed
    assert summary["ok"] == summary["sent"]

    latency = summary["latency"]
    registry = obs.get_registry()
    registry.gauge("bench.net.qps").set(summary["qps"])
    registry.gauge("bench.net.sent").set(summary["sent"])
    registry.gauge("bench.net.shed").set(summary["shed"])
    registry.gauge("bench.net.p50_ms").set(latency["p50_ms"])
    registry.gauge("bench.net.p99_ms").set(latency["p99_ms"])

    emit(
        "net_loadgen",
        "\n".join(
            [
                f"connections={CONNECTIONS} shards={SHARDS} "
                f"duration={DURATION_S}s zipf={ZIPF_A}",
                f"sent={summary['sent']} ok={summary['ok']} "
                f"shed={summary['shed']} errors={summary['errors']}",
                f"qps={summary['qps']}",
                f"latency p50={latency['p50_ms']}ms "
                f"p95={latency['p95_ms']}ms p99={latency['p99_ms']}ms",
            ]
        ),
    )
