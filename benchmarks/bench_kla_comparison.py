"""A2 — KLA constant-k versus the paper's per-iteration delta tuning."""

from conftest import run_once

from repro.experiments import kla_comparison
from repro.experiments.report import banner, format_table


def test_kla_comparison(benchmark, config, emit):
    data = run_once(benchmark, lambda: kla_comparison.run_kla_comparison(config))
    chunks = [banner("KLA constant-k versus delta tuning (related work)")]
    for name, rows in data.items():
        chunks += [f"-- {name} --", format_table(rows)]
    emit("kla_comparison", "\n".join(chunks))

    for name, rows in data.items():
        kla_rows = [r for r in rows if r["algorithm"].startswith("KLA")]
        tuned = next(r for r in rows if r["algorithm"].startswith("self-tuning"))
        # larger k buys fewer synchronisations...
        syncs = [r["syncs"] for r in kla_rows]
        assert syncs == sorted(syncs, reverse=True)
        # ...but no work reduction: KLA has no distance prioritisation,
        # so the self-tuning run does strictly less relaxation work
        assert all(tuned["relaxations"] < r["relaxations"] for r in kla_rows), name
