"""F6 — regenerate Figure 6 (TK1 speedup versus relative power)."""

from conftest import run_once

from repro.experiments import fig6
from repro.experiments.report import banner, format_table


def test_fig6_tk1_tradeoff(benchmark, config, emit):
    data = run_once(benchmark, lambda: fig6.run_fig6(config))
    chunks = [banner("Figure 6: performance versus power (TK1)")]
    for name, points in data.items():
        chunks += [f"-- {name} --", format_table([p.as_row() for p in points])]
    emit("fig6_tk1_tradeoff", "\n".join(chunks))

    for name, points in data.items():
        ref = points[0]
        assert ref.speedup == 1.0 and ref.relative_power == 1.0
        fixed = [p for p in points if p.algorithm == "baseline" and p.dvfs != "auto"]
        # DVFS-only: high clocks buy speed for power, low clocks the reverse
        assert fixed[0].avg_power_w > fixed[-1].avg_power_w
        assert fixed[0].time_ms < fixed[-1].time_ms

    # composition claim: self-tuning reaches faster-and-lower-energy
    # points on the scale-free input
    wiki_wins = [
        p
        for p in data["wiki"]
        if p.algorithm == "self-tuning" and p.speedup > 1 and p.energy_win
    ]
    assert wiki_wins, "no self-tuning energy wins on wiki"

    # on the road network the middle set-point is competitive with the
    # best fixed-delta baseline (paper: peak speedup at the middle P)
    tuned_cal = [p for p in data["cal"] if p.algorithm == "self-tuning"]
    assert max(p.speedup for p in tuned_cal) > 0.95
