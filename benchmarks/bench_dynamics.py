"""A3 — controller transient dynamics (supplement to Figure 5)."""

from conftest import run_once

from repro.experiments import dynamics
from repro.experiments.report import banner, format_table


def test_controller_dynamics(benchmark, config, emit):
    data = run_once(benchmark, lambda: dynamics.run_dynamics(config))
    chunks = [banner("Controller transient dynamics")]
    for name, rows in data.items():
        chunks += [f"-- {name} --", format_table(rows)]
    emit("dynamics", "\n".join(chunks))

    # on the road network control must engage early: the parallelism
    # band is entered in a small fraction of the run, and the learned
    # degree settles almost immediately
    for row in data["cal"]:
        assert row["par entry"] < 0.2 * row["iterations"], row
        assert row["d settle"] < 0.2 * row["iterations"], row
        assert row["steady err"] < 0.3, row
