"""F5 — regenerate Figure 5 (efficacy of parallelism control)."""

from conftest import run_once

from repro.experiments import fig5
from repro.experiments.report import banner, format_table


def test_fig5_setpoint_control(benchmark, config, emit):
    rows = run_once(benchmark, lambda: fig5.run_fig5(config, dataset="cal"))
    emit(
        "fig5_setpoint_control",
        banner("Figure 5: efficacy of parallelism control (cal)")
        + "\n"
        + format_table([r.as_row() for r in rows]),
    )

    baseline, tuned = rows[0], rows[1:]
    assert baseline.setpoint is None
    for r in tuned:
        # the controller pins the median near P...
        assert 0.5 * r.setpoint <= r.summary.median <= 1.6 * r.setpoint
        # ...with meaningful mass close to it
        assert r.mass_near_target > 0.4
    # and the baseline's spread exceeds the best-controlled spread
    assert min(r.summary.cv for r in tuned) < baseline.summary.cv
