"""Shared benchmark plumbing.

Every ``bench_*`` module regenerates one table/figure of the paper at
``REPRO_SCALE`` (default 0.02) and

* times the regeneration with pytest-benchmark (one round — these are
  experiment harnesses, not microbenchmarks; run with
  ``pytest benchmarks/ --benchmark-only``), and
* writes the regenerated rows/series to ``benchmarks/results/<name>.txt``
  and echoes them to stdout (visible with ``-s``).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig, default_config

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    """The session-wide experiment config (REPRO_SCALE-aware)."""
    return default_config()


@pytest.fixture(scope="session")
def emit():
    """Writer for regenerated artifacts: emit(name, text)."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")
        return path

    return _emit


def run_once(benchmark, fn):
    """Time ``fn`` with a single round (it is a whole experiment)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
