"""Shared benchmark plumbing.

Every ``bench_*`` module regenerates one table/figure of the paper at
``REPRO_SCALE`` (default 0.02) and

* times the regeneration with pytest-benchmark (one round — these are
  experiment harnesses, not microbenchmarks; run with
  ``pytest benchmarks/ --benchmark-only``), and
* writes the regenerated rows/series to ``benchmarks/results/<name>.txt``
  and echoes them to stdout (visible with ``-s``).

Alongside the per-benchmark text artifacts, the session writes
``benchmarks/results/metrics.json``: a machine-readable snapshot of
every metric the instrumented code published while the benchmarks ran
(relaxations, queue moves, simulated per-stage energy, controller plan
timings) plus the wall time of each ``run_once`` call — one file a
perf-tracking job can diff across commits.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig, default_config
from repro.obs import MetricsRegistry, use

RESULTS_DIR = Path(__file__).parent / "results"

_RUN_SECONDS: dict[str, float] = {}


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    """The session-wide experiment config (REPRO_SCALE-aware)."""
    return default_config()


@pytest.fixture(scope="session")
def emit():
    """Writer for regenerated artifacts: emit(name, text)."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")
        return path

    return _emit


@pytest.fixture(scope="session", autouse=True)
def session_metrics():
    """A live metrics registry for the whole benchmark session.

    Everything the instrumented hot paths publish while the benchmarks
    run lands here; at teardown the snapshot (plus per-benchmark wall
    times) is written to ``benchmarks/results/metrics.json`` so future
    PRs can track the perf/workload trajectory machine-readably.
    """
    registry = MetricsRegistry()
    with use(registry=registry):
        yield registry
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "schema": 1,
        "benchmarks_seconds": dict(sorted(_RUN_SECONDS.items())),
        "metrics": registry.snapshot(),
    }
    path = RESULTS_DIR / "metrics.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n[metrics summary written to {path}]")


def run_once(benchmark, fn):
    """Time ``fn`` with a single round (it is a whole experiment)."""
    label = getattr(benchmark, "name", None) or getattr(fn, "__name__", "fn")
    t0 = time.perf_counter()
    result = benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
    _RUN_SECONDS[label] = round(time.perf_counter() - t0, 4)
    return result
