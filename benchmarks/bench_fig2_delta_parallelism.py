"""F2 — regenerate Figure 2 (delta versus average parallelism)."""

from conftest import run_once

from repro.experiments import fig2
from repro.experiments.report import banner, format_table


def test_fig2_delta_vs_parallelism(benchmark, config, emit):
    data = run_once(benchmark, lambda: fig2.run_fig2(config))
    chunks = [banner("Figure 2: delta versus parallelism")]
    for name, rows in data.items():
        chunks += [f"-- {name} --", format_table(rows)]
    emit("fig2_delta_parallelism", "\n".join(chunks))

    for name, rows in data.items():
        pars = [r["avg parallelism"] for r in rows]
        # parallelism grows with delta (the figure's monotone trend)
        assert pars[-1] > 1.5 * pars[0], name
        iters = [r["iterations"] for r in rows]
        assert iters[-1] < iters[0], name
