"""Query service: batch fan-out, cache speedup, retry overhead.

Three acceptance checks for the ``repro.service`` subsystem:

* ``batch_run(..., parallel=True)`` over a process pool beats the
  serial loop on a >=100k-edge graph with >=16 sources (asserted only
  on multi-core hosts — a 1-CPU container cannot speed anything up by
  adding workers, but the timings are still recorded either way),
* a warm-cache query through ``QueryEngine`` is at least 10x faster
  than the cold run that populated the cache, and
* retries under a 30% seeded fault plan answer every query correctly
  at a bounded wall-clock premium over the same clean batch.

All timings land in ``benchmarks/results/metrics.json`` via the
session registry (``bench.service.*`` gauges) so perf-tracking jobs
can watch the trajectory across commits.
"""

import os
import time

from conftest import run_once

from repro import obs
from repro.graph.generators import rmat
from repro.resilience import FaultPlan, RetryPolicy
from repro.service import GraphCatalog, QueryEngine, SSSPQuery
from repro.sssp.batch import batch_run, sample_sources
from repro.sssp.nearfar import nearfar_sssp
from repro.sssp.result import assert_distances_close

N_SOURCES = 16
N_WORKERS = 4


def _service_graph():
    g = rmat(13, 16, seed=5, name="service-rmat")
    assert g.num_edges >= 100_000
    return g


def test_parallel_batch_vs_serial(benchmark, emit):
    graph = _service_graph()
    sources = sample_sources(graph, N_SOURCES, seed=11)

    t0 = time.perf_counter()
    serial = batch_run(graph, sources, nearfar_sssp, label="serial")
    serial_s = time.perf_counter() - t0

    def parallel_pass():
        t1 = time.perf_counter()
        batch = batch_run(
            graph,
            sources,
            nearfar_sssp,
            label="parallel",
            parallel=True,
            max_workers=N_WORKERS,
            mode="process",
        )
        return batch, time.perf_counter() - t1

    parallel, parallel_s = run_once(benchmark, parallel_pass)

    # identical answers in identical order, regardless of who was faster
    for a, b in zip(serial.results, parallel.results):
        assert a.source == b.source
        assert_distances_close(a, b)

    registry = obs.get_registry()
    registry.gauge("bench.service.batch_serial_seconds").set(serial_s)
    registry.gauge("bench.service.batch_parallel_seconds").set(parallel_s)
    registry.gauge("bench.service.batch_workers").set(N_WORKERS)

    cores = os.cpu_count() or 1
    emit(
        "service_parallel_batch",
        f"service batch fan-out: {graph.name} "
        f"({graph.num_nodes} nodes, {graph.num_edges} edges), "
        f"{N_SOURCES} sources, {N_WORKERS} workers, {cores} cores\n"
        f"serial   {serial_s:8.3f} s\n"
        f"parallel {parallel_s:8.3f} s "
        f"(speedup {serial_s / parallel_s:.2f}x)",
    )
    if cores >= 2:
        assert parallel_s < serial_s, (
            f"parallel batch ({parallel_s:.3f}s, {N_WORKERS} workers) "
            f"should beat serial ({serial_s:.3f}s) on a {cores}-core host"
        )


def test_warm_cache_query_speedup(benchmark, emit):
    catalog = GraphCatalog()
    catalog.register("svc", _service_graph)
    query = SSSPQuery("svc", 0, "dijkstra")

    def cold_then_warm():
        with QueryEngine(catalog) as engine:
            t0 = time.perf_counter()
            cold = engine.run(query)
            cold_s = time.perf_counter() - t0
            t1 = time.perf_counter()
            warm = engine.run(query)
            warm_s = time.perf_counter() - t1
        return cold, warm, cold_s, warm_s

    cold, warm, cold_s, warm_s = run_once(benchmark, cold_then_warm)

    assert cold.ok and cold.cache == "miss"
    assert warm.ok and warm.cache == "hit"
    assert warm.reached == cold.reached

    registry = obs.get_registry()
    registry.gauge("bench.service.query_cold_seconds").set(cold_s)
    registry.gauge("bench.service.query_warm_seconds").set(warm_s)

    emit(
        "service_cache_speedup",
        "service cache: cold vs warm dijkstra query on "
        f"{cold.reached}-reached rmat graph\n"
        f"cold {cold_s * 1e3:10.3f} ms\n"
        f"warm {warm_s * 1e3:10.3f} ms "
        f"(speedup {cold_s / warm_s:.0f}x)",
    )
    assert warm_s * 10 <= cold_s, (
        f"warm-cache query ({warm_s * 1e3:.3f}ms) should be >=10x faster "
        f"than cold ({cold_s * 1e3:.3f}ms)"
    )


def test_retry_overhead_under_faults(benchmark, emit):
    """A 30%-faulted batch must still answer everything, and the retry
    machinery's wall-clock premium over the clean batch is recorded."""
    graph = _service_graph()
    catalog = GraphCatalog()
    catalog.register("svc", lambda: graph)
    sources = sample_sources(graph, N_SOURCES, seed=23)
    retry = RetryPolicy(max_attempts=6, base_delay=0.001)

    def batch(fault_plan):
        queries = [SSSPQuery("svc", int(s), "nearfar") for s in sources]
        with QueryEngine(
            catalog,
            max_workers=N_WORKERS,
            cache_size=0,  # every query must really run
            fault_plan=fault_plan,
            retry=retry,
        ) as engine:
            t0 = time.perf_counter()
            responses = engine.run_many(queries)
            elapsed = time.perf_counter() - t0
            retries = engine.retry_attempts
        return responses, elapsed, retries

    clean, clean_s, _ = batch(None)
    plan = FaultPlan(
        rate=0.3, seed=7, kinds=("transient", "crash"), hang_seconds=0.0
    )

    def faulted_pass():
        return batch(plan)

    (faulted, faulted_s, retries) = run_once(benchmark, faulted_pass)

    assert all(r.ok for r in clean)
    bad = [r.error for r in faulted if not r.ok]
    assert not bad, f"faulted batch left queries unanswered: {bad}"
    assert retries > 0, "the drill was supposed to inject faults"
    for a, b in zip(clean, faulted):
        assert a.reached == b.reached
        assert a.max_dist == b.max_dist

    registry = obs.get_registry()
    registry.gauge("bench.service.batch_clean_seconds").set(clean_s)
    registry.gauge("bench.service.batch_faulted_seconds").set(faulted_s)
    registry.gauge("bench.service.batch_retry_attempts").set(retries)

    emit(
        "service_retry_overhead",
        f"service retry overhead: {N_SOURCES} nearfar queries, "
        f"{N_WORKERS} workers, fault rate 0.3 (transient+crash)\n"
        f"clean   {clean_s:8.3f} s\n"
        f"faulted {faulted_s:8.3f} s "
        f"({retries} retry attempts, "
        f"overhead {faulted_s / clean_s:.2f}x)",
    )
