"""F8 — regenerate Figure 8 (average power versus set-point)."""

from conftest import run_once

from repro.experiments import fig8
from repro.experiments.report import banner, format_table


def test_fig8_power_vs_setpoint(benchmark, config, emit):
    data = run_once(benchmark, lambda: fig8.run_fig8(config))
    chunks = [banner("Figure 8: average power versus set-point P (default DVFS)")]
    for name, rows in data.items():
        chunks += [f"-- {name} --", format_table(rows)]
    emit("fig8_power_vs_setpoint", "\n".join(chunks))

    for name, rows in data.items():
        powers = [r["avg power (W)"] for r in rows]
        pars = [r["avg parallelism"] for r in rows]
        # the figure's claim: power correlates with P under default DVFS
        assert powers[-1] > powers[0], name
        assert pars[-1] > pars[0], name
