"""Microbenchmarks: wall-clock throughput of every SSSP implementation.

Not a paper artifact — these measure the Python implementations
themselves (edges relaxed per second), which matters when using the
package as a library.  Dijkstra is expected to be slowest (pure-Python
heap loop, it is the oracle); the frontier algorithms are vectorised.
"""

import pytest

from repro.core import AdaptiveParams, adaptive_sssp
from repro.experiments.runner import pick_source
from repro.graph.datasets import wiki_like
from repro.sssp.bellman_ford import bellman_ford
from repro.sssp.delta_stepping import delta_stepping
from repro.sssp.dijkstra import dijkstra
from repro.sssp.nearfar import nearfar_sssp

GRAPH = wiki_like(scale=0.005, seed=2)
SOURCE = pick_source(GRAPH)


def test_dijkstra_throughput(benchmark):
    result = benchmark(lambda: dijkstra(GRAPH, SOURCE))
    assert result.num_reached > 1


def test_bellman_ford_throughput(benchmark):
    result = benchmark(lambda: bellman_ford(GRAPH, SOURCE))
    assert result.num_reached > 1


def test_delta_stepping_throughput(benchmark):
    result = benchmark(lambda: delta_stepping(GRAPH, SOURCE))
    assert result.num_reached > 1


def test_nearfar_throughput(benchmark):
    result = benchmark(lambda: nearfar_sssp(GRAPH, SOURCE, collect_trace=False)[0])
    assert result.num_reached > 1


def test_adaptive_throughput(benchmark):
    result = benchmark(
        lambda: adaptive_sssp(
            GRAPH, SOURCE, AdaptiveParams(setpoint=5000.0), collect_trace=False
        )[0]
    )
    assert result.num_reached > 1


def test_advance_kernel_throughput(benchmark):
    """The hot primitive on its own: one full-frontier advance."""
    import numpy as np

    from repro.sssp.frontier import advance

    frontier = np.arange(GRAPH.num_nodes, dtype=np.int64)

    def run():
        dist = np.zeros(GRAPH.num_nodes)
        return advance(GRAPH, frontier, dist)

    out = benchmark(run)
    assert out.x2 == GRAPH.num_edges


def _resolve_quietly(name):
    """Resolve a backend, silencing the numba-fallback warning."""
    import warnings

    from repro.sssp.backends import resolve_backend

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return resolve_backend(name)


@pytest.mark.parametrize("backend", ["numpy", "numba"])
def test_nearfar_backend_throughput(benchmark, backend):
    """Full nearfar run per kernel backend (numba falls back cleanly)."""
    import numpy as np

    kb = _resolve_quietly(backend)
    nearfar_sssp(GRAPH, SOURCE, collect_trace=False, backend=kb)  # warm JIT
    result = benchmark(
        lambda: nearfar_sssp(GRAPH, SOURCE, collect_trace=False, backend=kb)[0]
    )
    baseline, _ = nearfar_sssp(GRAPH, SOURCE, collect_trace=False)
    assert np.array_equal(result.dist, baseline.dist)


@pytest.mark.parametrize("backend", ["numpy", "numba"])
def test_advance_backend_throughput(benchmark, backend):
    """One full-frontier advance per kernel backend."""
    import numpy as np

    kb = _resolve_quietly(backend)
    frontier = np.arange(GRAPH.num_nodes, dtype=np.int64)
    kb.advance(GRAPH, frontier, np.zeros(GRAPH.num_nodes))  # warm JIT

    def run():
        dist = np.zeros(GRAPH.num_nodes)
        return kb.advance(GRAPH, frontier, dist)

    out = benchmark(run)
    assert out.x2 == GRAPH.num_edges
