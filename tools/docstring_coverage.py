#!/usr/bin/env python
"""Docstring-coverage gate for the public API.

Walks every module under ``src/repro`` and counts docstrings on the
public surface: modules, public classes, and public
functions/methods (names not starting with ``_``, plus ``__init__``
is exempt — its class carries the contract).  ``--min PCT`` turns the
measurement into a CI gate: coverage below the floor fails.

The floor ratchets: it is set just under the measured coverage at the
time a change lands, so documentation can only stay level or improve.
Run with ``--list-missing`` to see what to document next.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"

__all__ = ["iter_api", "measure", "main"]


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def iter_api(tree: ast.Module, module: str) -> Iterator[Tuple[str, bool]]:
    """Yield ``(qualified_name, has_docstring)`` for one module's surface."""
    yield module, ast.get_docstring(tree) is not None
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            if not _is_public(node.name):
                continue
            yield f"{module}.{node.name}", ast.get_docstring(node) is not None
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if not _is_public(item.name) or item.name == "__init__":
                        continue
                    if any(
                        isinstance(d, ast.Name) and d.id == "overload"
                        for d in item.decorator_list
                    ):
                        continue
                    yield (
                        f"{module}.{node.name}.{item.name}",
                        ast.get_docstring(item) is not None,
                    )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # module-level functions only; methods handled above
            parent_is_module = any(node is n for n in tree.body)
            if parent_is_module and _is_public(node.name):
                yield f"{module}.{node.name}", ast.get_docstring(node) is not None


def measure(package_root: Path) -> Tuple[List[str], int, int]:
    """Return ``(missing, documented, total)`` over the package."""
    missing: List[str] = []
    documented = 0
    total = 0
    for path in sorted(package_root.rglob("*.py")):
        rel = path.relative_to(package_root.parent)
        module = ".".join(rel.with_suffix("").parts)
        if module.endswith(".__init__"):
            module = module[: -len(".__init__")]
        tree = ast.parse(path.read_text(), filename=str(path))
        for name, has_doc in iter_api(tree, module):
            total += 1
            if has_doc:
                documented += 1
            else:
                missing.append(name)
    return missing, documented, total


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--min",
        type=float,
        default=None,
        metavar="PCT",
        help="fail if coverage (percent) falls below this floor",
    )
    parser.add_argument(
        "--list-missing",
        action="store_true",
        help="print every undocumented public name",
    )
    args = parser.parse_args(argv)

    missing, documented, total = measure(PACKAGE_ROOT)
    pct = 100.0 * documented / total if total else 100.0
    print(
        f"docstring coverage: {documented}/{total} public names "
        f"documented ({pct:.1f}%)"
    )
    if args.list_missing:
        for name in missing:
            print(f"  missing: {name}")
    if args.min is not None and pct < args.min:
        print(
            f"FAIL: coverage {pct:.1f}% is below the floor {args.min:.1f}% "
            f"— document what you add (or run with --list-missing)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
