#!/usr/bin/env python
"""CI perf gate: diff benchmark metrics against a committed baseline.

The benchmark session writes ``benchmarks/results/metrics.json`` (the
``session_metrics`` fixture in ``benchmarks/conftest.py``); this tool
compares the gauges named in a committed baseline file against that
snapshot and fails (exit 1) when any of them regressed past its
tolerance.  The baseline — ``benchmarks/baselines/ci.json`` by
default — is data, reviewed like code::

    {
      "schema": 1,
      "metrics": {
        "bench.batch.speedup": {
          "baseline": 2.54, "direction": "higher", "tolerance": 0.30
        }
      }
    }

Per metric:

* ``baseline`` — the committed reference value;
* ``direction`` — which way is good: ``"higher"`` (throughput,
  speedups) or ``"lower"`` (latencies, overhead ratios);
* ``tolerance`` — allowed *relative* slack in the bad direction.
  ``direction: higher`` fails when ``value < baseline * (1 - tol)``;
  ``direction: lower`` fails when ``value > baseline * (1 + tol)``.
  Machine-independent ratios take tight tolerances; absolute
  throughput numbers take generous ones (CI runners vary widely).

A gated metric missing from the results is a failure too — a deleted
benchmark must not silently pass its gate.  ``--update`` rewrites the
baseline values in place from the current results (directions and
tolerances are kept), which is how a reviewed perf improvement
re-anchors the gate.

Usage::

    python -m pytest benchmarks/bench_batch.py benchmarks/bench_overhead.py
    python tools/perf_gate.py                  # gate against the baseline
    python tools/perf_gate.py --update         # re-anchor after review
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_RESULTS = REPO_ROOT / "benchmarks" / "results" / "metrics.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "ci.json"

BASELINE_SCHEMA = 1

__all__ = ["load_gauges", "check_metric", "run_gate", "main"]


def load_gauges(path: Path) -> Dict[str, float]:
    """The gauge/counter values inside one metrics JSON file."""
    data = json.loads(path.read_text())
    snapshot = data.get("metrics", data)
    gauges: Dict[str, float] = {}
    for name, entry in snapshot.items():
        if isinstance(entry, dict) and "value" in entry:
            gauges[name] = float(entry["value"])
    return gauges


def check_metric(
    name: str,
    spec: dict,
    value: Optional[float],
) -> Tuple[bool, str, str]:
    """Gate one metric; returns ``(ok, limit_text, verdict_text)``."""
    baseline = float(spec["baseline"])
    direction = spec.get("direction", "higher")
    tolerance = float(spec.get("tolerance", 0.1))
    if direction not in ("higher", "lower"):
        raise ValueError(
            f"{name}: direction must be 'higher' or 'lower', got {direction!r}"
        )
    if value is None:
        return False, "-", "MISSING from results"
    if direction == "higher":
        limit = baseline * (1.0 - tolerance)
        ok = value >= limit
        limit_text = f">= {limit:.4g}"
    else:
        limit = baseline * (1.0 + tolerance)
        ok = value <= limit
        limit_text = f"<= {limit:.4g}"
    if ok:
        return True, limit_text, "ok"
    return False, limit_text, f"REGRESSED ({direction} is better)"


def run_gate(results_path: Path, baseline_path: Path) -> Tuple[List[dict], int]:
    """Gate every baseline metric; returns ``(report rows, failures)``."""
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("schema") != BASELINE_SCHEMA:
        raise SystemExit(
            f"{baseline_path}: unsupported baseline schema "
            f"{baseline.get('schema')!r} (expected {BASELINE_SCHEMA})"
        )
    gauges = load_gauges(results_path)
    rows: List[dict] = []
    failures = 0
    for name in sorted(baseline.get("metrics", {})):
        spec = baseline["metrics"][name]
        value = gauges.get(name)
        ok, limit_text, verdict = check_metric(name, spec, value)
        if not ok:
            failures += 1
        rows.append(
            {
                "metric": name,
                "baseline": spec["baseline"],
                "current": "-" if value is None else round(value, 4),
                "allowed": limit_text,
                "status": verdict,
            }
        )
    return rows, failures


def update_baseline(results_path: Path, baseline_path: Path) -> int:
    """Re-anchor baseline values from current results; keep tolerances."""
    baseline = json.loads(baseline_path.read_text())
    gauges = load_gauges(results_path)
    missing = []
    for name, spec in baseline.get("metrics", {}).items():
        value = gauges.get(name)
        if value is None:
            missing.append(name)
            continue
        spec["baseline"] = round(value, 4)
    baseline_path.write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n"
    )
    print(f"baseline re-anchored: {baseline_path}")
    for name in missing:
        print(f"  WARNING: {name} not in results; baseline kept as-is")
    return 1 if missing else 0


def _format_report(rows: List[dict]) -> str:
    headers = ["metric", "baseline", "current", "allowed", "status"]
    widths = {
        h: max(len(h), *(len(str(r[h])) for r in rows)) if rows else len(h)
        for h in headers
    }
    lines = [
        "  ".join(h.ljust(widths[h]) for h in headers),
        "  ".join("-" * widths[h] for h in headers),
    ]
    for row in rows:
        lines.append("  ".join(str(row[h]).ljust(widths[h]) for h in headers))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; exit 1 on any gated regression."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results", type=Path, default=DEFAULT_RESULTS,
        help=f"benchmark metrics snapshot (default: {DEFAULT_RESULTS})",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help=f"committed baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite baseline values from the current results",
    )
    args = parser.parse_args(argv)

    if not args.results.exists():
        print(
            f"results not found: {args.results} "
            "(run the benchmarks first: python -m pytest benchmarks/...)",
            file=sys.stderr,
        )
        return 2
    if not args.baseline.exists():
        print(f"baseline not found: {args.baseline}", file=sys.stderr)
        return 2

    if args.update:
        return update_baseline(args.results, args.baseline)

    rows, failures = run_gate(args.results, args.baseline)
    print(_format_report(rows))
    if failures:
        print(f"\nperf gate FAILED: {failures} metric(s) regressed")
        return 1
    print(f"\nperf gate passed: {len(rows)} metric(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
