#!/usr/bin/env python
"""Execute every fenced shell block in the README and docs/.

Documentation examples rot silently; this tool makes them executable
contracts.  It extracts every fenced code block tagged ``bash``,
``sh`` or ``shell`` from the given markdown files (default:
``README.md`` and ``docs/*.md``), and runs each one under
``bash -euo pipefail`` in a shared scratch directory — shared, so a
block may use files an earlier block in the same document generated
(the trace-CLI walkthrough relies on this).

A block can opt out by placing an HTML comment on the line directly
above its opening fence::

    <!-- docs-smoke: skip (why it is excluded) -->
    ```bash
    pytest benchmarks/ --benchmark-only
    ```

Skips are reported, never silent.  ``python -m repro`` works inside
blocks because the repository's ``src/`` is prepended to
``PYTHONPATH``.  Exit status is non-zero if any block fails, with the
failing block's source, stdout and stderr echoed.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent
SHELL_TAGS = {"bash", "sh", "shell"}
SKIP_RE = re.compile(r"<!--\s*docs-smoke:\s*skip\s*(?:\((?P<why>[^)]*)\))?\s*-->")
FENCE_RE = re.compile(r"^```(?P<tag>[A-Za-z0-9_-]*)\s*$")

__all__ = ["extract_blocks", "run_blocks", "main"]


@dataclass
class Block:
    """One fenced shell block, with enough context to report it."""

    path: Path
    start_line: int  # 1-based line of the opening fence
    source: str
    skip_reason: str | None = None  # non-None: excluded, with the why

    @property
    def label(self) -> str:
        return f"{self.path}:{self.start_line}"


def extract_blocks(path: Path) -> List[Block]:
    """All shell blocks of one markdown file, in document order."""
    blocks: List[Block] = []
    lines = path.read_text().splitlines()
    in_fence = False
    tag = ""
    body: List[str] = []
    fence_line = 0
    pending_skip: str | None = None
    for lineno, line in enumerate(lines, start=1):
        if not in_fence:
            fence = FENCE_RE.match(line.strip())
            if fence:
                in_fence = True
                tag = fence.group("tag").lower()
                body = []
                fence_line = lineno
                continue
            skip = SKIP_RE.search(line)
            if skip:
                pending_skip = skip.group("why") or "marked skip"
            elif line.strip():
                pending_skip = None  # markers only bind to the next fence
        else:
            if line.strip() == "```":
                in_fence = False
                if tag in SHELL_TAGS:
                    blocks.append(
                        Block(
                            path=path,
                            start_line=fence_line,
                            source="\n".join(body),
                            skip_reason=pending_skip,
                        )
                    )
                pending_skip = None
            else:
                body.append(line)
    return blocks


def run_blocks(blocks: List[Block], *, timeout: float) -> int:
    """Run every non-skipped block; return the failure count."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    failures = 0
    # one scratch dir per *document*, so blocks can build on each other
    # without leaking artifacts between documents (or into the repo)
    per_doc: dict[Path, str] = {}
    with tempfile.TemporaryDirectory(prefix="docs-smoke-") as scratch_root:
        for block in blocks:
            if block.skip_reason is not None:
                print(f"SKIP {block.label} — {block.skip_reason}")
                continue
            workdir = per_doc.setdefault(
                block.path,
                tempfile.mkdtemp(prefix=block.path.stem + "-", dir=scratch_root),
            )
            try:
                proc = subprocess.run(
                    ["bash", "-euo", "pipefail", "-c", block.source],
                    cwd=workdir,
                    env=env,
                    capture_output=True,
                    text=True,
                    timeout=timeout,
                )
                code: object = proc.returncode
            except subprocess.TimeoutExpired as exc:
                proc = exc  # has .stdout/.stderr
                code = f"timeout after {timeout:.0f}s"
            if code == 0:
                print(f"PASS {block.label}")
            else:
                failures += 1
                print(f"FAIL {block.label} (exit {code})")
                print("  --- block ---")
                for line in block.source.splitlines():
                    print(f"  {line}")
                for stream in ("stdout", "stderr"):
                    text = getattr(proc, stream) or ""
                    if isinstance(text, bytes):
                        text = text.decode(errors="replace")
                    if text.strip():
                        print(f"  --- {stream} ---")
                        for line in text.strip().splitlines():
                            print(f"  {line}")
    return failures


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="markdown files (default: README.md and docs/*.md)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="per-block timeout in seconds (default 300)",
    )
    args = parser.parse_args(argv)

    files = args.files or [
        REPO_ROOT / "README.md",
        *sorted((REPO_ROOT / "docs").glob("*.md")),
    ]
    blocks: List[Block] = []
    for path in files:
        if not path.exists():
            print(f"error: no such file: {path}", file=sys.stderr)
            return 2
        blocks.extend(extract_blocks(path))

    failures = run_blocks(blocks, timeout=args.timeout)
    ran = sum(1 for b in blocks if b.skip_reason is None)
    skipped = len(blocks) - ran
    print(
        f"docs-smoke: {ran} block(s) ran, {skipped} skipped, "
        f"{failures} failed across {len(files)} file(s)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
