"""End-to-end integration tests across the whole stack.

Each test exercises a realistic multi-module pipeline:
graph generation → SSSP → instrumentation → platform simulation →
measurement, the flows the examples and benchmarks are built from.
"""

import numpy as np
import pytest

from repro.core import AdaptiveParams, adaptive_sssp, setpoint_menu
from repro.cosim import PowerTargetParams, power_target_sssp
from repro.experiments.runner import find_time_minimizing_delta, pick_source
from repro.gpusim import (
    FixedDVFS,
    get_device,
    sample_run,
    simulate_run,
)
from repro.gpusim.dvfs import default_governor
from repro.graph import cal_like, wiki_like
from repro.graph.io import load_graph, write_dimacs
from repro.instrument import profile_from_trace
from repro.instrument.serialize import load_trace, save_trace
from repro.sssp import (
    assert_distances_close,
    delta_stepping,
    dijkstra,
    kla_sssp,
    nearfar_sssp,
)


@pytest.fixture(scope="module")
def cal():
    return cal_like(0.01, seed=3)


@pytest.fixture(scope="module")
def wiki():
    return wiki_like(0.005, seed=5)


class TestAlgorithmAgreementPipeline:
    def test_all_algorithms_agree_everywhere(self, cal, wiki):
        for g in (cal, wiki):
            src = pick_source(g)
            ref = dijkstra(g, src)
            for result in (
                delta_stepping(g, src),
                nearfar_sssp(g, src)[0],
                kla_sssp(g, src, 4)[0],
                adaptive_sssp(g, src, AdaptiveParams(setpoint=1000.0))[0],
            ):
                assert_distances_close(ref, result)


class TestFileToSimulationPipeline:
    def test_write_load_solve_simulate_measure(self, cal, tmp_path):
        # 1. persist the graph like a user dataset
        path = tmp_path / "network.gr"
        write_dimacs(cal, path)
        graph = load_graph(path)
        assert graph.num_nodes == cal.num_nodes

        # 2. solve with the self-tuning algorithm
        src = pick_source(graph)
        result, trace, controller = adaptive_sssp(
            graph, src, AdaptiveParams(setpoint=400.0)
        )
        assert_distances_close(dijkstra(graph, src), result)
        assert controller.d > 0

        # 3. persist and reload the trace
        trace2 = load_trace(save_trace(trace, tmp_path / "trace.json"))

        # 4. replay on both devices, measure with the PowerMon model
        for dev_name in ("tk1", "tx1"):
            device = get_device(dev_name)
            run = simulate_run(trace2, device, default_governor(device))
            assert run.total_seconds > 0
            pm = sample_run(run)
            if pm.num_samples:
                assert pm.average_power_w == pytest.approx(
                    run.average_power_w, rel=0.3
                )


class TestControlPipeline:
    def test_setpoint_menu_drives_parallelism_orderings(self, cal):
        """Hardware-derived set-points produce ordered parallelism."""
        device = get_device("tk1")
        menu = setpoint_menu(device, [2.0, 16.0])
        src = pick_source(cal)
        means = []
        for P in menu:
            _, trace, _ = adaptive_sssp(cal, src, AdaptiveParams(setpoint=P))
            means.append(trace.average_parallelism)
        assert means[1] > means[0]

    def test_profile_comparison_pipeline(self, wiki):
        """The Figure-1 pipeline: baseline + tuned profiles comparable."""
        src = pick_source(wiki)
        device = get_device("tk1")
        best_delta, _ = find_time_minimizing_delta(
            wiki, src, device, (0.5, 2.0, 8.0)
        )
        _, base_trace = nearfar_sssp(wiki, src, delta=best_delta)
        # P chosen for the fixture's 0.5% scale (the throttling regime
        # starts lower here than at bench scale — see EXPERIMENTS.md G1)
        _, tuned_trace, _ = adaptive_sssp(
            wiki, src, AdaptiveParams(setpoint=10_000.0)
        )
        base = profile_from_trace(base_trace)
        tuned = profile_from_trace(tuned_trace)
        assert tuned.summary.cv < base.summary.cv

    def test_power_target_pipeline(self, cal):
        """Watt budget in, exact distances and bounded power out."""
        device = get_device("tk1")
        src = pick_source(cal)
        res = power_target_sssp(
            cal, src, device, PowerTargetParams(target_watts=5.5)
        )
        assert_distances_close(dijkstra(cal, src), res.result)
        assert (
            device.static_power_w
            <= res.platform.average_power_w
            <= device.static_power_w
            + device.max_core_dynamic_w
            + device.max_mem_dynamic_w
        )

    def test_dvfs_knob_composition(self, wiki):
        """The paper's composition: knob x DVFS spans a 2-D region."""
        device = get_device("tk1")
        src = pick_source(wiki)
        times = {}
        powers = {}
        for P in (2000.0, 20_000.0):
            _, trace, _ = adaptive_sssp(wiki, src, AdaptiveParams(setpoint=P))
            for core, mem in ((852, 924), (252, 396)):
                run = simulate_run(trace, device, FixedDVFS(device, core, mem))
                times[(P, core)] = run.total_seconds
                powers[(P, core)] = run.average_power_w
        # frequency moves time at fixed P
        assert times[(2000.0, 252)] > times[(2000.0, 852)]
        # the knob moves power at fixed frequency
        assert powers[(20_000.0, 852)] > powers[(2000.0, 852)]
