"""Unit tests for the report renderers."""

import numpy as np

from repro.experiments.report import banner, format_series, format_table, sparkline


class TestBanner:
    def test_contains_title(self):
        assert "hello" in banner("hello")

    def test_padded_to_width(self):
        assert len(banner("x", width=40)) >= 40 - 8


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_columns_from_first_row(self):
        out = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.001}])
        lines = out.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert len(lines) == 4  # header, rule, two rows

    def test_large_and_small_floats(self):
        out = format_table([{"x": 1234567.0, "y": 0.00001, "z": 0.0}])
        assert "1.23e+06" in out
        assert "1e-05" in out

    def test_thousands_separator_for_ints(self):
        out = format_table([{"n": 1234567}])
        assert "1,234,567" in out

    def test_missing_key_blank(self):
        out = format_table([{"a": 1, "b": 2}, {"a": 3}])
        assert out  # renders without raising


class TestSparkline:
    def test_length_capped(self):
        s = sparkline(np.arange(1000), width=32)
        assert len(s) <= 32

    def test_short_series_kept(self):
        assert len(sparkline([1, 2, 3], width=64)) == 3

    def test_constant_series(self):
        s = sparkline([5, 5, 5])
        assert len(set(s)) == 1

    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_ramps_up(self):
        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8])
        assert s[0] != s[-1]


class TestFormatSeries:
    def test_annotations(self):
        out = format_series("label", [1.0, 5.0])
        assert "label" in out
        assert "min 1" in out
        assert "max 5" in out
        assert "n=2" in out

    def test_empty(self):
        assert "(empty)" in format_series("x", [])
