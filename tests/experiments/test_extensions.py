"""Tests for the extension experiments (A1-A3, P1) at tiny scale."""

import numpy as np
import pytest

from repro.experiments import ablations, dynamics, kla_comparison, power_target
from repro.experiments.config import ExperimentConfig

CFG = ExperimentConfig(scale=0.01, delta_multipliers=(0.5, 2.0, 8.0))


class TestAblations:
    @pytest.fixture(scope="class")
    def data(self):
        return ablations.run_ablations(CFG)

    def test_all_variants_present(self, data):
        for rows in data.values():
            assert [r["variant"] for r in rows] == list(ablations.ABLATION_VARIANTS)

    def test_all_terminate(self, data):
        for rows in data.values():
            for r in rows:
                assert r["iterations"] > 0
                assert r["sim time (ms)"] > 0

    def test_bootstrap_matters_on_bursty_input(self, data):
        wiki = {r["variant"]: r for r in data["wiki"]}
        # the paper's instability warning: disabling Eq. 8 costs
        # iterations during the unconverged phase
        assert wiki["no-bootstrap"]["iterations"] > wiki["full"]["iterations"]

    def test_main_prints(self, capsys):
        ablations.main(CFG)
        assert "Ablations" in capsys.readouterr().out


class TestDynamics:
    @pytest.fixture(scope="class")
    def data(self):
        return dynamics.run_dynamics(CFG)

    def test_rows_per_setpoint(self, data):
        for rows in data.values():
            assert len(rows) == 3

    def test_cal_control_engages_early(self, data):
        for row in data["cal"]:
            assert row["par entry"] < 0.25 * row["iterations"]
            assert row["d settle"] <= max(5, 0.1 * row["iterations"])

    def test_main_prints(self, capsys):
        dynamics.main(CFG)
        assert "dynamics" in capsys.readouterr().out


class TestKLA:
    @pytest.fixture(scope="class")
    def data(self):
        return kla_comparison.run_kla_comparison(CFG)

    def test_all_algorithms_listed(self, data):
        for rows in data.values():
            labels = [r["algorithm"] for r in rows]
            assert sum(l.startswith("KLA") for l in labels) == len(
                kla_comparison.KLA_K_VALUES
            )
            assert any(l.startswith("near+far") for l in labels)
            assert any(l.startswith("self-tuning") for l in labels)

    def test_k_reduces_syncs_not_work(self, data):
        for rows in data.values():
            kla_rows = [r for r in rows if r["algorithm"].startswith("KLA")]
            syncs = [r["syncs"] for r in kla_rows]
            relax = {r["relaxations"] for r in kla_rows}
            assert syncs == sorted(syncs, reverse=True)
            assert len(relax) == 1

    def test_selftuning_does_least_work(self, data):
        for name, rows in data.items():
            tuned = next(r for r in rows if r["algorithm"].startswith("self-tuning"))
            assert tuned["relaxations"] == min(r["relaxations"] for r in rows), name


class TestPowerTarget:
    @pytest.fixture(scope="class")
    def data(self):
        return power_target.run_power_target(CFG)

    def test_budget_ladder(self, data):
        for rows in data.values():
            budgets = [r["budget (W)"] for r in rows]
            assert budgets == sorted(budgets)
            assert len(budgets) == 4

    def test_cal_tracking(self, data):
        for row in data["cal"]:
            assert abs(row["error"]) < 0.2, row

    def test_power_monotone_in_budget_on_cal(self, data):
        powers = [r["steady power (W)"] for r in data["cal"]]
        assert powers[-1] > powers[0]
