"""Integration tests: every paper artifact regenerates at tiny scale,
and the headline claims (DESIGN.md C1-C5) hold in shape."""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments import fig1, fig2, fig3, fig5, fig6, fig7, fig8, overhead, table1

# One shared small config so the whole module stays fast.  Below ~1%
# scale the wiki stand-in degenerates (a single hub burst holds most of
# the edges and per-iteration fixed costs dominate), so 1% is the
# smallest scale at which the paper's claims are physically meaningful.
CFG = ExperimentConfig(scale=0.01, delta_multipliers=(0.5, 2.0, 8.0, 32.0))


class TestTable1:
    def test_rows(self):
        rows = table1.run_table1(CFG)
        assert len(rows) == 2
        for row in rows:
            assert row["Nodes"] > 0
            assert row["Edges"] > 0
        wiki = next(r for r in rows if "wiki" in r["Input graph"])
        cal = next(r for r in rows if "cal" in r["Input graph"])
        # structural traits: wiki heavy-tailed, cal low-degree high-diameter
        assert wiki["Max degree"] > 10 * wiki["Avg degree"]
        assert cal["Max degree"] <= 8
        assert cal["Est. diameter"] > wiki["Est. diameter"]

    def test_main_prints(self, capsys):
        table1.main(CFG)
        out = capsys.readouterr().out
        assert "Table 1" in out


class TestFig1:
    def test_claim_c_variability(self):
        """Self-tuning: lower CV and smaller dynamic range (Fig. 1 claim)."""
        res = fig1.run_fig1(CFG, dataset="wiki")
        assert res.selftuning.summary.cv < res.baseline.summary.cv
        assert res.selftuning.dynamic_range <= res.baseline.dynamic_range

    def test_rows_render(self):
        res = fig1.run_fig1(CFG, dataset="wiki")
        rows = res.comparison_rows()
        assert len(rows) == 2


class TestFig2:
    def test_claim_c2_parallelism_grows_with_delta(self):
        data = fig2.run_fig2(CFG)
        for name, rows in data.items():
            pars = [r["avg parallelism"] for r in rows]
            # monotone-ish: the largest delta beats the smallest clearly
            assert pars[-1] > pars[0], name

    def test_iterations_shrink_with_delta(self):
        data = fig2.run_fig2(CFG)
        for rows in data.values():
            assert rows[-1]["iterations"] <= rows[0]["iterations"]


class TestFig3:
    def test_claim_c2_runtime_u_shape_left_side(self):
        res = fig3.run_fig3(CFG)
        times = [r["sim time (ms)"] for r in res.rows]
        # small delta is slower than the best (left side of the U)
        assert times[0] > min(times)

    def test_redundant_work_grows(self):
        res = fig3.run_fig3(CFG)
        relax = [r["relaxations"] for r in res.rows]
        assert relax[-1] >= relax[0]

    def test_series_extracted(self):
        res = fig3.run_fig3(CFG)
        assert len(res.series) >= 2


class TestFig5:
    def test_claim_c1_median_tracks_setpoint(self):
        rows = fig5.run_fig5(CFG, dataset="cal")
        baseline, tuned = rows[0], rows[1:]
        assert baseline.setpoint is None
        for r in tuned:
            assert r.summary.median == pytest.approx(r.setpoint, rel=0.6)

    def test_claim_c1_spread_below_baseline(self):
        rows = fig5.run_fig5(CFG, dataset="cal")
        baseline = rows[0]
        # at least one set-point shows clearly tighter relative spread
        assert any(r.summary.cv < baseline.summary.cv for r in rows[1:])


class TestFig6And7:
    @pytest.fixture(scope="class")
    def tk1_data(self):
        return fig6.run_fig6(CFG)

    def test_reference_point_is_unity(self, tk1_data):
        for points in tk1_data.values():
            ref = points[0]
            assert ref.algorithm == "baseline" and ref.dvfs == "auto"
            assert ref.speedup == 1.0 and ref.relative_power == 1.0

    def test_matrix_complete(self, tk1_data):
        for points in tk1_data.values():
            # 1 ref + 3 baseline-fixed + 3 setpoints x 4 dvfs modes
            assert len(points) == 1 + 3 + 12

    def test_claim_c3_dvfs_tradeoff_on_baseline(self, tk1_data):
        """Lower clocks: less power, less speed (the DVFS-only curve)."""
        for points in tk1_data.values():
            fixed = [p for p in points if p.algorithm == "baseline" and p.dvfs != "auto"]
            assert fixed[0].avg_power_w > fixed[-1].avg_power_w
            assert fixed[0].time_ms < fixed[-1].time_ms

    def test_claim_c3_selftuning_extends_frontier_on_wiki(self, tk1_data):
        """Self-tuning reaches (faster, less energy) points on Wiki."""
        wins = [
            p
            for p in tk1_data["wiki"]
            if p.algorithm == "self-tuning" and p.speedup > 1 and p.energy_win
        ]
        assert wins

    def test_fig7_runs_on_tx1(self):
        data = fig7.run_fig7(CFG)
        assert set(data) == {"cal", "wiki"}
        for points in data.values():
            assert all(np.isfinite(p.speedup) for p in points)


class TestFig8:
    def test_claim_c4_power_rises_with_setpoint(self):
        data = fig8.run_fig8(CFG)
        for name, rows in data.items():
            powers = [r["avg power (W)"] for r in rows]
            # overall upward trend: top of the ladder above the bottom
            assert powers[-1] > powers[0], name

    def test_parallelism_tracks_ladder(self):
        data = fig8.run_fig8(CFG)
        for rows in data.values():
            pars = [r["avg parallelism"] for r in rows]
            assert pars[-1] > pars[0]


class TestOverhead:
    def test_claim_c5_overhead_small(self):
        rows = overhead.run_overhead(CFG)
        for row in rows:
            # measured python controller below 10% of wall time even at
            # tiny scale (the paper's C controller: 0.005-0.02%)
            assert row["controller wall (s)"] < 0.1 * row["wall time (s)"]
            assert row["sim overhead frac"] < 0.1


class TestMains:
    @pytest.mark.parametrize(
        "module", [fig1, fig2, fig3, fig5, fig8, overhead]
    )
    def test_main_prints_banner(self, capsys, module):
        module.main(CFG)
        out = capsys.readouterr().out
        assert "===" in out
