"""Unit tests for the experiment plumbing."""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.runner import (
    find_time_minimizing_delta,
    frequency_settings,
    pick_source,
    run_adaptive,
    run_baseline,
    scaled_setpoints,
)
from repro.gpusim.device import JETSON_TK1, JETSON_TX1
from repro.graph.generators import star_graph
from repro.sssp.dijkstra import dijkstra
from repro.sssp.result import assert_distances_close

TINY = ExperimentConfig(scale=0.003, delta_multipliers=(0.5, 2.0, 8.0))


class TestConfig:
    def test_datasets(self):
        ds = TINY.datasets()
        assert set(ds) == {"cal", "wiki"}
        assert all(g.num_nodes > 0 for g in ds.values())

    def test_dataset_lookup(self):
        assert TINY.dataset("cal").name.startswith("cal")
        with pytest.raises(ValueError):
            TINY.dataset("orkut")

    def test_default_config_scale_override(self):
        assert default_config(0.5).scale == 0.5


class TestPickSource:
    def test_max_degree_vertex(self):
        g = star_graph(10)
        assert pick_source(g) == 0

    def test_empty_graph(self):
        from repro.graph.csr import CSRGraph

        with pytest.raises(ValueError):
            pick_source(CSRGraph.empty(0))


class TestRunHelpers:
    def test_baseline_and_adaptive_agree(self):
        g = TINY.dataset("cal")
        src = pick_source(g)
        rb, tb = run_baseline(g, src, 2.0)
        ra, ta = run_adaptive(g, src, 300.0)
        assert_distances_close(rb, ra)
        assert_distances_close(rb, dijkstra(g, src))
        assert tb.num_iterations > 0 and ta.num_iterations > 0


class TestDeltaSearch:
    def test_returns_swept_delta(self):
        g = TINY.dataset("wiki")
        src = pick_source(g)
        best, sweep = find_time_minimizing_delta(
            g, src, JETSON_TK1, TINY.delta_multipliers
        )
        base = g.average_weight
        swept = {base * m for m in TINY.delta_multipliers}
        assert any(abs(best - d) < 1e-9 for d in swept)
        assert len(sweep) == len(TINY.delta_multipliers)

    def test_best_is_minimum(self):
        g = TINY.dataset("wiki")
        src = pick_source(g)
        best, sweep = find_time_minimizing_delta(
            g, src, JETSON_TK1, TINY.delta_multipliers
        )
        assert sweep[best].total_seconds == min(
            r.total_seconds for r in sweep.values()
        )


class TestFrequencySettings:
    @pytest.mark.parametrize("device", [JETSON_TK1, JETSON_TX1])
    def test_three_valid_settings(self, device):
        settings = frequency_settings(device)
        assert len(settings) == 3
        for core, mem in settings:
            device.validate_setting(core, mem)

    def test_tk1_high_point_matches_paper(self):
        assert frequency_settings(JETSON_TK1)[0] == (852, 924)


class TestScaledSetpoints:
    def test_three_ascending(self):
        for ds in ("cal", "wiki"):
            pts = scaled_setpoints(ds, 0.02)
            assert len(pts) == 3
            assert pts == sorted(pts)

    def test_full_scale_wiki_matches_paper(self):
        assert scaled_setpoints("wiki", 1.0) == [150_000, 300_000, 600_000]

    def test_minimum_clamp(self):
        pts = scaled_setpoints("cal", 1e-6, minimum=100.0)
        assert all(p >= 100.0 for p in pts)

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            scaled_setpoints("orkut", 1.0)
