"""Cross-cutting property-based tests on system invariants.

The per-module suites test behaviours; this module tests the *laws*
that must hold across module boundaries, letting hypothesis drive the
inputs:

* energy accounting: run energy is exactly the sum of power x time;
* power envelope: simulated power never leaves [static, peak];
* ablation closure: every combination of ablation switches still
  computes exact shortest paths;
* monotone physics: lower clocks never make a fixed trace faster.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import AdaptiveParams, adaptive_sssp
from repro.gpusim.device import JETSON_TK1, JETSON_TX1
from repro.gpusim.dvfs import AutoGovernor, FixedDVFS
from repro.gpusim.executor import simulate_run
from repro.graph.csr import CSRGraph
from repro.instrument.trace import IterationRecord, RunTrace
from repro.sssp.dijkstra import dijkstra
from repro.sssp.result import assert_distances_close

_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def traces(draw, max_iters: int = 30):
    """Arbitrary plausible iteration traces (x3 <= x2; x4 <= x3)."""
    n = draw(st.integers(min_value=0, max_value=max_iters))
    trace = RunTrace(algorithm="nearfar", graph_name="synthetic", source=0)
    for k in range(n):
        x2 = draw(st.integers(min_value=0, max_value=2_000_000))
        x3 = draw(st.integers(min_value=0, max_value=x2)) if x2 else 0
        x4 = draw(st.integers(min_value=0, max_value=x3)) if x3 else 0
        trace.append(
            IterationRecord(
                k=k,
                x1=draw(st.integers(min_value=1, max_value=100_000)),
                x2=x2,
                x3=x3,
                x4=x4,
                delta=1.0,
                split=float(k + 1),
                far_size=draw(st.integers(min_value=0, max_value=100_000)),
                drains=draw(st.integers(min_value=0, max_value=3)),
            )
        )
    return trace


@st.composite
def small_sssp_cases(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    m = draw(st.integers(min_value=0, max_value=90))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    g = CSRGraph.from_edges(
        n,
        rng.integers(0, n, size=m),
        rng.integers(0, n, size=m),
        rng.uniform(0.01, 20.0, size=m),
    )
    return g, draw(st.integers(min_value=0, max_value=n - 1))


class TestEnergyAccounting:
    @given(traces())
    @_settings
    def test_energy_is_sum_of_power_times_time(self, trace):
        run = simulate_run(trace, JETSON_TK1, FixedDVFS.max_performance(JETSON_TK1))
        by_parts = sum(it.power_w * it.seconds for it in run.iterations)
        assert run.total_energy_j == pytest.approx(by_parts, rel=1e-9, abs=1e-12)

    @given(traces())
    @_settings
    def test_power_stays_in_envelope(self, trace):
        for device in (JETSON_TK1, JETSON_TX1):
            run = simulate_run(trace, device, AutoGovernor())
            peak = (
                device.static_power_w
                + device.max_core_dynamic_w
                + device.max_mem_dynamic_w
            )
            for it in run.iterations:
                assert device.static_power_w - 1e-9 <= it.power_w <= peak + 1e-9

    @given(traces())
    @_settings
    def test_lower_clocks_never_faster(self, trace):
        fast = simulate_run(
            trace, JETSON_TK1, FixedDVFS.max_performance(JETSON_TK1)
        )
        slow = simulate_run(trace, JETSON_TK1, FixedDVFS.min_power(JETSON_TK1))
        assert slow.total_seconds >= fast.total_seconds - 1e-15

    @given(traces())
    @_settings
    def test_time_additive_over_iterations(self, trace):
        run = simulate_run(trace, JETSON_TK1, FixedDVFS.max_performance(JETSON_TK1))
        assert run.total_seconds == pytest.approx(
            sum(it.seconds for it in run.iterations)
        )
        times, _ = run.power_series()
        if len(run.iterations):
            assert times[-1] == pytest.approx(run.total_seconds)


class TestAblationClosure:
    @given(
        small_sssp_cases(),
        st.booleans(),
        st.booleans(),
        st.sampled_from(["adaptive", "fixed"]),
        st.floats(min_value=1.0, max_value=1e5),
    )
    @_settings
    def test_any_ablation_combination_is_exact(
        self, case, use_bootstrap, use_partitions, sgd_mode, setpoint
    ):
        g, s = case
        result, _, _ = adaptive_sssp(
            g,
            s,
            AdaptiveParams(
                setpoint=setpoint,
                use_bootstrap=use_bootstrap,
                use_partitions=use_partitions,
                sgd_mode=sgd_mode,
            ),
        )
        assert_distances_close(dijkstra(g, s), result)


class TestTraceSerializationLaw:
    @given(traces())
    @_settings
    def test_roundtrip_preserves_simulation(self, trace):
        from repro.instrument.serialize import trace_from_dict, trace_to_dict

        back = trace_from_dict(trace_to_dict(trace))
        policy = FixedDVFS.max_performance(JETSON_TK1)
        a = simulate_run(trace, JETSON_TK1, policy)
        b = simulate_run(back, JETSON_TK1, policy)
        assert a.total_energy_j == pytest.approx(b.total_energy_j)
        assert a.total_seconds == pytest.approx(b.total_seconds)
