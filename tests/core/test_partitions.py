"""Unit tests for the partitioned far queue (Section 4.6)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitions import FarQueuePartitions


def _fq(boundary: float = 10.0) -> FarQueuePartitions:
    return FarQueuePartitions(initial_boundary=boundary)


class TestInitialState:
    def test_two_partitions_per_paper(self):
        fq = _fq(5.0)
        assert fq.num_partitions == 2
        assert fq.boundaries == [5.0, math.inf]
        assert fq.total() == 0

    def test_rejects_bad_boundary(self):
        with pytest.raises(ValueError):
            FarQueuePartitions(0.0)
        with pytest.raises(ValueError):
            FarQueuePartitions(float("nan"))


class TestInsertRouting:
    def test_routes_by_distance(self):
        fq = _fq(10.0)
        fq.insert(np.asarray([1, 2, 3]), np.asarray([5.0, 10.0, 11.0]))
        sizes = fq.partition_sizes()
        # (0, 10] gets 5.0 and 10.0 (upper bound inclusive); (10, inf] gets 11.0
        assert list(sizes) == [2, 1]

    def test_empty_insert_noop(self):
        fq = _fq()
        fq.insert(np.zeros(0, dtype=np.int64), np.zeros(0))
        assert fq.total() == 0

    def test_rejects_mismatched_arrays(self):
        fq = _fq()
        with pytest.raises(ValueError):
            fq.insert(np.asarray([1]), np.asarray([1.0, 2.0]))

    def test_rejects_nonfinite_distance(self):
        fq = _fq()
        with pytest.raises(ValueError):
            fq.insert(np.asarray([1]), np.asarray([np.inf]))

    def test_total_accumulates(self):
        fq = _fq()
        for i in range(5):
            fq.insert(np.asarray([i]), np.asarray([float(i)]))
        assert fq.total() == 5


class TestExtract:
    def test_extract_below_pulls_overlapping_partitions(self):
        fq = _fq(10.0)
        fq.insert(np.asarray([1, 2]), np.asarray([5.0, 15.0]))
        got = fq.extract_below(8.0)
        # only partition (0, 10] starts below 8
        assert list(got) == [1]
        assert fq.total() == 1

    def test_extract_below_everything(self):
        fq = _fq(10.0)
        fq.insert(np.asarray([1, 2, 3]), np.asarray([5.0, 15.0, 250.0]))
        got = fq.extract_all()
        assert sorted(got.tolist()) == [1, 2, 3]
        assert fq.total() == 0

    def test_extract_below_zero_is_empty(self):
        fq = _fq(10.0)
        fq.insert(np.asarray([1]), np.asarray([5.0]))
        assert fq.extract_below(0.0).size == 0
        assert fq.total() == 1

    def test_reinsert_after_extract(self):
        fq = _fq(10.0)
        fq.insert(np.asarray([1]), np.asarray([5.0]))
        got = fq.extract_below(20.0)
        fq.insert(got, np.asarray([5.0]))
        assert fq.total() == 1


class TestBoundaries:
    def test_eq7_update(self):
        fq = _fq(100.0)
        fq.insert(np.asarray([1]), np.asarray([50.0]))
        fq.refresh_boundaries(setpoint=10.0, alpha=1.0)
        # B_0 <- 0 + 10/1 = 10 (decrease from 100: allowed)
        assert fq.boundaries[0] == pytest.approx(10.0)

    def test_monotonic_decrease_only(self):
        fq = _fq(10.0)
        fq.insert(np.asarray([1]), np.asarray([5.0]))
        fq.refresh_boundaries(setpoint=1000.0, alpha=1.0)  # candidate 1000 > 10
        assert fq.boundaries[0] == 10.0  # unchanged

    def test_last_partition_spawns_new_inf(self):
        fq = _fq(10.0)
        fq.insert(np.asarray([1]), np.asarray([50.0]))  # into the inf partition
        before = fq.num_partitions
        fq.refresh_boundaries(setpoint=5.0, alpha=1.0)
        assert fq.num_partitions > before
        assert math.isinf(fq.boundaries[-1])

    def test_boundaries_stay_sorted(self):
        fq = _fq(10.0)
        rng = np.random.default_rng(0)
        for _ in range(20):
            d = rng.uniform(0, 200, size=5)
            fq.insert(rng.integers(0, 100, size=5), d)
            fq.refresh_boundaries(setpoint=rng.uniform(1, 50), alpha=rng.uniform(0.1, 5))
            b = fq.boundaries
            assert all(x <= y for x, y in zip(b, b[1:]))

    def test_rejects_bad_refresh_args(self):
        fq = _fq()
        with pytest.raises(ValueError):
            fq.refresh_boundaries(0.0, 1.0)
        with pytest.raises(ValueError):
            fq.refresh_boundaries(1.0, 0.0)

    @pytest.mark.parametrize("alpha", [math.nan, math.inf, -math.inf])
    def test_rejects_non_finite_alpha(self, alpha):
        """A NaN width would break the one-trailing-inf invariant
        (``NaN < inf`` is false) and the next sweep would never
        terminate — refuse it at the door."""
        fq = _fq()
        with pytest.raises(ValueError, match="finite"):
            fq.refresh_boundaries(10.0, alpha)
        with pytest.raises(ValueError, match="finite"):
            fq.refresh_boundaries(alpha, 1.0)
        # exactly one trailing +inf partition survives the rejection
        assert sum(1 for b in fq.boundaries if math.isinf(b)) == 1


class TestCurrentPartition:
    def test_current_tracks_first_nonempty(self):
        fq = _fq(10.0)
        fq.insert(np.asarray([1]), np.asarray([50.0]))
        assert fq.current_partition_size() == 1
        assert fq.current_partition_lower() == 10.0
        assert math.isinf(fq.current_partition_upper())

    def test_min_occupied_lower(self):
        fq = _fq(10.0)
        assert math.isinf(fq.min_occupied_lower())
        fq.insert(np.asarray([1]), np.asarray([50.0]))
        assert fq.min_occupied_lower() == 10.0
        fq.insert(np.asarray([2]), np.asarray([5.0]))
        assert fq.min_occupied_lower() == 0.0


class TestConservation:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10_000),
                st.floats(min_value=0.001, max_value=1e6),
            ),
            min_size=0,
            max_size=300,
        ),
        st.floats(min_value=0.1, max_value=100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_no_vertex_lost_or_invented(self, entries, boundary):
        """insert/extract conserves the multiset of staged vertices."""
        fq = FarQueuePartitions(boundary)
        verts = np.asarray([v for v, _ in entries], dtype=np.int64)
        dists = np.asarray([d for _, d in entries])
        fq.insert(verts, dists)
        fq.refresh_boundaries(setpoint=10.0, alpha=1.0)
        out = fq.extract_all()
        assert sorted(out.tolist()) == sorted(verts.tolist())
        assert fq.total() == 0
