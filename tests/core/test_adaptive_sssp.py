"""Unit and behavioural tests for the self-tuning near+far SSSP."""

import numpy as np
import pytest

from repro.core import AdaptiveParams, adaptive_sssp
from repro.graph.csr import CSRGraph
from repro.graph.generators import grid_road_network, path_graph, star_graph
from repro.sssp.dijkstra import dijkstra
from repro.sssp.nearfar import nearfar_sssp
from repro.sssp.result import assert_distances_close


def _run(graph, source=0, setpoint=500.0, collect_trace=True, **kw):
    return adaptive_sssp(
        graph,
        source,
        AdaptiveParams(setpoint=setpoint, **kw),
        collect_trace=collect_trace,
    )


class TestCorrectness:
    @pytest.mark.parametrize("setpoint", [1.0, 10.0, 500.0, 1e7])
    def test_exact_for_any_setpoint(self, small_grid, setpoint):
        result, _, _ = _run(small_grid, setpoint=setpoint)
        assert_distances_close(dijkstra(small_grid, 0), result)

    @pytest.mark.parametrize("initial_delta", [1e-6, 0.1, 1.0, 1e6])
    def test_exact_for_any_initial_delta(self, small_rmat, initial_delta):
        result, _, _ = _run(small_rmat, setpoint=100.0, initial_delta=initial_delta)
        assert_distances_close(dijkstra(small_rmat, 0), result)

    def test_random_batch(self, random_graphs):
        for g in random_graphs:
            result, _, _ = _run(g)
            assert_distances_close(dijkstra(g, 0), result)

    def test_path_graph(self):
        g = path_graph(50)
        result, _, _ = _run(g, setpoint=10.0)
        assert list(result.dist) == list(range(50))

    def test_star_graph(self):
        g = star_graph(100)
        result, _, _ = _run(g, setpoint=10.0)
        assert result.dist[0] == 0
        assert np.all(result.dist[1:] == 1.0)

    def test_disconnected(self, disconnected):
        result, _, _ = _run(disconnected)
        assert np.isinf(result.dist[2:]).all()

    def test_zero_weight_edges(self):
        g = CSRGraph.from_edges(4, [0, 1, 2], [1, 2, 3], [0.0, 1.0, 0.0])
        result, _, _ = _run(g)
        assert list(result.dist) == [0.0, 0.0, 1.0, 1.0]

    def test_matches_baseline_nearfar(self, small_grid):
        base, _ = nearfar_sssp(small_grid, 0)
        tuned, _, _ = _run(small_grid)
        assert_distances_close(base, tuned)


class TestControlBehaviour:
    def test_tracks_setpoint_on_road_network(self):
        g = grid_road_network(60, 60, seed=2)
        setpoint = 400.0
        _, trace, _ = _run(g, setpoint=setpoint)
        steady = trace.parallelism[len(trace.records) // 5 :]
        median = float(np.median(steady))
        assert 0.5 * setpoint <= median <= 1.5 * setpoint

    def test_higher_setpoint_higher_parallelism(self):
        g = grid_road_network(50, 50, seed=3)
        _, t_low, _ = _run(g, setpoint=100.0)
        _, t_high, _ = _run(g, setpoint=800.0)
        assert t_high.average_parallelism > 1.5 * t_low.average_parallelism

    def test_reduces_variability_vs_baseline(self):
        g = grid_road_network(60, 60, seed=4)
        _, base_trace = nearfar_sssp(g, 0)
        _, tuned_trace, _ = _run(g, setpoint=400.0)
        skip_b = max(1, len(base_trace.records) // 5)
        skip_t = max(1, len(tuned_trace.records) // 5)
        cv_base = float(np.std(base_trace.parallelism[skip_b:])) / max(
            1.0, float(np.mean(base_trace.parallelism[skip_b:]))
        )
        cv_tuned = float(np.std(tuned_trace.parallelism[skip_t:])) / max(
            1.0, float(np.mean(tuned_trace.parallelism[skip_t:]))
        )
        assert cv_tuned < cv_base

    def test_delta_varies_over_run(self, small_grid):
        _, trace, _ = _run(small_grid, setpoint=200.0)
        assert np.unique(trace.deltas).size > 1

    def test_rebalancer_moves_vertices(self):
        g = grid_road_network(40, 40, seed=5)
        _, trace, _ = _run(g, setpoint=300.0)
        moved = trace.column("moved_from_far").sum() + trace.column("moved_to_far").sum()
        assert moved > 0

    def test_controller_learns_degree(self):
        g = grid_road_network(40, 40, seed=6)
        _, _, ctrl = _run(g, setpoint=300.0)
        # road grid: out-degree ~2-5 per direction
        assert 1.0 < ctrl.d < 8.0

    def test_controller_overhead_measured(self, small_grid):
        result, trace, ctrl = _run(small_grid)
        assert ctrl.seconds > 0
        assert result.extra["controller_seconds"] == pytest.approx(ctrl.seconds)
        assert trace.controller_seconds <= ctrl.seconds + 1e-6


class TestTraceContents:
    def test_controller_columns_populated(self, small_grid):
        _, trace, _ = _run(small_grid)
        assert np.all(np.isfinite(trace.column("d_estimate")))
        assert np.all(np.isfinite(trace.column("alpha_estimate")))

    def test_extras_recorded(self, small_grid):
        result, _, ctrl = _run(small_grid, setpoint=123.0)
        assert result.extra["setpoint"] == 123.0
        assert result.extra["final_delta"] == ctrl.delta
        assert result.algorithm == "adaptive-nearfar"

    def test_collect_trace_false(self, small_grid):
        result, trace, _ = _run(small_grid, collect_trace=False)
        assert trace.num_iterations == 0
        assert result.iterations > 0


class TestParamsValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            dict(setpoint=0.0),
            dict(setpoint=1.0, initial_delta=0.0),
            dict(setpoint=1.0, refresh_period=0),
            dict(setpoint=1.0, max_iterations=-1),
        ],
    )
    def test_rejected(self, kw):
        with pytest.raises(ValueError):
            AdaptiveParams(**kw)

    def test_bad_source(self, small_grid):
        with pytest.raises(ValueError, match="out of range"):
            adaptive_sssp(small_grid, -2, AdaptiveParams(setpoint=10.0))

    def test_negative_weights_rejected(self):
        g = CSRGraph.from_edges(2, [0], [1], [-1.0])
        with pytest.raises(ValueError):
            adaptive_sssp(g, 0, AdaptiveParams(setpoint=10.0))

    def test_max_iterations_cap(self, small_grid):
        result, _, _ = _run(small_grid, setpoint=10.0, max_iterations=2)
        assert result.iterations == 2

    def test_refresh_period(self, small_grid):
        # period > run length: boundaries never refreshed, still correct
        result, _, _ = _run(small_grid, refresh_period=10_000)
        assert_distances_close(dijkstra(small_grid, 0), result)
