"""Unit tests for the BISECT-MODEL."""

import numpy as np
import pytest

from repro.core.bisect_model import BisectModel


class TestLearning:
    def test_learns_linear_response(self):
        """Plant: widening delta by x pulls 50x vertices into the frontier."""
        model = BisectModel(initial_alpha=1.0)
        rng = np.random.default_rng(0)
        for _ in range(400):
            x4 = int(rng.integers(10, 1000))
            dchange = float(rng.uniform(-5, 5))
            x1_next = max(0, int(x4 + 50.0 * dchange))
            model.observe(x4, dchange, x1_next)
        assert model.alpha == pytest.approx(50.0, rel=0.15)

    def test_zero_delta_change_skipped(self):
        model = BisectModel()
        model.observe(100, 0.0, 100)
        assert model.updates == 0

    def test_convergence_flag_after_five_updates(self):
        model = BisectModel(convergence_updates=5)
        assert not model.converged
        for i in range(5):
            model.observe(10, 1.0, 12)
        assert model.converged

    def test_noisy_plant(self):
        model = BisectModel()
        rng = np.random.default_rng(3)
        for _ in range(300):
            x4 = int(rng.integers(100, 5000))
            dchange = float(rng.uniform(-10, 10))
            noise = rng.normal(0, 5)
            model.observe(x4, dchange, max(0, int(x4 + 8.0 * dchange + noise)))
        assert model.alpha == pytest.approx(8.0, rel=0.25)


class TestPredictionsAndGuards:
    def test_predict_eq4(self):
        model = BisectModel(initial_alpha=3.0)
        assert model.predict(100, 10.0) == pytest.approx(130.0)

    def test_alpha_floor(self):
        model = BisectModel(initial_alpha=1.0, alpha_min=0.01)
        # plant that never responds drives alpha to the floor, not below
        for _ in range(100):
            model.observe(100, 10.0, 100)
        assert model.alpha >= 0.01

    def test_rejects_negative_counters(self):
        model = BisectModel()
        with pytest.raises(ValueError):
            model.observe(-1, 1.0, 5)
        with pytest.raises(ValueError):
            model.observe(5, 1.0, -1)

    def test_rejects_bad_initial(self):
        with pytest.raises(ValueError):
            BisectModel(initial_alpha=-1.0)
