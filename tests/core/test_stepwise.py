"""Unit tests for the iteration-stepped adaptive SSSP driver."""

import numpy as np
import pytest

from repro.core import AdaptiveParams, adaptive_sssp
from repro.core.stepwise import AdaptiveNearFarStepper
from repro.sssp.dijkstra import dijkstra
from repro.sssp.result import assert_distances_close


def _params(**kw):
    kw.setdefault("setpoint", 300.0)
    return AdaptiveParams(**kw)


class TestStepping:
    def test_step_until_done(self, small_grid):
        stepper = AdaptiveNearFarStepper(small_grid, 0, _params())
        records = []
        while not stepper.done:
            rec = stepper.step()
            assert rec is not None
            records.append(rec)
        assert stepper.step() is None  # idempotent once done
        assert len(records) == stepper.iterations
        assert [r.k for r in records] == list(range(len(records)))

    def test_stepwise_matches_one_shot(self, small_grid):
        stepper = AdaptiveNearFarStepper(small_grid, 0, _params())
        while not stepper.done:
            stepper.step()
        one_shot, _, _ = adaptive_sssp(small_grid, 0, _params())
        assert_distances_close(stepper.result(), one_shot)
        assert stepper.result().iterations == one_shot.iterations

    def test_exactness(self, small_rmat):
        stepper = AdaptiveNearFarStepper(small_rmat, 0, _params())
        result = stepper.run()
        assert_distances_close(dijkstra(small_rmat, 0), result)

    def test_run_appends_to_trace(self, small_grid):
        from repro.instrument.trace import RunTrace

        stepper = AdaptiveNearFarStepper(small_grid, 0, _params())
        trace = RunTrace(algorithm="x", graph_name="g", source=0)
        stepper.run(trace)
        assert len(trace) == stepper.iterations

    def test_partial_result_is_inspectable(self, small_grid):
        stepper = AdaptiveNearFarStepper(small_grid, 0, _params())
        stepper.step()
        partial = stepper.result()
        assert partial.iterations == 1
        assert partial.dist[0] == 0.0


class TestRetargeting:
    def test_setpoint_mutable_mid_run(self, small_grid):
        stepper = AdaptiveNearFarStepper(small_grid, 0, _params(setpoint=100.0))
        stepper.step()
        stepper.setpoint = 900.0
        assert stepper.controller.setpoint == 900.0
        result = stepper.run()
        assert_distances_close(dijkstra(small_grid, 0), result)
        assert result.extra["final_setpoint"] == 900.0

    def test_setpoint_rejects_nonpositive(self, small_grid):
        stepper = AdaptiveNearFarStepper(small_grid, 0, _params())
        with pytest.raises(ValueError):
            stepper.setpoint = 0.0

    def test_retargeting_changes_parallelism(self):
        """Raise P mid-run: the back half runs with more parallelism
        than the same back half at the original P."""
        from repro.graph.generators import grid_road_network

        g = grid_road_network(60, 60, seed=8)

        def run(switch_to=None):
            stepper = AdaptiveNearFarStepper(g, 0, _params(setpoint=150.0))
            pars = []
            while not stepper.done:
                if switch_to and stepper.iterations == 40:
                    stepper.setpoint = switch_to
                rec = stepper.step()
                pars.append(rec.x2)
            return np.asarray(pars, dtype=float)

        steady = run(switch_to=None)
        boosted = run(switch_to=1500.0)
        assert boosted[60:120].mean() > 2.0 * steady[60:120].mean()


class TestValidation:
    def test_bad_source(self, small_grid):
        with pytest.raises(ValueError, match="out of range"):
            AdaptiveNearFarStepper(small_grid, -1, _params())

    def test_negative_weights(self):
        from repro.graph.csr import CSRGraph

        g = CSRGraph.from_edges(2, [0], [1], [-1.0])
        with pytest.raises(ValueError, match="non-negative"):
            AdaptiveNearFarStepper(g, 0, _params())
