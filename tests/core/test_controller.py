"""Unit tests for the set-point controller (Eq. 6 + Eq. 8 bootstrap)."""

import math

import pytest

from repro.core.controller import ControllerConfig, SetpointController


def _controller(setpoint=1000.0, initial_delta=1.0, **kw):
    return SetpointController(
        ControllerConfig(setpoint=setpoint, **kw), initial_delta=initial_delta
    )


def _plan(ctrl, x4, lower=0.0, split=None, far_total=10_000,
          part_size=500, part_upper=100.0):
    return ctrl.plan(
        x4,
        window_lower=lower,
        window_split=split if split is not None else lower + ctrl.delta,
        far_total=far_total,
        far_partition_size=part_size,
        far_partition_upper=part_upper,
    )


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            dict(setpoint=0.0),
            dict(setpoint=10.0, delta_min=0.0),
            dict(setpoint=10.0, delta_min=2.0, delta_max=1.0),
            dict(setpoint=10.0, max_step_fraction=0.0),
            dict(setpoint=10.0, gain=0.0),
        ],
    )
    def test_rejected(self, kw):
        with pytest.raises(ValueError):
            ControllerConfig(**kw)

    def test_bad_initial_delta(self):
        with pytest.raises(ValueError):
            SetpointController(ControllerConfig(setpoint=1.0), initial_delta=0.0)


class TestDeltaDirection:
    def test_grows_when_under_target(self):
        ctrl = _controller(setpoint=1000.0, initial_delta=1.0)
        # d starts near 1 -> target frontier ~1000; x4 = 10 is far below
        decision = _plan(ctrl, x4=10)
        assert decision.delta_change > 0
        assert ctrl.delta > 1.0

    def test_shrinks_when_over_target(self):
        ctrl = _controller(setpoint=100.0, initial_delta=1.0)
        decision = _plan(ctrl, x4=100_000)
        assert decision.delta_change < 0
        assert ctrl.delta < 1.0

    def test_holds_when_far_queue_empty_and_under_target(self):
        ctrl = _controller(setpoint=1000.0, initial_delta=1.0)
        decision = _plan(ctrl, x4=10, far_total=0)
        assert decision.delta_change == 0.0
        assert ctrl.delta == 1.0

    def test_still_shrinks_with_empty_far_queue(self):
        # over target: postponing to far is always possible
        ctrl = _controller(setpoint=100.0, initial_delta=1.0)
        decision = _plan(ctrl, x4=100_000, far_total=0)
        assert decision.delta_change < 0


class TestSlewLimits:
    def test_growth_bounded_multiplicatively(self):
        ctrl = _controller(setpoint=1e9, initial_delta=1.0, max_step_fraction=4.0)
        _plan(ctrl, x4=0, part_size=1, part_upper=1e12)
        assert ctrl.delta <= 5.0 + 1e-9

    def test_shrink_bounded_multiplicatively(self):
        ctrl = _controller(setpoint=1.0, initial_delta=1.0, max_step_fraction=4.0)
        _plan(ctrl, x4=10**9)
        assert ctrl.delta >= 1.0 / 5.0 - 1e-9

    def test_delta_never_nonpositive(self):
        ctrl = _controller(setpoint=1.0, initial_delta=1.0)
        for _ in range(200):
            _plan(ctrl, x4=10**9)
        assert ctrl.delta >= ctrl.config.delta_min > 0

    def test_delta_max_respected(self):
        ctrl = _controller(setpoint=1e9, initial_delta=1.0, delta_max=3.0)
        for _ in range(50):
            _plan(ctrl, x4=0, part_size=1, part_upper=1e12)
        assert ctrl.delta <= 3.0


class TestBootstrap:
    def test_bootstrap_used_before_convergence(self):
        ctrl = _controller(bootstrap_updates=5)
        decision = _plan(ctrl, x4=10)
        assert decision.bootstrapped

    def test_learned_alpha_used_after_convergence(self):
        ctrl = _controller(bootstrap_updates=2)
        # feed the bisect model until converged
        for i in range(3):
            ctrl.begin_iteration(x1=100 + i)
            _plan(ctrl, x4=100)
        assert ctrl.bisect_model.converged
        decision = _plan(ctrl, x4=10)
        assert not decision.bootstrapped

    def test_bootstrap_shrink_case_eq8(self):
        """x4 >= target: alpha = x4 / window width."""
        ctrl = _controller(setpoint=10.0, initial_delta=2.0)
        decision = _plan(ctrl, x4=1000, lower=0.0, split=2.0)
        assert decision.alpha_used == pytest.approx(1000 / 2.0)

    def test_bootstrap_grow_case_eq8(self):
        """x4 < target: alpha = S_i / (B_i - split)."""
        ctrl = _controller(setpoint=100_000.0, initial_delta=2.0)
        decision = _plan(
            ctrl, x4=1, lower=0.0, split=2.0, part_size=60, part_upper=5.0
        )
        assert decision.alpha_used == pytest.approx(60 / 3.0)

    def test_bootstrap_grow_case_infinite_partition(self):
        ctrl = _controller(setpoint=100_000.0, initial_delta=2.0)
        decision = _plan(
            ctrl, x4=4, part_size=60, part_upper=math.inf
        )
        assert decision.alpha_used > 0  # falls back, never divides by inf


class TestModelFeeding:
    def test_pending_observation_flow(self):
        ctrl = _controller()
        _plan(ctrl, x4=100)  # creates a pending (x4, dchange) sample
        before = ctrl.bisect_model.updates
        ctrl.begin_iteration(x1=150)  # delivers the label
        assert ctrl.bisect_model.updates == before + 1

    def test_invalidate_pending(self):
        ctrl = _controller()
        _plan(ctrl, x4=100)
        ctrl.invalidate_pending()
        before = ctrl.bisect_model.updates
        ctrl.begin_iteration(x1=150)
        assert ctrl.bisect_model.updates == before

    def test_advance_model_observes(self):
        ctrl = _controller()
        ctrl.observe_advance(10, 70)
        assert ctrl.advance_model.updates == 1

    def test_overhead_clock_increases(self):
        ctrl = _controller()
        ctrl.begin_iteration(1)
        ctrl.observe_advance(1, 5)
        _plan(ctrl, x4=1)
        assert ctrl.seconds > 0
        assert ctrl.decisions == 1


class TestGain:
    def test_higher_gain_bigger_steps(self):
        lo = _controller(gain=0.5, setpoint=10_000.0)
        hi = _controller(gain=1.0, setpoint=10_000.0)
        d_lo = _plan(lo, x4=10, part_size=500, part_upper=100.0)
        d_hi = _plan(hi, x4=10, part_size=500, part_upper=100.0)
        assert d_hi.delta_change >= d_lo.delta_change
