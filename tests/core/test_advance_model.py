"""Unit tests for the ADVANCE-MODEL."""

import numpy as np
import pytest

from repro.core.advance_model import AdvanceModel


class TestLearning:
    def test_learns_constant_degree(self):
        model = AdvanceModel(initial_d=1.0)
        for _ in range(50):
            model.observe(x1=100, x2=700)  # degree 7 plant
        assert model.d == pytest.approx(7.0, rel=0.05)

    def test_learns_from_varying_frontiers(self):
        rng = np.random.default_rng(1)
        model = AdvanceModel(initial_d=1.0)
        for _ in range(200):
            x1 = int(rng.integers(1, 10_000))
            model.observe(x1, int(3.2 * x1))
        assert model.d == pytest.approx(3.2, rel=0.05)

    def test_tracks_degree_drift(self):
        """Frontier degree changes over a run (hubs first, leaves later)."""
        model = AdvanceModel(initial_d=1.0)
        for _ in range(60):
            model.observe(50, 50 * 20)  # hub phase: degree 20
        assert model.d == pytest.approx(20, rel=0.1)
        for _ in range(120):
            model.observe(50, 50 * 2)  # tail phase: degree 2
        assert model.d == pytest.approx(2, rel=0.25)

    def test_empty_frontier_skipped(self):
        model = AdvanceModel(initial_d=5.0)
        model.observe(0, 0)
        assert model.updates == 0
        assert model.d == 5.0


class TestPredictions:
    def test_predict(self):
        model = AdvanceModel(initial_d=2.0)
        assert model.predict(10) == pytest.approx(20.0)

    def test_target_frontier_eq3(self):
        model = AdvanceModel(initial_d=4.0)
        assert model.target_frontier(1000.0) == pytest.approx(250.0)

    def test_target_frontier_rejects_bad_setpoint(self):
        model = AdvanceModel()
        with pytest.raises(ValueError):
            model.target_frontier(0.0)


class TestGuards:
    def test_d_floor(self):
        model = AdvanceModel(initial_d=1.0, d_min=0.5)
        # adversarial observations pushing d towards 0
        for _ in range(100):
            model.observe(1000, 0)
        assert model.d >= 0.5

    def test_rejects_negative_counters(self):
        model = AdvanceModel()
        with pytest.raises(ValueError):
            model.observe(-1, 5)
        with pytest.raises(ValueError):
            model.observe(5, -1)

    def test_rejects_bad_initial(self):
        with pytest.raises(ValueError):
            AdvanceModel(initial_d=0.0)
