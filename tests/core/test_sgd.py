"""Unit tests for Algorithm 1 (adaptive-learning-rate SGD)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sgd import AdaptiveSGD


def _fit_linear(target_slope: float, xs, start: float = 0.0) -> AdaptiveSGD:
    """Fit y = d*x with Algorithm 1 on noiseless observations."""
    sgd = AdaptiveSGD(value=start)
    for x in xs:
        y = target_slope * x
        grad = -2.0 * (y - sgd.value * x) * x
        hess = 2.0 * x * x
        sgd.update(grad, hess)
    return sgd


class TestInitialisation:
    def test_paper_init(self):
        sgd = AdaptiveSGD(value=1.0, epsilon=1e-8)
        assert sgd.g_bar == 0.0
        assert sgd.h_bar == 1.0
        assert sgd.v_bar == 1e-8
        assert sgd.tau == pytest.approx((1 + 1e-8) * 2)
        assert sgd.updates == 0


class TestConvergence:
    def test_converges_to_slope(self):
        sgd = _fit_linear(3.5, xs=[1.0, 2.0, 1.5] * 20, start=1.0)
        assert sgd.value == pytest.approx(3.5, rel=0.05)

    def test_converges_from_far_away(self):
        sgd = _fit_linear(100.0, xs=[5.0, 2.0, 8.0] * 40, start=0.001)
        assert sgd.value == pytest.approx(100.0, rel=0.1)

    def test_converges_with_huge_counters(self):
        # frontier-sized observations: x up to 1e6
        sgd = _fit_linear(12.0, xs=[1e5, 5e5, 1e6] * 20, start=1.0)
        assert sgd.value == pytest.approx(12.0, rel=0.05)

    def test_noisy_convergence(self):
        rng = np.random.default_rng(0)
        sgd = AdaptiveSGD(value=0.5)
        d_true = 4.0
        for _ in range(400):
            x = rng.uniform(1, 100)
            y = d_true * x * rng.uniform(0.9, 1.1)
            grad = -2.0 * (y - sgd.value * x) * x
            sgd.update(grad, 2.0 * x * x)
        assert sgd.value == pytest.approx(d_true, rel=0.2)

    def test_adapts_to_changing_slope(self):
        """The paper's reason for online learning: the plant drifts."""
        sgd = _fit_linear(2.0, xs=[1.0, 3.0] * 25, start=1.0)
        assert sgd.value == pytest.approx(2.0, rel=0.1)
        # the true slope jumps
        for x in [1.0, 3.0] * 60:
            y = 9.0 * x
            sgd.update(-2.0 * (y - sgd.value * x) * x, 2.0 * x * x)
        assert sgd.value == pytest.approx(9.0, rel=0.15)


class TestRobustness:
    def test_zero_gradient_is_noop_on_value(self):
        sgd = AdaptiveSGD(value=2.0)
        sgd.update(0.0, 1.0)
        assert sgd.value == 2.0

    def test_step_clamp(self):
        sgd = AdaptiveSGD(value=1.0, max_relative_step=1.0)
        # adversarially huge gradient: step must stay within 1x |value|
        sgd.update(grad=1e30, hess=1e-12)
        assert abs(sgd.value - 1.0) <= 1.0 + 1e-9

    def test_rejects_negative_hessian(self):
        sgd = AdaptiveSGD(value=1.0)
        with pytest.raises(ValueError):
            sgd.update(1.0, -1.0)

    def test_rejects_nan_hessian(self):
        sgd = AdaptiveSGD(value=1.0)
        with pytest.raises(ValueError):
            sgd.update(1.0, float("nan"))

    def test_tau_stays_at_least_one(self):
        sgd = AdaptiveSGD(value=1.0)
        for _ in range(50):
            sgd.update(1.0, 1.0)
            assert sgd.tau >= 1.0

    def test_reset(self):
        sgd = AdaptiveSGD(value=1.0)
        sgd.update(5.0, 2.0)
        sgd.reset(7.0)
        assert sgd.value == 7.0
        assert sgd.updates == 0
        assert sgd.g_bar == 0.0

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-1e12, max_value=1e12),
                st.floats(min_value=0, max_value=1e12),
            ),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_never_produces_nonfinite_value(self, observations):
        """Whatever (finite) gradients arrive, theta stays finite."""
        sgd = AdaptiveSGD(value=1.0)
        for grad, hess in observations:
            sgd.update(grad, hess)
            assert np.isfinite(sgd.value)
            assert np.isfinite(sgd.tau)

    def test_learning_rate_shrinks_under_noise(self):
        """vSGD property: conflicting gradients => small steps."""
        sgd = AdaptiveSGD(value=1.0)
        for i in range(100):
            sgd.update(1e6 if i % 2 == 0 else -1e6, 1.0)
        # alternating sign gradients keep g_bar ~ 0 => mu ~ 0
        assert sgd.last_mu < 1e-3
