"""Unit tests for the set-point menus."""

import pytest

from repro.core.setpoint import (
    PAPER_SETPOINTS,
    setpoint_for_utilization,
    setpoint_menu,
)
from repro.gpusim.device import JETSON_TK1, JETSON_TX1


class TestSetpointForUtilization:
    def test_scales_with_cores(self):
        p_tk1 = setpoint_for_utilization(JETSON_TK1, 16.0)
        p_tx1 = setpoint_for_utilization(JETSON_TX1, 16.0)
        assert p_tk1 == 192 * 16
        assert p_tx1 == 256 * 16

    def test_rejects_bad_occupancy(self):
        with pytest.raises(ValueError):
            setpoint_for_utilization(JETSON_TK1, 0.0)


class TestMenu:
    def test_default_menu_sorted_positive(self):
        menu = setpoint_menu(JETSON_TK1)
        assert menu == sorted(menu)
        assert all(p > 0 for p in menu)
        assert len(menu) == 6

    def test_custom_occupancies(self):
        menu = setpoint_menu(JETSON_TK1, [64.0, 8.0])
        assert menu == [192 * 8.0, 192 * 64.0]

    def test_paper_setpoints_within_menu_range(self):
        """The paper's Cal P values sit inside the TK1's natural menu."""
        menu = setpoint_menu(JETSON_TK1)
        for p in PAPER_SETPOINTS["cal"]:
            assert menu[0] <= p <= menu[-1]
